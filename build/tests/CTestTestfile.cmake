# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_osm[1]_include.cmake")
include("/root/repo/build/tests/test_citygen[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
