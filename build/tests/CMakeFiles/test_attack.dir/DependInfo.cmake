
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/algorithms_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/algorithms_test.cpp.o.d"
  "/root/repo/tests/attack/area_isolation_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/area_isolation_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/area_isolation_test.cpp.o.d"
  "/root/repo/tests/attack/defense_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/defense_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/defense_test.cpp.o.d"
  "/root/repo/tests/attack/exact_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/exact_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/exact_test.cpp.o.d"
  "/root/repo/tests/attack/interdiction_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/interdiction_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/interdiction_test.cpp.o.d"
  "/root/repo/tests/attack/models_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/models_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/models_test.cpp.o.d"
  "/root/repo/tests/attack/multi_victim_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/multi_victim_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/multi_victim_test.cpp.o.d"
  "/root/repo/tests/attack/oracle_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/oracle_test.cpp.o.d"
  "/root/repo/tests/attack/verify_test.cpp" "tests/CMakeFiles/test_attack.dir/attack/verify_test.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mts_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/mts_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/mts_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mts_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/mts_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mts_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/mts_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
