file(REMOVE_RECURSE
  "CMakeFiles/test_attack.dir/attack/algorithms_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/algorithms_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/area_isolation_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/area_isolation_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/defense_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/defense_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/exact_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/exact_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/interdiction_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/interdiction_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/models_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/models_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/multi_victim_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/multi_victim_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/oracle_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/oracle_test.cpp.o.d"
  "CMakeFiles/test_attack.dir/attack/verify_test.cpp.o"
  "CMakeFiles/test_attack.dir/attack/verify_test.cpp.o.d"
  "test_attack"
  "test_attack.pdb"
  "test_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
