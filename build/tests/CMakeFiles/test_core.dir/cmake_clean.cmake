file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/env_test.cpp.o"
  "CMakeFiles/test_core.dir/core/env_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/rng_test.cpp.o"
  "CMakeFiles/test_core.dir/core/rng_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/stats_test.cpp.o"
  "CMakeFiles/test_core.dir/core/stats_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/strong_id_test.cpp.o"
  "CMakeFiles/test_core.dir/core/strong_id_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/table_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
