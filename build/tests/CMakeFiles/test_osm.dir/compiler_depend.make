# Empty compiler generated dependencies file for test_osm.
# This may be replaced when dependencies are built.
