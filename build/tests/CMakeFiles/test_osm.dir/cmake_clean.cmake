file(REMOVE_RECURSE
  "CMakeFiles/test_osm.dir/osm/projection_test.cpp.o"
  "CMakeFiles/test_osm.dir/osm/projection_test.cpp.o.d"
  "CMakeFiles/test_osm.dir/osm/road_network_test.cpp.o"
  "CMakeFiles/test_osm.dir/osm/road_network_test.cpp.o.d"
  "CMakeFiles/test_osm.dir/osm/tags_test.cpp.o"
  "CMakeFiles/test_osm.dir/osm/tags_test.cpp.o.d"
  "CMakeFiles/test_osm.dir/osm/xml_test.cpp.o"
  "CMakeFiles/test_osm.dir/osm/xml_test.cpp.o.d"
  "test_osm"
  "test_osm.pdb"
  "test_osm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
