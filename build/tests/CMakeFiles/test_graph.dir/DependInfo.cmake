
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/astar_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/astar_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/astar_test.cpp.o.d"
  "/root/repo/tests/graph/betweenness_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/betweenness_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/betweenness_test.cpp.o.d"
  "/root/repo/tests/graph/bidirectional_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/bidirectional_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/bidirectional_test.cpp.o.d"
  "/root/repo/tests/graph/connectivity_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/connectivity_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/connectivity_test.cpp.o.d"
  "/root/repo/tests/graph/contraction_hierarchy_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/contraction_hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/contraction_hierarchy_test.cpp.o.d"
  "/root/repo/tests/graph/digraph_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/digraph_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/digraph_test.cpp.o.d"
  "/root/repo/tests/graph/dijkstra_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/dijkstra_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/dijkstra_test.cpp.o.d"
  "/root/repo/tests/graph/eigen_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/eigen_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/eigen_test.cpp.o.d"
  "/root/repo/tests/graph/maxflow_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/maxflow_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/maxflow_test.cpp.o.d"
  "/root/repo/tests/graph/metrics_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/metrics_test.cpp.o.d"
  "/root/repo/tests/graph/path_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/path_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/path_test.cpp.o.d"
  "/root/repo/tests/graph/shortest_path_count_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/shortest_path_count_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/shortest_path_count_test.cpp.o.d"
  "/root/repo/tests/graph/spatial_index_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/spatial_index_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/spatial_index_test.cpp.o.d"
  "/root/repo/tests/graph/turn_expansion_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/turn_expansion_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/turn_expansion_test.cpp.o.d"
  "/root/repo/tests/graph/yen_test.cpp" "tests/CMakeFiles/test_graph.dir/graph/yen_test.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/yen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mts_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/mts_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/mts_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mts_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/mts_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mts_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/mts_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
