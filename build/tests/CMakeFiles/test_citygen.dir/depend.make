# Empty dependencies file for test_citygen.
# This may be replaced when dependencies are built.
