file(REMOVE_RECURSE
  "CMakeFiles/test_citygen.dir/citygen/citygen_test.cpp.o"
  "CMakeFiles/test_citygen.dir/citygen/citygen_test.cpp.o.d"
  "test_citygen"
  "test_citygen.pdb"
  "test_citygen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
