file(REMOVE_RECURSE
  "libmts_viz.a"
)
