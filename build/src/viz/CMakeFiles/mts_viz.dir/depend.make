# Empty dependencies file for mts_viz.
# This may be replaced when dependencies are built.
