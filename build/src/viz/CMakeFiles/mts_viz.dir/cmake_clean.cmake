file(REMOVE_RECURSE
  "CMakeFiles/mts_viz.dir/geojson.cpp.o"
  "CMakeFiles/mts_viz.dir/geojson.cpp.o.d"
  "CMakeFiles/mts_viz.dir/svg.cpp.o"
  "CMakeFiles/mts_viz.dir/svg.cpp.o.d"
  "libmts_viz.a"
  "libmts_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
