# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("graph")
subdirs("lp")
subdirs("osm")
subdirs("citygen")
subdirs("attack")
subdirs("sim")
subdirs("exp")
subdirs("viz")
subdirs("cli")
