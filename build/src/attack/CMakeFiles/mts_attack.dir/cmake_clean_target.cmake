file(REMOVE_RECURSE
  "libmts_attack.a"
)
