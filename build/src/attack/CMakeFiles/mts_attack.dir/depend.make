# Empty dependencies file for mts_attack.
# This may be replaced when dependencies are built.
