file(REMOVE_RECURSE
  "CMakeFiles/mts_attack.dir/algorithms.cpp.o"
  "CMakeFiles/mts_attack.dir/algorithms.cpp.o.d"
  "CMakeFiles/mts_attack.dir/area_isolation.cpp.o"
  "CMakeFiles/mts_attack.dir/area_isolation.cpp.o.d"
  "CMakeFiles/mts_attack.dir/defense.cpp.o"
  "CMakeFiles/mts_attack.dir/defense.cpp.o.d"
  "CMakeFiles/mts_attack.dir/exact.cpp.o"
  "CMakeFiles/mts_attack.dir/exact.cpp.o.d"
  "CMakeFiles/mts_attack.dir/interdiction.cpp.o"
  "CMakeFiles/mts_attack.dir/interdiction.cpp.o.d"
  "CMakeFiles/mts_attack.dir/models.cpp.o"
  "CMakeFiles/mts_attack.dir/models.cpp.o.d"
  "CMakeFiles/mts_attack.dir/multi_victim.cpp.o"
  "CMakeFiles/mts_attack.dir/multi_victim.cpp.o.d"
  "CMakeFiles/mts_attack.dir/oracle.cpp.o"
  "CMakeFiles/mts_attack.dir/oracle.cpp.o.d"
  "CMakeFiles/mts_attack.dir/verify.cpp.o"
  "CMakeFiles/mts_attack.dir/verify.cpp.o.d"
  "libmts_attack.a"
  "libmts_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
