
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/algorithms.cpp" "src/attack/CMakeFiles/mts_attack.dir/algorithms.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/algorithms.cpp.o.d"
  "/root/repo/src/attack/area_isolation.cpp" "src/attack/CMakeFiles/mts_attack.dir/area_isolation.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/area_isolation.cpp.o.d"
  "/root/repo/src/attack/defense.cpp" "src/attack/CMakeFiles/mts_attack.dir/defense.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/defense.cpp.o.d"
  "/root/repo/src/attack/exact.cpp" "src/attack/CMakeFiles/mts_attack.dir/exact.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/exact.cpp.o.d"
  "/root/repo/src/attack/interdiction.cpp" "src/attack/CMakeFiles/mts_attack.dir/interdiction.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/interdiction.cpp.o.d"
  "/root/repo/src/attack/models.cpp" "src/attack/CMakeFiles/mts_attack.dir/models.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/models.cpp.o.d"
  "/root/repo/src/attack/multi_victim.cpp" "src/attack/CMakeFiles/mts_attack.dir/multi_victim.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/multi_victim.cpp.o.d"
  "/root/repo/src/attack/oracle.cpp" "src/attack/CMakeFiles/mts_attack.dir/oracle.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/oracle.cpp.o.d"
  "/root/repo/src/attack/verify.cpp" "src/attack/CMakeFiles/mts_attack.dir/verify.cpp.o" "gcc" "src/attack/CMakeFiles/mts_attack.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mts_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/mts_osm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
