# Empty dependencies file for mts_lp.
# This may be replaced when dependencies are built.
