file(REMOVE_RECURSE
  "libmts_lp.a"
)
