file(REMOVE_RECURSE
  "CMakeFiles/mts_lp.dir/covering.cpp.o"
  "CMakeFiles/mts_lp.dir/covering.cpp.o.d"
  "CMakeFiles/mts_lp.dir/simplex.cpp.o"
  "CMakeFiles/mts_lp.dir/simplex.cpp.o.d"
  "libmts_lp.a"
  "libmts_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
