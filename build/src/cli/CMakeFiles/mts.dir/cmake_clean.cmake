file(REMOVE_RECURSE
  "CMakeFiles/mts.dir/main.cpp.o"
  "CMakeFiles/mts.dir/main.cpp.o.d"
  "mts"
  "mts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
