# Empty compiler generated dependencies file for mts.
# This may be replaced when dependencies are built.
