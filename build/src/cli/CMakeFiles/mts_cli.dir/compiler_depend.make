# Empty compiler generated dependencies file for mts_cli.
# This may be replaced when dependencies are built.
