file(REMOVE_RECURSE
  "CMakeFiles/mts_cli.dir/cli.cpp.o"
  "CMakeFiles/mts_cli.dir/cli.cpp.o.d"
  "libmts_cli.a"
  "libmts_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
