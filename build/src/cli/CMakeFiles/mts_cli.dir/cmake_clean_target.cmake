file(REMOVE_RECURSE
  "libmts_cli.a"
)
