file(REMOVE_RECURSE
  "libmts_osm.a"
)
