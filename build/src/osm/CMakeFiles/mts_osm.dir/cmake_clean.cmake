file(REMOVE_RECURSE
  "CMakeFiles/mts_osm.dir/projection.cpp.o"
  "CMakeFiles/mts_osm.dir/projection.cpp.o.d"
  "CMakeFiles/mts_osm.dir/road_network.cpp.o"
  "CMakeFiles/mts_osm.dir/road_network.cpp.o.d"
  "CMakeFiles/mts_osm.dir/tags.cpp.o"
  "CMakeFiles/mts_osm.dir/tags.cpp.o.d"
  "CMakeFiles/mts_osm.dir/xml.cpp.o"
  "CMakeFiles/mts_osm.dir/xml.cpp.o.d"
  "libmts_osm.a"
  "libmts_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
