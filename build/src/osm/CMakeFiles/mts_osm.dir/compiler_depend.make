# Empty compiler generated dependencies file for mts_osm.
# This may be replaced when dependencies are built.
