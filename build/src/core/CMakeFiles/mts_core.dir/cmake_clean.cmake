file(REMOVE_RECURSE
  "CMakeFiles/mts_core.dir/env.cpp.o"
  "CMakeFiles/mts_core.dir/env.cpp.o.d"
  "CMakeFiles/mts_core.dir/rng.cpp.o"
  "CMakeFiles/mts_core.dir/rng.cpp.o.d"
  "CMakeFiles/mts_core.dir/stats.cpp.o"
  "CMakeFiles/mts_core.dir/stats.cpp.o.d"
  "CMakeFiles/mts_core.dir/table.cpp.o"
  "CMakeFiles/mts_core.dir/table.cpp.o.d"
  "libmts_core.a"
  "libmts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
