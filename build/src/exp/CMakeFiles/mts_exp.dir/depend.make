# Empty dependencies file for mts_exp.
# This may be replaced when dependencies are built.
