file(REMOVE_RECURSE
  "libmts_exp.a"
)
