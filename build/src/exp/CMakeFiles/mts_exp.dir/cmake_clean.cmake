file(REMOVE_RECURSE
  "CMakeFiles/mts_exp.dir/json_report.cpp.o"
  "CMakeFiles/mts_exp.dir/json_report.cpp.o.d"
  "CMakeFiles/mts_exp.dir/paper_values.cpp.o"
  "CMakeFiles/mts_exp.dir/paper_values.cpp.o.d"
  "CMakeFiles/mts_exp.dir/scenario.cpp.o"
  "CMakeFiles/mts_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/mts_exp.dir/table_runner.cpp.o"
  "CMakeFiles/mts_exp.dir/table_runner.cpp.o.d"
  "libmts_exp.a"
  "libmts_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
