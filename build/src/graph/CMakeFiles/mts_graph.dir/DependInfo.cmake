
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/astar.cpp" "src/graph/CMakeFiles/mts_graph.dir/astar.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/astar.cpp.o.d"
  "/root/repo/src/graph/bellman_ford.cpp" "src/graph/CMakeFiles/mts_graph.dir/bellman_ford.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/graph/betweenness.cpp" "src/graph/CMakeFiles/mts_graph.dir/betweenness.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/betweenness.cpp.o.d"
  "/root/repo/src/graph/bidirectional.cpp" "src/graph/CMakeFiles/mts_graph.dir/bidirectional.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/bidirectional.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/graph/CMakeFiles/mts_graph.dir/connectivity.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/connectivity.cpp.o.d"
  "/root/repo/src/graph/contraction_hierarchy.cpp" "src/graph/CMakeFiles/mts_graph.dir/contraction_hierarchy.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/contraction_hierarchy.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/mts_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/mts_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/eigen.cpp" "src/graph/CMakeFiles/mts_graph.dir/eigen.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/eigen.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/mts_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/mts_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/path.cpp" "src/graph/CMakeFiles/mts_graph.dir/path.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/path.cpp.o.d"
  "/root/repo/src/graph/shortest_path_count.cpp" "src/graph/CMakeFiles/mts_graph.dir/shortest_path_count.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/shortest_path_count.cpp.o.d"
  "/root/repo/src/graph/spatial_index.cpp" "src/graph/CMakeFiles/mts_graph.dir/spatial_index.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/spatial_index.cpp.o.d"
  "/root/repo/src/graph/turn_expansion.cpp" "src/graph/CMakeFiles/mts_graph.dir/turn_expansion.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/turn_expansion.cpp.o.d"
  "/root/repo/src/graph/yen.cpp" "src/graph/CMakeFiles/mts_graph.dir/yen.cpp.o" "gcc" "src/graph/CMakeFiles/mts_graph.dir/yen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
