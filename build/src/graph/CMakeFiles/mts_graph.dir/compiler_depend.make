# Empty compiler generated dependencies file for mts_graph.
# This may be replaced when dependencies are built.
