file(REMOVE_RECURSE
  "libmts_graph.a"
)
