# Empty dependencies file for mts_citygen.
# This may be replaced when dependencies are built.
