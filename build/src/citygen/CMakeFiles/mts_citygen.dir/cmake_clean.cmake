file(REMOVE_RECURSE
  "CMakeFiles/mts_citygen.dir/generate.cpp.o"
  "CMakeFiles/mts_citygen.dir/generate.cpp.o.d"
  "CMakeFiles/mts_citygen.dir/spec.cpp.o"
  "CMakeFiles/mts_citygen.dir/spec.cpp.o.d"
  "libmts_citygen.a"
  "libmts_citygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_citygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
