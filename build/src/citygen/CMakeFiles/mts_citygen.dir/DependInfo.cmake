
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/citygen/generate.cpp" "src/citygen/CMakeFiles/mts_citygen.dir/generate.cpp.o" "gcc" "src/citygen/CMakeFiles/mts_citygen.dir/generate.cpp.o.d"
  "/root/repo/src/citygen/spec.cpp" "src/citygen/CMakeFiles/mts_citygen.dir/spec.cpp.o" "gcc" "src/citygen/CMakeFiles/mts_citygen.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/mts_osm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
