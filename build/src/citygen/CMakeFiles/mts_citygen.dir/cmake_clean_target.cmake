file(REMOVE_RECURSE
  "libmts_citygen.a"
)
