file(REMOVE_RECURSE
  "CMakeFiles/table04_sf_length.dir/table_city.cpp.o"
  "CMakeFiles/table04_sf_length.dir/table_city.cpp.o.d"
  "table04_sf_length"
  "table04_sf_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_sf_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
