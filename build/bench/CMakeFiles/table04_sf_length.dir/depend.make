# Empty dependencies file for table04_sf_length.
# This may be replaced when dependencies are built.
