# Empty compiler generated dependencies file for ablation_path_rank.
# This may be replaced when dependencies are built.
