file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_rank.dir/ablation_path_rank.cpp.o"
  "CMakeFiles/ablation_path_rank.dir/ablation_path_rank.cpp.o.d"
  "ablation_path_rank"
  "ablation_path_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
