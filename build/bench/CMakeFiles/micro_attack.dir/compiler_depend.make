# Empty compiler generated dependencies file for micro_attack.
# This may be replaced when dependencies are built.
