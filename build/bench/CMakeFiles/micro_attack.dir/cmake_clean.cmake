file(REMOVE_RECURSE
  "CMakeFiles/micro_attack.dir/micro_attack.cpp.o"
  "CMakeFiles/micro_attack.dir/micro_attack.cpp.o.d"
  "micro_attack"
  "micro_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
