# Empty dependencies file for table06_chicago_length.
# This may be replaced when dependencies are built.
