file(REMOVE_RECURSE
  "CMakeFiles/table06_chicago_length.dir/table_city.cpp.o"
  "CMakeFiles/table06_chicago_length.dir/table_city.cpp.o.d"
  "table06_chicago_length"
  "table06_chicago_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_chicago_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
