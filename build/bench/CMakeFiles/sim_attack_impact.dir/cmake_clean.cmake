file(REMOVE_RECURSE
  "CMakeFiles/sim_attack_impact.dir/sim_attack_impact.cpp.o"
  "CMakeFiles/sim_attack_impact.dir/sim_attack_impact.cpp.o.d"
  "sim_attack_impact"
  "sim_attack_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_attack_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
