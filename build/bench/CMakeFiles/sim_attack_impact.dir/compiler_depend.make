# Empty compiler generated dependencies file for sim_attack_impact.
# This may be replaced when dependencies are built.
