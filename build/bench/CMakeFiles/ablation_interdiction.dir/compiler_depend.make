# Empty compiler generated dependencies file for ablation_interdiction.
# This may be replaced when dependencies are built.
