file(REMOVE_RECURSE
  "CMakeFiles/ablation_interdiction.dir/ablation_interdiction.cpp.o"
  "CMakeFiles/ablation_interdiction.dir/ablation_interdiction.cpp.o.d"
  "ablation_interdiction"
  "ablation_interdiction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interdiction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
