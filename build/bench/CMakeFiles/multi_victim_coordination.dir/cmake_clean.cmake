file(REMOVE_RECURSE
  "CMakeFiles/multi_victim_coordination.dir/multi_victim_coordination.cpp.o"
  "CMakeFiles/multi_victim_coordination.dir/multi_victim_coordination.cpp.o.d"
  "multi_victim_coordination"
  "multi_victim_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_victim_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
