# Empty compiler generated dependencies file for multi_victim_coordination.
# This may be replaced when dependencies are built.
