# Empty compiler generated dependencies file for table08_la_time.
# This may be replaced when dependencies are built.
