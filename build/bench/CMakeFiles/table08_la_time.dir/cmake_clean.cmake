file(REMOVE_RECURSE
  "CMakeFiles/table08_la_time.dir/table_city.cpp.o"
  "CMakeFiles/table08_la_time.dir/table_city.cpp.o.d"
  "table08_la_time"
  "table08_la_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_la_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
