file(REMOVE_RECURSE
  "CMakeFiles/table10_path_rank_threshold.dir/table10_path_rank_threshold.cpp.o"
  "CMakeFiles/table10_path_rank_threshold.dir/table10_path_rank_threshold.cpp.o.d"
  "table10_path_rank_threshold"
  "table10_path_rank_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_path_rank_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
