# Empty compiler generated dependencies file for table10_path_rank_threshold.
# This may be replaced when dependencies are built.
