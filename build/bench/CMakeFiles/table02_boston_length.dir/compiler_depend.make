# Empty compiler generated dependencies file for table02_boston_length.
# This may be replaced when dependencies are built.
