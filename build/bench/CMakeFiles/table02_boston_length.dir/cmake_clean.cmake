file(REMOVE_RECURSE
  "CMakeFiles/table02_boston_length.dir/table_city.cpp.o"
  "CMakeFiles/table02_boston_length.dir/table_city.cpp.o.d"
  "table02_boston_length"
  "table02_boston_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_boston_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
