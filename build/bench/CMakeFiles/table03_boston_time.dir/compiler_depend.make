# Empty compiler generated dependencies file for table03_boston_time.
# This may be replaced when dependencies are built.
