file(REMOVE_RECURSE
  "CMakeFiles/table03_boston_time.dir/table_city.cpp.o"
  "CMakeFiles/table03_boston_time.dir/table_city.cpp.o.d"
  "table03_boston_time"
  "table03_boston_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_boston_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
