# Empty dependencies file for table07_chicago_time.
# This may be replaced when dependencies are built.
