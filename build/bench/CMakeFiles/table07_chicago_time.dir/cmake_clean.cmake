file(REMOVE_RECURSE
  "CMakeFiles/table07_chicago_time.dir/table_city.cpp.o"
  "CMakeFiles/table07_chicago_time.dir/table_city.cpp.o.d"
  "table07_chicago_time"
  "table07_chicago_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_chicago_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
