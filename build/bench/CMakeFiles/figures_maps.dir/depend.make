# Empty dependencies file for figures_maps.
# This may be replaced when dependencies are built.
