file(REMOVE_RECURSE
  "CMakeFiles/figures_maps.dir/figures_maps.cpp.o"
  "CMakeFiles/figures_maps.dir/figures_maps.cpp.o.d"
  "figures_maps"
  "figures_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
