file(REMOVE_RECURSE
  "CMakeFiles/table01_city_summaries.dir/table01_city_summaries.cpp.o"
  "CMakeFiles/table01_city_summaries.dir/table01_city_summaries.cpp.o.d"
  "table01_city_summaries"
  "table01_city_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_city_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
