# Empty dependencies file for table01_city_summaries.
# This may be replaced when dependencies are built.
