# Empty compiler generated dependencies file for ablation_latticeness.
# This may be replaced when dependencies are built.
