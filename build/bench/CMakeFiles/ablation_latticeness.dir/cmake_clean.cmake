file(REMOVE_RECURSE
  "CMakeFiles/ablation_latticeness.dir/ablation_latticeness.cpp.o"
  "CMakeFiles/ablation_latticeness.dir/ablation_latticeness.cpp.o.d"
  "ablation_latticeness"
  "ablation_latticeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latticeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
