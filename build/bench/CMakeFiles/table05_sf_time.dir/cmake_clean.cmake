file(REMOVE_RECURSE
  "CMakeFiles/table05_sf_time.dir/table_city.cpp.o"
  "CMakeFiles/table05_sf_time.dir/table_city.cpp.o.d"
  "table05_sf_time"
  "table05_sf_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_sf_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
