# Empty compiler generated dependencies file for table05_sf_time.
# This may be replaced when dependencies are built.
