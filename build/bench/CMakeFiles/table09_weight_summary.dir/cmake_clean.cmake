file(REMOVE_RECURSE
  "CMakeFiles/table09_weight_summary.dir/table09_weight_summary.cpp.o"
  "CMakeFiles/table09_weight_summary.dir/table09_weight_summary.cpp.o.d"
  "table09_weight_summary"
  "table09_weight_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_weight_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
