# Empty dependencies file for table09_weight_summary.
# This may be replaced when dependencies are built.
