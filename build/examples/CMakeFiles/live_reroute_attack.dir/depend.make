# Empty dependencies file for live_reroute_attack.
# This may be replaced when dependencies are built.
