file(REMOVE_RECURSE
  "CMakeFiles/live_reroute_attack.dir/live_reroute_attack.cpp.o"
  "CMakeFiles/live_reroute_attack.dir/live_reroute_attack.cpp.o.d"
  "live_reroute_attack"
  "live_reroute_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_reroute_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
