# Empty dependencies file for coordinated_blockade.
# This may be replaced when dependencies are built.
