file(REMOVE_RECURSE
  "CMakeFiles/coordinated_blockade.dir/coordinated_blockade.cpp.o"
  "CMakeFiles/coordinated_blockade.dir/coordinated_blockade.cpp.o.d"
  "coordinated_blockade"
  "coordinated_blockade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinated_blockade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
