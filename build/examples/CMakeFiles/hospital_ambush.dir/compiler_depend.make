# Empty compiler generated dependencies file for hospital_ambush.
# This may be replaced when dependencies are built.
