file(REMOVE_RECURSE
  "CMakeFiles/hospital_ambush.dir/hospital_ambush.cpp.o"
  "CMakeFiles/hospital_ambush.dir/hospital_ambush.cpp.o.d"
  "hospital_ambush"
  "hospital_ambush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_ambush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
