file(REMOVE_RECURSE
  "CMakeFiles/area_isolation.dir/area_isolation.cpp.o"
  "CMakeFiles/area_isolation.dir/area_isolation.cpp.o.d"
  "area_isolation"
  "area_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
