# Empty dependencies file for area_isolation.
# This may be replaced when dependencies are built.
