
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/area_isolation.cpp" "examples/CMakeFiles/area_isolation.dir/area_isolation.cpp.o" "gcc" "examples/CMakeFiles/area_isolation.dir/area_isolation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mts_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/mts_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/citygen/CMakeFiles/mts_citygen.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mts_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/mts_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mts_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
