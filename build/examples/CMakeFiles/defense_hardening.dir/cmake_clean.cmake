file(REMOVE_RECURSE
  "CMakeFiles/defense_hardening.dir/defense_hardening.cpp.o"
  "CMakeFiles/defense_hardening.dir/defense_hardening.cpp.o.d"
  "defense_hardening"
  "defense_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
