# Empty compiler generated dependencies file for defense_hardening.
# This may be replaced when dependencies are built.
