file(REMOVE_RECURSE
  "CMakeFiles/toll_road_forcing.dir/toll_road_forcing.cpp.o"
  "CMakeFiles/toll_road_forcing.dir/toll_road_forcing.cpp.o.d"
  "toll_road_forcing"
  "toll_road_forcing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toll_road_forcing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
