# Empty compiler generated dependencies file for toll_road_forcing.
# This may be replaced when dependencies are built.
