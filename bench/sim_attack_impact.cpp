// Dynamic-impact bench: apply each algorithm's Force Path Cut plan as live
// road closures in the traffic simulator and measure the *realized* victim
// delay — the end-to-end harm the paper's static analysis predicts.
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "sim/traffic_sim.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("sim_attack_impact");
  const int trials = std::max(2, env.trials / 4);
  const int path_rank = std::min(env.path_rank, 50);

  const auto network = citygen::generate_city(citygen::City::Boston, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);
  const auto intersections = network.intersection_nodes();

  Rng rng(env.seed ^ 0x51515151ULL);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = path_rank;
  const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, scenario_options);

  Table table("Simulated victim delay under Force Path Cut closures (Boston, TIME, "
              "UNIFORM, p* rank " + std::to_string(path_rank) + ", 150 background vehicles)",
              {"Algorithm", "Mean Delay Factor", "Max Delay Factor", "Forced Route Taken",
               "Mean Removed"});

  for (Algorithm algorithm : attack::kAllAlgorithms) {
    RunningStats delay;
    RunningStats removed;
    int forced_route = 0;
    int runs = 0;
    for (const auto& scenario : scenarios) {
      attack::ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs;
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;
      const auto attack_result = run_attack(algorithm, problem);
      if (attack_result.status != attack::AttackStatus::Success) continue;

      auto simulate = [&](bool attacked) {
        sim::TrafficSimulation simulation(network);
        simulation.add_vehicle({scenario.source, scenario.target, 30.0, true});
        Rng traffic_rng(env.seed + 5);
        for (int i = 0; i < 150; ++i) {
          const NodeId from = intersections[traffic_rng.uniform_index(intersections.size())];
          const NodeId to = intersections[traffic_rng.uniform_index(intersections.size())];
          simulation.add_vehicle({from, to, traffic_rng.uniform(0.0, 120.0)});
        }
        if (attacked) {
          for (EdgeId e : attack_result.removed_edges) simulation.add_closure(e, 0.0);
        }
        return simulation.run();
      };

      const auto baseline = simulate(false).victim_outcome();
      const auto attacked_run = simulate(true);
      const auto attacked = attacked_run.victim_outcome();
      if (!baseline || !baseline->arrived || !attacked || !attacked->arrived) continue;

      delay.add(attacked->travel_time_s / baseline->travel_time_s);
      removed.add(static_cast<double>(attack_result.num_removed()));
      if (attacked->route_taken == scenario.p_star.edges) ++forced_route;
      ++runs;
    }
    if (runs == 0) continue;
    table.add_row({to_string(algorithm), format_fixed(delay.mean(), 2),
                   format_fixed(delay.max(), 2),
                   std::to_string(forced_route) + "/" + std::to_string(runs),
                   format_fixed(removed.mean(), 2)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/sim_attack_impact.csv");
  exp::save_observability("bench_results/sim_attack_impact");
  std::cout << "\n'Forced Route Taken' counts runs where the dynamically-rerouting victim\n"
               "drove exactly the attacker-chosen p* (background congestion can justify\n"
               "small deviations).  Delay factor = attacked / unattacked travel time.\n";
  return 0;
}
