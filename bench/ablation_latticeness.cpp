// Ablation — the paper's topology claim as a controlled sweep: hold
// everything fixed and dial latticeness from Chicago-like (organic=0) to
// Boston-like (organic=1).  Reports orientation order, the 100th-path
// threshold, and the naive-vs-LP ACRE gap at each setting.
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "graph/metrics.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_latticeness");
  const int trials = std::max(2, env.trials / 3);
  const int path_rank = std::min(env.path_rank, 60);

  Table table("Ablation — attack cost gap vs latticeness (organic dial)",
              {"Organic", "Orientation Order", "Avg Incr to p* rank " + std::to_string(path_rank),
               "LP ACRE", "Naive ACRE", "Gap"});

  for (double organic : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto spec = citygen::latticeness_spec(organic, env.scale);
    const auto network = citygen::generate_network(spec, env.seed);
    const auto metrics = compute_network_metrics(network.graph());
    const auto weights = attack::make_weights(network, attack::WeightType::Time);
    const auto costs = attack::make_costs(network, attack::CostType::Width);

    Rng rng(env.seed ^ 0xabcdULL);
    exp::ScenarioOptions options;
    options.path_rank = path_rank;
    const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, options);

    double increase = 0.0;
    double lp_acre = 0.0;
    double naive_acre = 0.0;
    int n = 0;
    for (const auto& scenario : scenarios) {
      increase += (scenario.p_star_length / scenario.shortest_length - 1.0) * 100.0;
      attack::ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs;
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;
      const auto lp = run_attack(Algorithm::LpPathCover, problem);
      const auto naive = run_attack(Algorithm::GreedyEdge, problem);
      if (lp.status != attack::AttackStatus::Success ||
          naive.status != attack::AttackStatus::Success) {
        continue;
      }
      lp_acre += lp.total_cost;
      naive_acre += naive.total_cost;
      ++n;
    }
    if (n == 0) continue;
    table.add_row({format_fixed(organic, 2), format_fixed(metrics.orientation_order, 3),
                   format_fixed(increase / n, 2) + "%", format_fixed(lp_acre / n, 2),
                   format_fixed(naive_acre / n, 2),
                   format_fixed((naive_acre - lp_acre) / n, 2)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_latticeness.csv");
  exp::save_observability("bench_results/ablation_latticeness");
  std::cout << "\nExpected shape (paper §III-B): as organic grows, the path-rank threshold\n"
               "increases and the naive-vs-LP gap widens.\n";
  return 0;
}
