// Ablation — defensive hardening: how fast does greedily protecting road
// segments drive the attacker's forcing cost up (and when does the attack
// become impossible)?
#include <cmath>
#include <iostream>

#include "attack/defense.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_defense");
  const int trials = std::max(3, env.trials / 4);
  const int path_rank = std::min(env.path_rank, 40);
  constexpr std::size_t kMaxProtected = 8;

  const auto network = citygen::generate_city(citygen::City::Chicago, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  Rng rng(env.seed ^ 0x13579bdfULL);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = path_rank;
  const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, scenario_options);

  // cost_after_k[k] aggregates attack cost once k edges are protected.
  std::vector<RunningStats> cost_after(kMaxProtected + 1);
  int blocked = 0;
  int runs = 0;
  for (const auto& scenario : scenarios) {
    attack::ForcePathCutProblem problem;
    problem.graph = &network.graph();
    problem.weights = weights;
    problem.costs = costs;
    problem.source = scenario.source;
    problem.target = scenario.target;
    problem.p_star = scenario.p_star;
    problem.seed_paths = scenario.prefix;

    const auto defense = attack::harden_against_force_path_cut(problem, kMaxProtected);
    if (!std::isfinite(defense.initial_attack_cost)) continue;
    ++runs;
    cost_after[0].add(defense.initial_attack_cost);
    for (std::size_t k = 0; k < defense.rounds.size(); ++k) {
      const double cost = defense.rounds[k].attack_cost_after;
      if (!std::isfinite(cost)) break;
      cost_after[k + 1].add(cost);
    }
    if (defense.attack_blocked) ++blocked;
  }

  Table table("Ablation — greedy hardening vs attack cost (Chicago, TIME, UNIFORM, " +
                  std::to_string(runs) + " scenarios)",
              {"Protected Edges", "Mean Attack Cost", "Scenarios Still Attackable"});
  for (std::size_t k = 0; k <= kMaxProtected; ++k) {
    if (cost_after[k].count() == 0 && k > 0) break;
    table.add_row({std::to_string(k), format_fixed(cost_after[k].mean(), 2),
                   std::to_string(cost_after[k].count()) + "/" + std::to_string(runs)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_defense.csv");
  exp::save_observability("bench_results/ablation_defense");
  std::cout << "\nAttacks fully blocked by " << kMaxProtected
            << " protections: " << blocked << "/" << runs
            << ".  Expected shape: cost is non-decreasing in protections.\n";
  return 0;
}
