// Ablation — attack effort as a function of the forced path's rank.  The
// paper fixes p* at the 100th shortest path; this sweep shows how ANER /
// ACRE grow with rank (deeper alternatives need more roads blocked).
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;
  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_path_rank");
  const int trials = std::max(2, env.trials / 3);

  const auto network = citygen::generate_city(citygen::City::Chicago, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  Table table("Ablation — GreedyPathCover effort vs path rank (Chicago, TIME, UNIFORM)",
              {"Path Rank", "ANER", "ACRE", "Avg Incr over shortest", "Avg Runtime"});

  for (int rank : {10, 25, 50, 100, 200}) {
    Rng rng(env.seed + static_cast<std::uint64_t>(rank));
    exp::ScenarioOptions options;
    options.path_rank = rank;
    const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, options);
    double aner = 0.0;
    double acre = 0.0;
    double increase = 0.0;
    double runtime = 0.0;
    int n = 0;
    for (const auto& scenario : scenarios) {
      attack::ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs;
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;
      const auto result = run_attack(attack::Algorithm::GreedyPathCover, problem);
      if (result.status != attack::AttackStatus::Success) continue;
      aner += static_cast<double>(result.num_removed());
      acre += result.total_cost;
      increase += (scenario.p_star_length / scenario.shortest_length - 1.0) * 100.0;
      runtime += result.seconds;
      ++n;
    }
    if (n == 0) continue;
    table.add_row({std::to_string(rank), format_fixed(aner / n, 2), format_fixed(acre / n, 2),
                   format_fixed(increase / n, 2) + "%", format_fixed(runtime / n, 4)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_path_rank.csv");
  exp::save_observability("bench_results/ablation_path_rank");
  std::cout << "\nExpected shape: ANER/ACRE grow with rank — deeper alternatives require\n"
               "cutting more near-optimal routes.\n";
  return 0;
}
