// Table X — average % increase in path length (TIME weight) from the
// shortest to the 100th and 200th shortest path, per city.
#include <iostream>

#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "exp/paper_values.hpp"
#include "exp/table_runner.hpp"

int main() {
  using namespace mts;
  const auto env = BenchEnv::from_environment();
  env.print_run_header("table10_path_rank_threshold");

  Table table("Table X — Threshold table, weight type: TIME",
              {"City", "Avg Incr to 100th", "Avg Incr to 200th", "Paper 100th", "Paper 200th"});
  for (citygen::City city : citygen::kAllCities) {
    const auto row = exp::run_threshold_experiment(city, env.scale, env.trials, env.seed);
    const auto paper = exp::paper_table10(city);
    table.add_row({citygen::to_string(city), format_fixed(row.avg_increase_100th, 2) + "%",
                   format_fixed(row.avg_increase_200th, 2) + "%",
                   paper ? format_fixed(paper->increase_100th, 2) + "%" : "n/a",
                   paper ? format_fixed(paper->increase_200th, 2) + "%" : "n/a"});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/table10_path_rank_threshold.csv");
  exp::save_observability("bench_results/table10_path_rank_threshold");
  std::cout << "\nShape check: organic cities (Boston) should show a larger increase than\n"
               "lattice cities (Chicago), which drives the naive-vs-LP gap (paper §III-B).\n";
  return 0;
}
