// Microbenchmarks for the simplex solver on covering LPs of increasing
// size (the LP-PathCover inner loop).
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "lp/covering.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace mts;

LpProblem random_covering_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  LpProblem lp;
  lp.num_vars = vars;
  for (std::size_t j = 0; j < vars; ++j) lp.objective.push_back(rng.uniform(0.5, 4.0));
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::size_t> indices;
    std::vector<double> values;
    for (std::size_t j = 0; j < vars; ++j) {
      if (rng.chance(0.08)) {
        indices.push_back(j);
        values.push_back(1.0);
      }
    }
    if (indices.empty()) {
      indices.push_back(rng.uniform_index(vars));
      values.push_back(1.0);
    }
    lp.add_constraint(std::move(indices), std::move(values), Relation::GreaterEqual, 1.0);
  }
  return lp;
}

void BM_SimplexCoveringLp(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  const auto lp = random_covering_lp(vars, rows, 42);
  for (auto _ : state) {
    const auto result = solve_lp(lp);
    if (result.status != LpStatus::Optimal) state.SkipWithError("LP not optimal");
    benchmark::DoNotOptimize(result.objective);
  }
}

void BM_CoveringLpWithRounding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  CoveringProblem problem;
  for (std::size_t j = 0; j < n; ++j) problem.costs.push_back(rng.uniform(0.5, 4.0));
  for (std::size_t i = 0; i < n / 4; ++i) {
    std::vector<std::size_t> set;
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.1)) set.push_back(j);
    }
    if (set.empty()) set.push_back(rng.uniform_index(n));
    problem.sets.push_back(std::move(set));
  }
  for (auto _ : state) {
    Rng round_rng(13);
    const auto solution = solve_covering_lp(problem, round_rng);
    benchmark::DoNotOptimize(solution.cost);
  }
}

void BM_CoveringGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  CoveringProblem problem;
  for (std::size_t j = 0; j < n; ++j) problem.costs.push_back(rng.uniform(0.5, 4.0));
  for (std::size_t i = 0; i < n / 4; ++i) {
    std::vector<std::size_t> set;
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.1)) set.push_back(j);
    }
    if (set.empty()) set.push_back(rng.uniform_index(n));
    problem.sets.push_back(std::move(set));
  }
  for (auto _ : state) {
    const auto solution = solve_covering_greedy(problem);
    benchmark::DoNotOptimize(solution.cost);
  }
}

}  // namespace

BENCHMARK(BM_SimplexCoveringLp)->Args({50, 20})->Args({200, 60})->Args({800, 120})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoveringLpWithRounding)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoveringGreedy)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);
