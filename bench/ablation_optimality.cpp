// Ablation — how close do the paper's four approximations get to the
// certified optimum?  PATHATTACK reports its LP variant optimal in > 98%
// of instances; our exact branch-and-bound baseline lets us measure the
// same rate (plus the mean cost ratio) for every algorithm.
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/exact.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;
  using attack::AttackStatus;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_optimality");
  const int trials = std::max(6, env.trials);
  const int path_rank = std::min(env.path_rank, 60);

  const auto network = citygen::generate_city(citygen::City::Boston, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Width);

  Rng rng(env.seed ^ 0xbadc0deULL);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = path_rank;
  const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, scenario_options);

  struct Tally {
    int optimal = 0;
    int total = 0;
    RunningStats ratio;
  };
  Tally tallies[4];
  int certified = 0;

  for (const auto& scenario : scenarios) {
    attack::ForcePathCutProblem problem;
    problem.graph = &network.graph();
    problem.weights = weights;
    problem.costs = costs;
    problem.source = scenario.source;
    problem.target = scenario.target;
    problem.p_star = scenario.p_star;
    problem.seed_paths = scenario.prefix;

    const auto exact = run_exact_attack(problem);
    if (exact.status != AttackStatus::Success || !exact.proven_optimal) continue;
    ++certified;
    for (Algorithm algorithm : attack::kAllAlgorithms) {
      const auto approx = run_attack(algorithm, problem);
      if (approx.status != AttackStatus::Success) continue;
      auto& tally = tallies[static_cast<std::size_t>(algorithm)];
      ++tally.total;
      if (approx.total_cost <= exact.total_cost + 1e-9) ++tally.optimal;
      tally.ratio.add(approx.total_cost / exact.total_cost);
    }
  }

  Table table("Ablation — optimality vs certified exact optimum (Boston, TIME, WIDTH, "
              "p* rank " + std::to_string(path_rank) + ", " + std::to_string(certified) +
                  " certified instances)",
              {"Algorithm", "Optimal Instances", "Mean Cost / Optimum", "Worst Cost / Optimum"});
  for (Algorithm algorithm : attack::kAllAlgorithms) {
    const auto& tally = tallies[static_cast<std::size_t>(algorithm)];
    if (tally.total == 0) continue;
    table.add_row({to_string(algorithm),
                   std::to_string(tally.optimal) + "/" + std::to_string(tally.total),
                   format_fixed(tally.ratio.mean(), 3), format_fixed(tally.ratio.max(), 3)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_optimality.csv");
  exp::save_observability("bench_results/ablation_optimality");
  std::cout << "\nPATHATTACK (Miller et al. 2021) reports the LP approach optimal in > 98%\n"
               "of instances; LP-PathCover and GreedyPathCover should sit near 100% here,\n"
               "the naive algorithms well below.\n";
  return 0;
}
