// Ablation — attacker budget vs success.  The paper's constraint model
// (§II-A) caps the attacker's total removal cost; this sweep shows the
// success-rate curve and where each algorithm's plans start fitting.
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;
  using attack::AttackStatus;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_budget");
  const int trials = std::max(4, env.trials / 2);
  const int path_rank = std::min(env.path_rank, 60);

  const auto network = citygen::generate_city(citygen::City::SanFrancisco, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Lanes);

  Rng rng(env.seed ^ 0x77777777ULL);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = path_rank;
  const auto scenarios = exp::sample_scenarios(network, weights, trials, rng, scenario_options);

  Table table("Ablation — success rate vs budget (San Francisco, TIME, LANES)",
              {"Budget", "LP-PathCover", "GreedyPathCover", "GreedyEdge", "GreedyEig"});

  for (double budget : {2.0, 4.0, 6.0, 8.0, 12.0, 1e18}) {
    std::vector<std::string> row = {budget > 1e17 ? "unlimited" : format_fixed(budget, 0)};
    for (Algorithm algorithm : attack::kAllAlgorithms) {
      int successes = 0;
      for (const auto& scenario : scenarios) {
        attack::ForcePathCutProblem problem;
        problem.graph = &network.graph();
        problem.weights = weights;
        problem.costs = costs;
        problem.source = scenario.source;
        problem.target = scenario.target;
        problem.p_star = scenario.p_star;
        problem.seed_paths = scenario.prefix;
        problem.budget = budget;
        const auto result = run_attack(algorithm, problem);
        if (result.status == AttackStatus::Success) ++successes;
      }
      row.push_back(std::to_string(successes) + "/" + std::to_string(scenarios.size()));
    }
    table.add_row(std::move(row));
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_budget.csv");
  exp::save_observability("bench_results/ablation_budget");
  std::cout << "\nExpected shape: cover-based algorithms fit tighter budgets than the naive\n"
               "ones because their plans cost less (Tables II-VIII).\n";
  return 0;
}
