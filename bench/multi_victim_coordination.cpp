// Coordination bench — §II-A multi-victim attacks: one shared closure set
// forcing several victims at once, vs. the naive sum of per-victim plans.
// Shared cuts overlap (victims to the same hospital share corridors), so
// coordination should cost less than the sum of individual attacks.
#include <iostream>

#include "attack/models.hpp"
#include "attack/multi_victim.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;
  using attack::AttackStatus;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("multi_victim_coordination");
  const int groups = std::max(3, env.trials / 6);
  const int path_rank = std::min(env.path_rank, 30);

  const auto network = citygen::generate_city(citygen::City::Chicago, env.scale, env.seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  Table table("Multi-victim coordination (Chicago, TIME, UNIFORM, p* rank " +
                  std::to_string(path_rank) + ")",
              {"Victims", "Shared Cut Cost", "Sum of Individual Costs", "Savings",
               "Feasible Groups"});

  Rng rng(env.seed ^ 0xfeedULL);
  for (std::size_t victims : {2u, 3u, 4u}) {
    RunningStats shared_cost;
    RunningStats individual_cost;
    int feasible = 0;
    for (int group = 0; group < groups; ++group) {
      exp::ScenarioOptions options;
      options.path_rank = path_rank;
      attack::MultiVictimProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs;
      double solo_total = 0.0;
      bool solo_ok = true;
      while (problem.victims.size() < victims) {
        const auto scenario =
            exp::sample_scenario(network, weights, group % 4, rng, options);
        if (!scenario) break;
        bool duplicate = false;
        for (const auto& v : problem.victims) duplicate |= v.source == scenario->source;
        if (duplicate) continue;
        problem.victims.push_back(
            {scenario->source, scenario->target, scenario->p_star, scenario->prefix});

        attack::ForcePathCutProblem solo;
        solo.graph = problem.graph;
        solo.weights = weights;
        solo.costs = costs;
        solo.source = scenario->source;
        solo.target = scenario->target;
        solo.p_star = scenario->p_star;
        solo.seed_paths = scenario->prefix;
        const auto solo_result = run_attack(attack::Algorithm::GreedyPathCover, solo);
        solo_ok &= solo_result.status == AttackStatus::Success;
        solo_total += solo_result.total_cost;
      }
      if (problem.victims.size() < victims || !solo_ok) continue;

      const auto shared = run_multi_victim_attack(problem);
      if (shared.status != AttackStatus::Success) continue;
      shared_cost.add(shared.total_cost);
      individual_cost.add(solo_total);
      ++feasible;
    }
    if (feasible == 0) continue;
    table.add_row({std::to_string(victims), format_fixed(shared_cost.mean(), 2),
                   format_fixed(individual_cost.mean(), 2),
                   format_fixed((1.0 - shared_cost.mean() /
                                           std::max(1e-9, individual_cost.mean())) * 100.0,
                                1) + "%",
                   std::to_string(feasible) + "/" + std::to_string(groups)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/multi_victim_coordination.csv");
  exp::save_observability("bench_results/multi_victim_coordination");
  std::cout << "\nNote: the shared cut must avoid EVERY victim's chosen route, so its cost\n"
               "is not always below the naive sum — but overlap usually wins.\n";
  return 0;
}
