// Figures 1-4 — one rendered attack per city, matching the paper's
// figure setups (hospital, weight type, cost type), written to figures/.
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "viz/geojson.hpp"
#include "viz/svg.hpp"

namespace {

struct FigureSpec {
  int number;
  mts::citygen::City city;
  const char* hospital;
  mts::attack::WeightType weight;
  mts::attack::CostType cost;
  const char* file;
};

}  // namespace

int main() {
  using namespace mts;
  const auto env = BenchEnv::from_environment();
  env.print_run_header("figures_maps");

  const FigureSpec figures[] = {
      {1, citygen::City::Boston, "Brigham and Women's Hospital", attack::WeightType::Length,
       attack::CostType::Width, "figures/fig1_boston.svg"},
      {2, citygen::City::SanFrancisco, "UCSF Medical Center at Mission Bay",
       attack::WeightType::Length, attack::CostType::Width, "figures/fig2_san_francisco.svg"},
      {3, citygen::City::Chicago, "Northwestern Memorial Hospital", attack::WeightType::Length,
       attack::CostType::Uniform, "figures/fig3_chicago.svg"},
      {4, citygen::City::LosAngeles, "LA Downtown Medical Center", attack::WeightType::Time,
       attack::CostType::Lanes, "figures/fig4_los_angeles.svg"},
  };

  int failures = 0;
  for (const auto& figure : figures) {
    const auto network = citygen::generate_city(figure.city, env.scale, env.seed);
    const auto weights = attack::make_weights(network, figure.weight);
    const auto costs = attack::make_costs(network, figure.cost);

    // Find the named hospital's POI index.
    std::size_t hospital_index = network.pois().size();
    for (std::size_t i = 0; i < network.pois().size(); ++i) {
      if (network.pois()[i].name == figure.hospital) hospital_index = i;
    }
    if (hospital_index == network.pois().size()) {
      std::cerr << "figure " << figure.number << ": hospital not found\n";
      ++failures;
      continue;
    }

    Rng rng(env.seed + static_cast<std::uint64_t>(figure.number));
    exp::ScenarioOptions options;
    options.path_rank = env.path_rank;
    const auto scenario = exp::sample_scenario(network, weights, hospital_index, rng, options);
    if (!scenario) {
      std::cerr << "figure " << figure.number << ": scenario sampling failed\n";
      ++failures;
      continue;
    }

    attack::ForcePathCutProblem problem;
    problem.graph = &network.graph();
    problem.weights = weights;
    problem.costs = costs;
    problem.source = scenario->source;
    problem.target = scenario->target;
    problem.p_star = scenario->p_star;
    problem.seed_paths = scenario->prefix;

    const auto result = run_attack(attack::Algorithm::GreedyPathCover, problem);
    const auto verdict = attack::verify_attack(problem, result.removed_edges);
    if (result.status != attack::AttackStatus::Success || !verdict.ok) {
      std::cerr << "figure " << figure.number << ": attack failed (" << verdict.reason << ")\n";
      ++failures;
      continue;
    }

    viz::RenderOptions render;
    render.title = std::string("Fig ") + std::to_string(figure.number) + ": " +
                   citygen::to_string(figure.city) + " — " + figure.hospital + " (" +
                   to_string(figure.weight) + "/" + to_string(figure.cost) + ")";
    viz::save_attack_svg(figure.file, network, problem.p_star, result.removed_edges,
                         problem.source, problem.target, render);
    std::string geojson_file = figure.file;
    geojson_file.replace(geojson_file.find(".svg"), 4, ".geojson");
    viz::save_attack_geojson(geojson_file, network, problem.p_star, result.removed_edges,
                             problem.source, problem.target);
    std::cout << "figure " << figure.number << ": " << figure.file << " + .geojson  (removed "
              << result.num_removed() << " segments, cost " << format_fixed(result.total_cost, 2)
              << ", p* rank " << env.path_rank << ")\n";
  }
  exp::save_observability("figures/figures_maps");
  return failures;
}
