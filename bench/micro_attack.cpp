// Microbenchmarks for the four attack algorithms on a fixed scenario:
// the per-attack latency the paper's Avg Runtime columns measure.
#include <benchmark/benchmark.h>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "exp/scenario.hpp"

namespace {

using namespace mts;

struct AttackFixture {
  osm::RoadNetwork network;
  std::vector<double> weights;
  std::vector<double> costs;
  exp::Scenario scenario;
};

const AttackFixture& fixture() {
  static const AttackFixture f = [] {
    AttackFixture result{citygen::generate_city(citygen::City::Chicago, 0.5, 7), {}, {}, {}};
    result.weights = attack::make_weights(result.network, attack::WeightType::Time);
    result.costs = attack::make_costs(result.network, attack::CostType::Width);
    Rng rng(11);
    exp::ScenarioOptions options;
    options.path_rank = 50;
    auto scenario = exp::sample_scenario(result.network, result.weights, 0, rng, options);
    if (!scenario) throw Error("micro_attack: scenario sampling failed");
    result.scenario = std::move(*scenario);
    return result;
  }();
  return f;
}

void BM_Attack(benchmark::State& state, attack::Algorithm algorithm) {
  const auto& f = fixture();
  attack::ForcePathCutProblem problem;
  problem.graph = &f.network.graph();
  problem.weights = f.weights;
  problem.costs = f.costs;
  problem.source = f.scenario.source;
  problem.target = f.scenario.target;
  problem.p_star = f.scenario.p_star;
  problem.seed_paths = f.scenario.prefix;

  std::size_t removed = 0;
  for (auto _ : state) {
    const auto result = run_attack(algorithm, problem);
    removed = result.num_removed();
    benchmark::DoNotOptimize(result.total_cost);
  }
  state.SetLabel("removed=" + std::to_string(removed));
}

void BM_ScenarioYenPreprocessing(benchmark::State& state) {
  const auto& f = fixture();
  Rng rng(11);
  exp::ScenarioOptions options;
  options.path_rank = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto scenario = exp::sample_scenario(f.network, f.weights, 0, rng, options);
    benchmark::DoNotOptimize(scenario);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Attack, lp_pathcover, attack::Algorithm::LpPathCover)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Attack, greedy_pathcover, attack::Algorithm::GreedyPathCover)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Attack, greedy_edge, attack::Algorithm::GreedyEdge)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Attack, greedy_eig, attack::Algorithm::GreedyEig)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScenarioYenPreprocessing)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);
