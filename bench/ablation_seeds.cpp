// Ablation — seed stability: our cities are synthetic, so every headline
// number should be robust across generator realizations.  Reports the
// across-seed spread of ANER/ACRE (GreedyPathCover, the paper's
// recommended algorithm) and of the Table X threshold, per city.
#include <iostream>

#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/stats.hpp"
#include "exp/table_runner.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;
  using attack::CostType;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_seeds");
  const int trials = std::max(4, env.trials / 3);
  const std::uint64_t seeds[] = {env.seed, env.seed + 101, env.seed + 202};

  Table table("Ablation — across-seed stability (GreedyPathCover, TIME, UNIFORM, " +
                  std::to_string(trials) + " scenarios x " + std::to_string(std::size(seeds)) +
                  " seeds)",
              {"City", "ANER Mean", "ANER Spread", "ACRE Mean", "ACRE Spread",
               "Incr-to-100th Mean", "Incr Spread"});

  for (citygen::City city : citygen::kAllCities) {
    RunningStats aner;
    RunningStats acre;
    RunningStats incr;
    for (std::uint64_t seed : seeds) {
      exp::RunConfig config;
      config.city = city;
      config.scale = env.scale;
      config.weight = attack::WeightType::Time;
      config.trials = trials;
      config.path_rank = std::min(env.path_rank, 100);
      config.seed = seed;
      config.deterministic_timing = !env.timing;
      const auto result = exp::run_city_table(config);
      const auto& cell = result.cell(Algorithm::GreedyPathCover, CostType::Uniform);
      if (cell.n == 0) continue;
      aner.add(cell.aner());
      acre.add(cell.acre());
      const auto threshold = exp::run_threshold_experiment(city, env.scale, trials, seed);
      if (threshold.n > 0) incr.add(threshold.avg_increase_100th);
    }
    if (aner.count() == 0) continue;
    table.add_row({citygen::to_string(city), format_fixed(aner.mean(), 2),
                   format_fixed(aner.max() - aner.min(), 2), format_fixed(acre.mean(), 2),
                   format_fixed(acre.max() - acre.min(), 2), format_fixed(incr.mean(), 2) + "%",
                   format_fixed(incr.max() - incr.min(), 2) + "%"});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_seeds.csv");
  exp::save_observability("bench_results/ablation_seeds");
  std::cout << "\n'Spread' is max - min over generator seeds: how much of each headline\n"
               "number is city shape vs. one particular realization.\n";
  return 0;
}
