// Tables II-VIII — one city x weight-type grid: the four Force Path Cut
// algorithms against the three cost models, reporting Avg Runtime / ANER /
// ACRE, with the paper's values printed alongside.
//
// Compile-time parameters (set per target in bench/CMakeLists.txt):
//   MTS_TABLE_CITY    Boston | SanFrancisco | Chicago | LosAngeles
//   MTS_TABLE_WEIGHT  Length | Time
//   MTS_TABLE_NUM     paper table number (2..8)
#include <cstring>
#include <iostream>

#include "core/budget.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "exp/paper_values.hpp"
#include "exp/table_runner.hpp"

int main(int argc, char** argv) {
  using namespace mts;
  using exp::RunConfig;

  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--resume]\n"
                << "  --resume  skip cells already in the MTS_CHECKPOINT journal\n";
      return 2;
    }
  }

  const auto env = BenchEnv::from_environment();
  const std::string base = "bench_results/table0" + std::to_string(MTS_TABLE_NUM);
  env.print_run_header("table0" + std::to_string(MTS_TABLE_NUM) + "_" +
                       citygen::to_string(citygen::City::MTS_TABLE_CITY));
  RunConfig config;
  config.city = citygen::City::MTS_TABLE_CITY;
  config.weight = attack::WeightType::MTS_TABLE_WEIGHT;
  config.scale = env.scale;
  config.trials = env.trials;
  config.path_rank = env.path_rank;
  config.seed = env.seed;
  config.deterministic_timing = !env.timing;
  config.work_budget = WorkBudget::from_environment();
  config.checkpoint_path = env.checkpoint;
  config.resume = resume;
  if (resume && config.checkpoint_path.empty()) {
    // --resume without MTS_CHECKPOINT: use the table's conventional journal.
    config.checkpoint_path = base + "_journal.jsonl";
  }

  const auto result = exp::run_city_table(config);
  auto table = exp::render_city_table(result);
  table.render_text(std::cout);
  table.save_csv(base + "_" + citygen::to_string(config.city) + "_" + to_string(config.weight) +
                 ".csv");
  exp::render_city_table_detailed(result).save_csv(base + "_detailed.csv");
  exp::save_json(result, base + ".json");
  exp::save_observability(base);

  // Paper comparison: shape, not absolute numbers (different hardware,
  // different substrate scale).
  Table cmp("Paper comparison (Table " + std::to_string(MTS_TABLE_NUM) + ")",
            {"Algorithm", "Cost", "ANER (ours)", "ANER (paper)", "ACRE (ours)", "ACRE (paper)"});
  for (attack::Algorithm algorithm : attack::kAllAlgorithms) {
    for (attack::CostType cost : attack::kAllCostTypes) {
      const auto paper = exp::paper_cell(config.city, config.weight, algorithm, cost);
      if (!paper) continue;
      const auto& cell = result.cell(algorithm, cost);
      cmp.add_row({to_string(algorithm), to_string(cost), format_fixed(cell.aner(), 2),
                   format_fixed(paper->aner, 2), format_fixed(cell.acre(), 2),
                   format_fixed(paper->acre, 2)});
    }
  }
  std::cout << '\n';
  cmp.render_text(std::cout);

  // Headline shape checks printed for EXPERIMENTS.md.
  const auto& lp_uniform = result.cell(attack::Algorithm::LpPathCover, attack::CostType::Uniform);
  const auto& gpc_uniform =
      result.cell(attack::Algorithm::GreedyPathCover, attack::CostType::Uniform);
  if (gpc_uniform.avg_runtime() > 0.0) {
    std::cout << "\nLP-PathCover / GreedyPathCover runtime ratio: "
              << format_fixed(lp_uniform.avg_runtime() / gpc_uniform.avg_runtime(), 2)
              << " (paper: ~5-10x)\n";
  }
  int failures = 0;
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (attack::CostType c : attack::kAllCostTypes) {
      failures += result.cell(a, c).verification_failures;
    }
  }
  std::cout << "Scenarios: " << result.scenarios_run
            << ", verification failures: " << failures << '\n';
  return failures == 0 ? 0 : 1;
}
