// Table IX — ANER and ACRE averaged across all cost types and algorithms,
// per city and weight type.  Also re-derives the §III-B headline: the
// naive-vs-LP attack-cost gap, Boston vs Chicago.
#include <iostream>

#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "exp/paper_values.hpp"
#include "exp/table_runner.hpp"

int main() {
  using namespace mts;
  using attack::Algorithm;
  using attack::CostType;
  using attack::WeightType;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("table09_weight_summary");

  Table table("Table IX — Average ANER and ACRE across all city and weight type combinations",
              {"City", "Weight", "ANER", "ACRE", "ANER (paper)", "ACRE (paper)"});

  struct GapInput {
    double lp_acre = 0.0;
    double naive_acre = 0.0;
    int n = 0;
  };
  GapInput boston_gap;
  GapInput chicago_gap;

  for (citygen::City city : citygen::kAllCities) {
    for (WeightType weight : attack::kAllWeightTypes) {
      exp::RunConfig config;
      config.city = city;
      config.weight = weight;
      config.scale = env.scale;
      config.trials = env.trials;
      config.path_rank = env.path_rank;
      config.seed = env.seed;
      config.deterministic_timing = !env.timing;
      const auto result = exp::run_city_table(config);
      const auto summary = exp::summarize(result);
      const auto paper = exp::paper_table9(city, weight);
      table.add_row({citygen::to_string(city), to_string(weight),
                     format_fixed(summary.aner, 2), format_fixed(summary.acre, 2),
                     format_fixed(paper.aner, 2), format_fixed(paper.acre, 2)});

      GapInput* gap = city == citygen::City::Boston    ? &boston_gap
                      : city == citygen::City::Chicago ? &chicago_gap
                                                        : nullptr;
      if (gap != nullptr) {
        for (CostType cost : attack::kAllCostTypes) {
          gap->lp_acre += result.cell(Algorithm::LpPathCover, cost).acre();
          gap->naive_acre += (result.cell(Algorithm::GreedyEdge, cost).acre() +
                              result.cell(Algorithm::GreedyEig, cost).acre()) /
                             2.0;
          ++gap->n;
        }
      }
    }
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/table09_weight_summary.csv");
  exp::save_observability("bench_results/table09_weight_summary");

  const double boston_delta = (boston_gap.naive_acre - boston_gap.lp_acre) / boston_gap.n;
  const double chicago_delta = (chicago_gap.naive_acre - chicago_gap.lp_acre) / chicago_gap.n;
  std::cout << "\nNaive-vs-LP average ACRE gap:  Boston " << format_fixed(boston_delta, 2)
            << ",  Chicago " << format_fixed(chicago_delta, 2) << '\n'
            << "Paper prose (§III-B) claims Boston 2.3 vs Chicago 1.4; recomputing the same\n"
               "aggregate from the paper's OWN Tables II-VII gives Boston ~1.4 vs Chicago\n"
               "~2.0 — the prose contradicts the tables.  Our measurements match the\n"
               "table-derived direction (lattice cities leave naive algorithms MORE room to\n"
               "overpay, because many near-optimal paths mean many wasted single-path cuts).\n"
               "See EXPERIMENTS.md for the full discussion.\n";
  return 0;
}
