// Ablation — route interdiction (§II-A "slow all traffic between common
// locations"): realized delay factor vs budget, exact greedy vs the
// betweenness-guided heuristic.
#include <iostream>

#include "attack/interdiction.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "graph/dijkstra.hpp"

int main() {
  using namespace mts;
  using attack::InterdictionOptions;
  using attack::InterdictionStrategy;

  const auto env = BenchEnv::from_environment();
  env.print_run_header("ablation_interdiction");
  const int trials = std::max(4, env.trials / 2);

  const auto network = citygen::generate_city(citygen::City::Chicago, env.scale, env.seed);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);
  const auto intersections = network.intersection_nodes();

  Table table("Ablation — interdiction delay factor vs budget (Chicago, TIME, UNIFORM)",
              {"Budget", "Greedy Mean", "Greedy Max", "Betweenness Mean", "Greedy Queries"});

  Rng rng(env.seed ^ 0x2468aceULL);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < static_cast<std::size_t>(trials)) {
    const NodeId s = intersections[rng.uniform_index(intersections.size())];
    const NodeId t = network.pois()[pairs.size() % network.pois().size()].node;
    if (shortest_distance(g, weights, s, t) < kInfiniteDistance) pairs.emplace_back(s, t);
  }

  for (double budget : {2.0, 4.0, 8.0, 16.0}) {
    RunningStats greedy_delay;
    RunningStats betweenness_delay;
    RunningStats queries;
    for (const auto& [s, t] : pairs) {
      InterdictionOptions greedy_options;
      const auto greedy = interdict_route(g, weights, costs, s, t, budget, greedy_options);
      greedy_delay.add(greedy.delay_factor());
      queries.add(static_cast<double>(greedy.distance_queries));

      InterdictionOptions b_options;
      b_options.strategy = InterdictionStrategy::Betweenness;
      const auto betweenness = interdict_route(g, weights, costs, s, t, budget, b_options);
      betweenness_delay.add(betweenness.delay_factor());
    }
    table.add_row({format_fixed(budget, 0), format_fixed(greedy_delay.mean(), 3),
                   format_fixed(greedy_delay.max(), 3),
                   format_fixed(betweenness_delay.mean(), 3),
                   format_fixed(queries.mean(), 0)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/ablation_interdiction.csv");
  exp::save_observability("bench_results/ablation_interdiction");
  std::cout << "\nExpected shape: delay grows with budget; exact greedy >= the cheap\n"
               "betweenness heuristic at every budget.\n";
  return 0;
}
