// Microbenchmarks for the graph substrate: Dijkstra, Yen, centralities
// and SCC on the synthetic city networks.
#include <benchmark/benchmark.h>

#include <map>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/rng.hpp"
#include "graph/betweenness.hpp"
#include "graph/connectivity.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/eigen.hpp"
#include "graph/yen.hpp"

namespace {

using namespace mts;

struct CityFixture {
  osm::RoadNetwork network;
  std::vector<double> weights;
  NodeId source;
  NodeId target;
};

const CityFixture& fixture(citygen::City city) {
  static std::map<citygen::City, CityFixture> cache;
  auto it = cache.find(city);
  if (it == cache.end()) {
    CityFixture f{citygen::generate_city(city, 0.5, 7), {}, NodeId(0), NodeId(0)};
    f.weights = attack::make_weights(f.network, attack::WeightType::Time);
    const auto intersections = f.network.intersection_nodes();
    Rng rng(3);
    f.source = intersections[rng.uniform_index(intersections.size())];
    f.target = f.network.pois().front().node;
    it = cache.emplace(city, std::move(f)).first;
  }
  return it->second;
}

void BM_DijkstraFullSssp(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  for (auto _ : state) {
    auto tree = dijkstra(f.network.graph(), f.weights, f.source);
    benchmark::DoNotOptimize(tree.dist.data());
  }
  state.SetLabel(std::to_string(f.network.graph().num_nodes()) + " nodes");
}

void BM_DijkstraEarlyExit(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  for (auto _ : state) {
    auto path = shortest_path(f.network.graph(), f.weights, f.source, f.target);
    benchmark::DoNotOptimize(path);
  }
}

void BM_YenKsp(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto paths = yen_ksp(f.network.graph(), f.weights, f.source, f.target, k);
    benchmark::DoNotOptimize(paths);
  }
}

void BM_EigenvectorCentrality(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  for (auto _ : state) {
    auto result = eigenvector_centrality(f.network.graph());
    benchmark::DoNotOptimize(result.centrality.data());
  }
}

void BM_EdgeBetweennessSampled(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  BetweennessOptions options;
  options.pivots = 32;
  for (auto _ : state) {
    auto scores = edge_betweenness(f.network.graph(), f.weights, options);
    benchmark::DoNotOptimize(scores.data());
  }
}

void BM_ChBuild(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  for (auto _ : state) {
    auto ch = ContractionHierarchy::build(f.network.graph(), f.weights);
    benchmark::DoNotOptimize(ch.num_shortcuts());
  }
}

void BM_ChQuery(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  static std::map<citygen::City, ContractionHierarchy> cache;
  auto it = cache.find(city);
  if (it == cache.end()) {
    it = cache.emplace(city, ContractionHierarchy::build(f.network.graph(), f.weights)).first;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(it->second.distance(f.source, f.target));
  }
}

void BM_Scc(benchmark::State& state, citygen::City city) {
  const auto& f = fixture(city);
  for (auto _ : state) {
    auto scc = strongly_connected_components(f.network.graph());
    benchmark::DoNotOptimize(scc.component.data());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_DijkstraFullSssp, boston, citygen::City::Boston);
BENCHMARK_CAPTURE(BM_DijkstraFullSssp, chicago, citygen::City::Chicago);
BENCHMARK_CAPTURE(BM_DijkstraEarlyExit, boston, citygen::City::Boston);
BENCHMARK_CAPTURE(BM_DijkstraEarlyExit, chicago, citygen::City::Chicago);
BENCHMARK_CAPTURE(BM_YenKsp, boston, citygen::City::Boston)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_YenKsp, chicago, citygen::City::Chicago)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EigenvectorCentrality, chicago, citygen::City::Chicago);
BENCHMARK_CAPTURE(BM_EdgeBetweennessSampled, chicago, citygen::City::Chicago)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ChBuild, chicago, citygen::City::Chicago)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ChQuery, chicago, citygen::City::Chicago);
BENCHMARK_CAPTURE(BM_Scc, losangeles, citygen::City::LosAngeles);
