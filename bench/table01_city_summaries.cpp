// Table I — city graph summaries: nodes, edges, average node degree,
// plus shape metrics and the paper's reported values side by side.
#include <iostream>

#include "citygen/generate.hpp"
#include "core/env.hpp"
#include "exp/json_report.hpp"
#include "core/table.hpp"
#include "exp/paper_values.hpp"
#include "graph/metrics.hpp"

int main() {
  using namespace mts;
  const auto env = BenchEnv::from_environment();
  env.print_run_header("table01_city_summaries");

  Table table("Table I — City graph summaries (MTS_SCALE=" + format_fixed(env.scale, 2) + ")",
              {"City", "Nodes", "Edges", "Avg Degree", "Orientation Order", "4-way Share",
               "Paper Nodes", "Paper Edges", "Paper Avg Degree"});

  for (citygen::City city : citygen::kAllCities) {
    const auto network = citygen::generate_city(city, env.scale, env.seed);
    const auto metrics = compute_network_metrics(network.graph());
    const auto paper = exp::paper_table1(city);
    table.add_row({citygen::to_string(city), std::to_string(metrics.num_nodes),
                   std::to_string(metrics.num_edges), format_fixed(metrics.average_degree, 2),
                   format_fixed(metrics.orientation_order, 3),
                   format_fixed(metrics.four_way_share, 3), std::to_string(paper.nodes),
                   std::to_string(paper.edges), format_fixed(paper.avg_degree, 2)});
  }
  table.render_text(std::cout);
  table.save_csv("bench_results/table01_city_summaries.csv");
  exp::save_observability("bench_results/table01_city_summaries");
  std::cout << "\nNote: the paper's San Francisco edge count (269002) is inconsistent with its\n"
               "own average-degree column (2*E/N would be 55.7); see DESIGN.md.\n";
  return 0;
}
