# Header self-containment check.
#
# Every public header under src/ must compile on its own (a header that
# only builds after its includer happens to pull in <vector> is a latent
# break for every new consumer).  At configure time this generates one TU
# per header that does nothing but include it, and compiles the whole set
# as the `lint_headers` object library under the same warning floor as the
# real libraries.  configure_file() only rewrites TUs whose content changed,
# so incremental builds stay incremental; CONFIGURE_DEPENDS re-globs when
# headers are added or removed.
file(GLOB_RECURSE MTS_PUBLIC_HEADERS
  RELATIVE ${CMAKE_SOURCE_DIR}/src
  CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.hpp)

set(MTS_LINT_TUS)
foreach(MTS_LINT_HEADER IN LISTS MTS_PUBLIC_HEADERS)
  string(REPLACE "/" "__" tu_name "${MTS_LINT_HEADER}")
  string(REGEX REPLACE "\\.hpp$" ".cpp" tu_name "${tu_name}")
  set(tu_path ${CMAKE_BINARY_DIR}/lint_headers/${tu_name})
  configure_file(${CMAKE_SOURCE_DIR}/cmake/header_tu.cpp.in ${tu_path} @ONLY)
  list(APPEND MTS_LINT_TUS ${tu_path})
endforeach()

add_library(lint_headers OBJECT ${MTS_LINT_TUS})
target_include_directories(lint_headers PRIVATE ${CMAKE_SOURCE_DIR}/src)
mts_library_warnings(lint_headers)

list(LENGTH MTS_PUBLIC_HEADERS MTS_NUM_PUBLIC_HEADERS)
message(STATUS
  "lint_headers: ${MTS_NUM_PUBLIC_HEADERS} public headers checked for self-containment")
