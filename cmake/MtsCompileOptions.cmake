# Warning floor for the library targets (src/*).  Tests and benches stay on
# the global -Wall -Wextra: gtest/benchmark macros are not -Wconversion
# clean, and the library is where silent narrowing corrupts results.
function(mts_library_warnings target)
  target_compile_options(${target} PRIVATE
    -Wall -Wextra -Wshadow -Wconversion -Wpedantic)
endfunction()

# Clang Thread Safety Analysis (see DESIGN.md §11 and core/annotations.hpp):
# every preset compiled with clang treats a thread-safety finding as a hard
# error.  GCC has no equivalent analysis, so its builds rely on the TSan CI
# leg for the dynamic half of the same guarantee.
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  add_compile_options(-Wthread-safety -Werror=thread-safety)
endif()
