# Warning floor for the library targets (src/*).  Tests and benches stay on
# the global -Wall -Wextra: gtest/benchmark macros are not -Wconversion
# clean, and the library is where silent narrowing corrupts results.
function(mts_library_warnings target)
  target_compile_options(${target} PRIVATE
    -Wall -Wextra -Wshadow -Wconversion -Wpedantic)
endfunction()
