// §II-A partition objective: isolate the blocks around a hospital so the
// area "is not practically reachable from any other part of the city".
// Compares the min-cut closure set against the naive perimeter closure,
// and reports the betweenness-critical roads the attacker would study.
//
//   $ ./area_isolation
#include <algorithm>
#include <iostream>
#include <numeric>

#include "attack/area_isolation.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "graph/betweenness.hpp"

int main() {
  using namespace mts;

  const auto network = citygen::generate_city(citygen::City::SanFrancisco, 0.5, 77);
  const auto& g = network.graph();
  const auto costs = attack::make_costs(network, attack::CostType::Lanes);
  const auto times = network.edge_times();

  const auto& hospital = network.pois().front();
  std::cout << "Target area: 400 m around " << hospital.name << "\n";
  const auto area = attack::nodes_within_radius(g, hospital.access_node, 400.0);

  // Min-cut closure.
  const auto result = attack::isolate_area(g, costs, area, attack::IsolationDirection::Inbound);
  if (!result.feasible) {
    std::cerr << "isolation infeasible\n";
    return 1;
  }

  // Naive alternative: close every road segment entering the area.
  double perimeter_cost = 0.0;
  std::size_t perimeter_edges = 0;
  for (EdgeId e : g.edges()) {
    if (!area[g.edge_from(e).value()] && area[g.edge_to(e).value()]) {
      perimeter_cost += costs[e.value()];
      ++perimeter_edges;
    }
  }

  Table table("Isolating " + hospital.name + " (LANES cost)",
              {"Strategy", "Segments Blocked", "Total Cost"});
  table.add_row({"Min-cut (Dinic)", std::to_string(result.cut_edges.size()),
                 format_fixed(result.total_cost, 1)});
  table.add_row({"Naive perimeter closure", std::to_string(perimeter_edges),
                 format_fixed(perimeter_cost, 1)});
  table.render_text(std::cout);
  std::cout << "Area: " << result.area_nodes << " intersections inside, "
            << result.outside_nodes << " outside.\n\n";

  // Criticality analysis (§II-A): roads with the highest edge betweenness
  // are the ones whose closure disrupts the most shortest routes.
  BetweennessOptions options;
  options.pivots = std::min<std::size_t>(64, g.num_nodes());
  const auto betweenness = edge_betweenness(g, times, options);
  std::vector<std::size_t> order(betweenness.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::size_t a, std::size_t b) { return betweenness[a] > betweenness[b]; });
  std::cout << "Most critical roads by edge betweenness (TIME metric):\n";
  for (int i = 0; i < 5; ++i) {
    const EdgeId e(static_cast<std::uint32_t>(order[static_cast<std::size_t>(i)]));
    const auto& name = network.segment_name(e);
    std::cout << "  " << i + 1 << ". " << (name.empty() ? "(unnamed road)" : name)
              << "  (score " << format_fixed(betweenness[e.value()], 5) << ")\n";
  }
  return 0;
}
