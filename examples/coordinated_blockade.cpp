// §II-A coordination scenario: several victim vehicles, one hospital, ONE
// pre-planned set of road closures that forces every victim onto its
// attacker-chosen route simultaneously — the "set S of compromised
// vehicles" story from the paper's introduction.
//
//   $ ./coordinated_blockade
#include <iostream>

#include "attack/models.hpp"
#include "attack/multi_victim.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;

  const auto network = citygen::generate_city(citygen::City::Chicago, 0.5, 808);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  // Three victims from different parts of the city, same hospital.
  Rng rng(44);
  exp::ScenarioOptions options;
  options.path_rank = 25;
  attack::MultiVictimProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  std::string hospital;
  for (int attempt = 0; attempt < 20 && problem.victims.size() < 3; ++attempt) {
    const auto scenario = exp::sample_scenario(network, weights, 0, rng, options);
    if (!scenario) continue;
    bool duplicate = false;
    for (const auto& victim : problem.victims) duplicate |= victim.source == scenario->source;
    if (duplicate) continue;
    hospital = scenario->hospital;
    problem.victims.push_back(
        {scenario->source, scenario->target, scenario->p_star, scenario->prefix});
  }
  if (problem.victims.size() < 3) {
    std::cerr << "could not sample three victims\n";
    return 1;
  }
  std::cout << "Three victims heading to " << hospital
            << ", each to be forced onto its 25th-best route with one closure set.\n\n";

  const auto result = run_multi_victim_attack(problem);
  if (result.status != attack::AttackStatus::Success) {
    std::cout << "coordination outcome: " << to_string(result.status)
              << " (victim routes can genuinely conflict — one victim's chosen route may\n"
                 "be another's faster alternative, and chosen routes are unblockable)\n";
    return 0;
  }

  Table table("Shared closure set (" + std::to_string(result.removed_edges.size()) +
                  " segments, cost " + format_fixed(result.total_cost, 0) + ")",
              {"Victim", "Forced Route Length (s)", "Verified Exclusive"});
  for (std::size_t i = 0; i < problem.victims.size(); ++i) {
    attack::ForcePathCutProblem sub;
    sub.graph = problem.graph;
    sub.weights = weights;
    sub.costs = costs;
    sub.source = problem.victims[i].source;
    sub.target = problem.victims[i].target;
    sub.p_star = problem.victims[i].p_star;
    const auto verdict = attack::verify_attack(sub, result.removed_edges);
    table.add_row({"#" + std::to_string(i + 1),
                   format_fixed(path_length(sub.p_star.edges, weights), 1),
                   verdict.ok ? "yes" : verdict.reason});
  }
  table.render_text(std::cout);

  std::cout << "\nBlocked segments:\n";
  for (EdgeId e : result.removed_edges) {
    const auto& name = network.segment_name(e);
    std::cout << "  - " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  std::cout << "\nOne coordinated strike, " << result.oracle_calls
            << " oracle queries, " << format_fixed(result.seconds * 1000, 1)
            << " ms of planning.\n";
  return 0;
}
