// The paper's headline scenario: an attacker reroutes traffic headed for
// a hospital.  Compares all four algorithms on the same scenarios and
// prints a mini Table II-style grid.
//
//   $ ./hospital_ambush [city]         city in {boston, sf, chicago, la}
#include <cstring>
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

namespace {

mts::citygen::City parse_city(int argc, char** argv) {
  using mts::citygen::City;
  if (argc < 2) return City::Boston;
  const std::string arg = argv[1];
  if (arg == "sf" || arg == "san_francisco") return City::SanFrancisco;
  if (arg == "chicago") return City::Chicago;
  if (arg == "la" || arg == "los_angeles") return City::LosAngeles;
  return City::Boston;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mts;
  using attack::Algorithm;

  const auto city = parse_city(argc, argv);
  const auto network = citygen::generate_city(city, 0.5, 99);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Lanes);

  std::cout << "City: " << citygen::to_string(city) << " ("
            << network.graph().num_nodes() << " intersections)\nHospitals:\n";
  for (const auto& poi : network.pois()) std::cout << "  - " << poi.name << "\n";

  Rng rng(31);
  exp::ScenarioOptions options;
  options.path_rank = 50;
  const auto scenarios = exp::sample_scenarios(network, weights, 4, rng, options);
  if (scenarios.empty()) {
    std::cerr << "no scenarios sampled\n";
    return 1;
  }

  Table table("Hospital ambush — " + std::string(citygen::to_string(city)) +
                  " (TIME weight, LANES cost, p* = 50th path)",
              {"Algorithm", "Avg Runtime (s)", "ANER", "ACRE", "All Verified"});
  for (Algorithm algorithm : attack::kAllAlgorithms) {
    double runtime = 0.0;
    double edges = 0.0;
    double cost = 0.0;
    bool all_verified = true;
    for (const auto& scenario : scenarios) {
      attack::ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs;
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;
      const auto result = run_attack(algorithm, problem);
      all_verified &= result.status == attack::AttackStatus::Success &&
                      attack::verify_attack(problem, result.removed_edges).ok;
      runtime += result.seconds;
      edges += static_cast<double>(result.num_removed());
      cost += result.total_cost;
    }
    const auto n = static_cast<double>(scenarios.size());
    table.add_row({to_string(algorithm), format_fixed(runtime / n, 4),
                   format_fixed(edges / n, 2), format_fixed(cost / n, 2),
                   all_verified ? "yes" : "NO"});
  }
  table.render_text(std::cout);
  std::cout << "\nReading: LP/GreedyPathCover find cheaper cuts; GreedyEdge/GreedyEig are\n"
               "faster but pay more — the paper's §III-B trade-off.\n";
  return 0;
}
