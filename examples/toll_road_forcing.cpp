// §II-A scenario: force victims onto a chosen road segment (e.g. a toll
// road).  The attacker picks a target segment, sets p* to the fastest
// route that *uses* it, then cuts roads until that route is the unique
// optimum.
//
//   $ ./toll_road_forcing
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "graph/dijkstra.hpp"

namespace {

using namespace mts;

/// Fastest simple s->d path constrained to traverse edge `toll`, or
/// nullopt if the concatenation via `toll` revisits a node.
std::optional<Path> fastest_path_through(const DiGraph& g, std::span<const double> weights,
                                         NodeId s, NodeId d, EdgeId toll) {
  const NodeId u = g.edge_from(toll);
  const NodeId v = g.edge_to(toll);
  const auto head = shortest_path(g, weights, s, u);
  const auto tail = shortest_path(g, weights, v, d);
  if (!head || !tail) return std::nullopt;
  Path through;
  through.edges = head->edges;
  through.edges.push_back(toll);
  through.edges.insert(through.edges.end(), tail->edges.begin(), tail->edges.end());
  through.length = head->length + weights[toll.value()] + tail->length;
  if (!is_simple_path(g, through, s, d)) return std::nullopt;
  return through;
}

}  // namespace

int main() {
  using attack::Algorithm;

  const auto network = citygen::generate_city(citygen::City::Chicago, 0.5, 17);
  const auto& g = network.graph();
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);

  // Endpoints: a random intersection and a hospital.
  Rng rng(23);
  const auto intersections = network.intersection_nodes();
  const NodeId source = intersections[rng.uniform_index(intersections.size())];
  const NodeId target = network.pois().front().node;

  // Pick a "toll road": a secondary-class segment roughly between them
  // that the natural shortest path does NOT use.
  const auto natural = shortest_path(g, weights, source, target);
  if (!natural) {
    std::cerr << "endpoints disconnected\n";
    return 1;
  }
  std::vector<std::uint8_t> on_natural(g.num_edges(), 0);
  for (EdgeId e : natural->edges) on_natural[e.value()] = 1;

  EdgeId toll = EdgeId::invalid();
  Path p_star;
  double best_detour = 1e18;
  for (EdgeId e : g.edges()) {
    if (on_natural[e.value()] || network.segment(e).artificial) continue;
    if (network.segment(e).highway != osm::HighwayClass::Secondary) continue;
    const auto through = fastest_path_through(g, weights, source, target, e);
    if (!through) continue;
    // Prefer a mild detour: believable toll-road rerouting, cheap to force.
    const double detour = through->length - natural->length;
    if (detour > 1.0 && detour < best_detour) {
      best_detour = detour;
      toll = e;
      p_star = *through;
    }
  }
  if (!toll.valid()) {
    std::cerr << "no suitable toll segment found\n";
    return 1;
  }

  const auto toll_name = network.segment_name(toll);
  std::cout << "Natural fastest route: " << format_fixed(natural->length, 1) << " s ("
            << natural->num_edges() << " segments)\n"
            << "Toll segment: " << (toll_name.empty() ? "(unnamed)" : toll_name) << "\n"
            << "Fastest route THROUGH the toll segment: " << format_fixed(p_star.length, 1)
            << " s (+" << format_fixed(best_detour, 1) << " s detour)\n\n";

  attack::ForcePathCutProblem problem;
  problem.graph = &g;
  problem.weights = weights;
  problem.costs = costs;
  problem.source = source;
  problem.target = target;
  problem.p_star = p_star;

  const auto result = run_attack(Algorithm::GreedyPathCover, problem);
  if (result.status != attack::AttackStatus::Success) {
    std::cerr << "attack failed: " << to_string(result.status) << "\n";
    return 1;
  }
  const auto verdict = attack::verify_attack(problem, result.removed_edges);
  std::cout << "Blocking " << result.num_removed()
            << " segments now makes every optimal router send the victim over the toll "
               "road.\nVerified exclusive: "
            << (verdict.ok ? "yes" : verdict.reason) << "\n";
  for (EdgeId e : result.removed_edges) {
    const auto& name = network.segment_name(e);
    std::cout << "  - block " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  return verdict.ok ? 0 : 1;
}
