// Defender's view: a city operator hardens a handful of road segments
// (bollards, patrols, monitored closures) to price the route-forcing
// attack out of reach.
//
//   $ ./defense_hardening
#include <cmath>
#include <iostream>

#include "attack/defense.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;

  const auto network = citygen::generate_city(citygen::City::Boston, 0.5, 4242);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Width);

  Rng rng(8);
  exp::ScenarioOptions options;
  options.path_rank = 40;
  const auto scenario = exp::sample_scenario(network, weights, 1, rng, options);
  if (!scenario) {
    std::cerr << "scenario sampling failed\n";
    return 1;
  }

  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;

  std::cout << "Scenario: protect routes to " << scenario->hospital
            << " from route-forcing.\n\n";
  const auto defense = attack::harden_against_force_path_cut(problem, 10);

  Table table("Greedy hardening rounds (attacker: GreedyPathCover, WIDTH cost)",
              {"Round", "Protected Road", "Attack Cost Before", "Attack Cost After"});
  for (std::size_t i = 0; i < defense.rounds.size(); ++i) {
    const auto& round = defense.rounds[i];
    const auto& name = network.segment_name(round.protected_edge);
    table.add_row({std::to_string(i + 1), name.empty() ? "(unnamed road)" : name,
                   format_fixed(round.attack_cost_before, 2),
                   std::isfinite(round.attack_cost_after)
                       ? format_fixed(round.attack_cost_after, 2)
                       : std::string("attack blocked")});
  }
  table.render_text(std::cout);

  std::cout << "\nBaseline attack cost: " << format_fixed(defense.initial_attack_cost, 2)
            << " car-widths of blockage.\n";
  if (defense.attack_blocked) {
    std::cout << "After protecting " << defense.protected_edges.size()
              << " segments the chosen route can no longer be forced at ANY cost.\n";
  } else {
    std::cout << "After protecting " << defense.protected_edges.size()
              << " segments the attack costs " << format_fixed(defense.final_attack_cost, 2)
              << " (" << format_fixed(defense.final_attack_cost / defense.initial_attack_cost, 2)
              << "x the undefended cost).\n";
  }
  return 0;
}
