// The attack, end to end in a moving city: background traffic flows, a
// victim departs for the hospital using live-rerouting navigation, and at
// t=0 the attacker's pre-planned closures snap into place.  Watch the
// victim arrive via exactly the attacker-chosen route.
//
//   $ ./live_reroute_attack
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "sim/traffic_sim.hpp"

int main() {
  using namespace mts;

  const auto network = citygen::generate_city(citygen::City::Chicago, 0.5, 2024);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Uniform);
  const auto intersections = network.intersection_nodes();

  // Plan the attack offline (the paper: "in a matter of seconds").
  Rng rng(15);
  exp::ScenarioOptions options;
  options.path_rank = 40;
  const auto scenario = exp::sample_scenario(network, weights, 0, rng, options);
  if (!scenario) {
    std::cerr << "scenario sampling failed\n";
    return 1;
  }
  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;
  const auto plan = run_attack(attack::Algorithm::GreedyPathCover, problem);
  if (plan.status != attack::AttackStatus::Success) {
    std::cerr << "attack planning failed\n";
    return 1;
  }
  std::cout << "Attack plan: block " << plan.num_removed() << " segments (computed in "
            << format_fixed(plan.seconds * 1000, 1) << " ms) to force the rank-40 route to "
            << scenario->hospital << ".\n\n";

  // Simulate with and without the closures, same background traffic.
  auto simulate = [&](bool attacked) {
    sim::TrafficSimulation simulation(network);
    simulation.add_vehicle({scenario->source, scenario->target, 60.0, /*victim=*/true});
    Rng traffic(99);
    for (int i = 0; i < 200; ++i) {
      simulation.add_vehicle({intersections[traffic.uniform_index(intersections.size())],
                              intersections[traffic.uniform_index(intersections.size())],
                              traffic.uniform(0.0, 300.0)});
    }
    if (attacked) {
      for (EdgeId e : plan.removed_edges) simulation.add_closure(e, 0.0);
    }
    return simulation.run();
  };

  const auto baseline = simulate(false);
  const auto attacked = simulate(true);
  const auto base_victim = baseline.victim_outcome();
  const auto hit_victim = attacked.victim_outcome();
  if (!base_victim || !base_victim->arrived || !hit_victim || !hit_victim->arrived) {
    std::cerr << "victim did not arrive\n";
    return 1;
  }

  Table table("Victim drive to " + scenario->hospital, {"", "Baseline", "Under Attack"});
  table.add_row({"Travel time (s)", format_fixed(base_victim->travel_time_s, 1),
                 format_fixed(hit_victim->travel_time_s, 1)});
  table.add_row({"Reroutes", std::to_string(base_victim->reroutes),
                 std::to_string(hit_victim->reroutes)});
  table.add_row({"Segments driven", std::to_string(base_victim->route_taken.size()),
                 std::to_string(hit_victim->route_taken.size())});
  table.render_text(std::cout);

  const bool forced = hit_victim->route_taken == scenario->p_star.edges;
  std::cout << "\nVictim drove exactly the attacker-chosen route p*: "
            << (forced ? "YES" : "no (congestion nudged it elsewhere)") << "\n"
            << "Delay factor: "
            << format_fixed(hit_victim->travel_time_s / base_victim->travel_time_s, 2)
            << "x — and the victim's navigation believes it took the optimal route.\n";
  return 0;
}
