// Quickstart: generate a small city, pick a source and a hospital, force
// the 50th-shortest route with GreedyPathCover, and print what to block.
//
//   $ ./quickstart
#include <iostream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace mts;

  // 1. A city street network (synthetic Boston; swap in osm::load_osm_xml
  //    + osm::RoadNetwork::build for a real extract).
  const auto network = citygen::generate_city(citygen::City::Boston, 0.5, /*seed=*/42);
  std::cout << "Boston-like network: " << network.graph().num_nodes() << " intersections, "
            << network.graph().num_edges() << " directed road segments\n";

  // 2. Victim model: minimizes free-flow travel TIME.  Attacker pays per
  //    blocked segment according to road WIDTH.
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Width);

  // 3. Scenario: random intersection -> hospital, p* = 50th shortest path.
  Rng rng(7);
  exp::ScenarioOptions options;
  options.path_rank = 50;
  const auto scenario = exp::sample_scenario(network, weights, /*hospital_index=*/0, rng, options);
  if (!scenario) {
    std::cerr << "could not sample a scenario\n";
    return 1;
  }
  std::cout << "Victim drives to " << scenario->hospital << "; fastest route "
            << format_fixed(scenario->shortest_length, 1) << " s, forced route (rank 50) "
            << format_fixed(scenario->p_star_length, 1) << " s (+"
            << format_fixed((scenario->p_star_length / scenario->shortest_length - 1) * 100, 1)
            << "%)\n";

  // 4. Attack: make p* the exclusive shortest path.
  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;  // the 49 faster paths, from Yen

  const auto result = run_attack(attack::Algorithm::GreedyPathCover, problem);
  if (result.status != attack::AttackStatus::Success) {
    std::cerr << "attack failed: " << to_string(result.status) << "\n";
    return 1;
  }

  // 5. The attacker's work order.
  std::cout << "\nBlock these " << result.num_removed() << " road segments (total cost "
            << format_fixed(result.total_cost, 2) << " car-widths, computed in "
            << format_fixed(result.seconds * 1000, 1) << " ms):\n";
  for (EdgeId e : result.removed_edges) {
    const auto& seg = network.segment(e);
    const auto name = network.segment_name(e);
    std::cout << "  - " << (name.empty() ? "(unnamed road)" : name) << "  ["
              << format_fixed(seg.length_m, 0) << " m, " << seg.lanes << " lane(s)]\n";
  }

  // 6. Independent verification.
  const auto verdict = attack::verify_attack(problem, result.removed_edges);
  std::cout << "\nVerified p* is now the exclusive shortest path: "
            << (verdict.ok ? "yes" : "NO — " + verdict.reason) << "\n";
  return verdict.ok ? 0 : 1;
}
