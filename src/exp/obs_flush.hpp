// Periodic metrics flusher for long-running daemons.
//
// Batch runs write their observability side-cars once at exit
// (save_observability); a daemon that may never exit cleanly needs the
// same artifact refreshed while it serves.  PeriodicMetricsFlusher owns a
// background thread that snapshots the registry every `interval_s` seconds
// and rewrites `<base_path><suffix>_metrics.json` — the identical schema
// batch runs emit, so downstream tooling needs no second parser.
//
// Each flush is collision-safe: the document is written to a `.tmp`
// sibling and renamed over the target, so a reader polling the file never
// observes a torn JSON document.  The suffix honors MTS_OBS_SUFFIX exactly
// like save_observability ("pid" expands to ".<pid>").
//
// The CLI arms one for `mts routed` when MTS_METRICS_INTERVAL (seconds) is
// set; stop() performs one final flush so the artifact always reflects the
// full run.
#pragma once

#include <string>
#include <thread>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace mts::exp {

class PeriodicMetricsFlusher {
 public:
  /// Flushes `<base_path><observability_suffix()>_metrics.json` every
  /// `interval_s` seconds (must be > 0) until stop().  Does not start a
  /// thread until start() is called.
  PeriodicMetricsFlusher(std::string base_path, double interval_s);

  /// Joins the flush thread (with a final flush) if still running.
  ~PeriodicMetricsFlusher();

  PeriodicMetricsFlusher(const PeriodicMetricsFlusher&) = delete;
  PeriodicMetricsFlusher& operator=(const PeriodicMetricsFlusher&) = delete;

  /// Spawns the background thread and performs an immediate first flush so
  /// the artifact exists as soon as the daemon is up.
  void start();

  /// Signals the thread, waits for it to exit, and flushes one last time.
  /// Idempotent.
  void stop();

  /// One synchronous snapshot-and-rename; usable without start() (tests),
  /// but not concurrently with a running background thread — both sides
  /// would share the same .tmp sibling.
  void flush_once();

  [[nodiscard]] const std::string& target_path() const { return target_path_; }

 private:
  void run();

  std::string target_path_;
  double interval_s_;
  std::thread thread_;
  Mutex mutex_;
  CondVar wake_;
  bool stop_requested_ MTS_GUARDED_BY(mutex_) = false;
};

}  // namespace mts::exp
