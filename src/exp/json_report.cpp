#include "exp/json_report.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "exp/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mts::exp {

namespace {

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_stats(std::ostringstream& out, const char* name, const RunningStats& stats) {
  out << '"' << name << "\":{\"mean\":" << number(stats.mean())
      << ",\"stddev\":" << number(stats.stddev()) << ",\"min\":" << number(stats.min())
      << ",\"max\":" << number(stats.max()) << ",\"n\":" << stats.count() << '}';
}

}  // namespace

std::string to_json(const CityTableResult& result) {
  std::ostringstream out;
  out << "{\"config\":{\"city\":\"" << citygen::to_string(result.config.city)
      << "\",\"weight\":\"" << attack::to_string(result.config.weight)
      << "\",\"scale\":" << number(result.config.scale)
      << ",\"trials\":" << result.config.trials
      << ",\"path_rank\":" << result.config.path_rank << ",\"seed\":" << result.config.seed
      << "},\"network\":{\"nodes\":" << result.metrics.num_nodes
      << ",\"edges\":" << result.metrics.num_edges
      << ",\"average_degree\":" << number(result.metrics.average_degree)
      << ",\"orientation_order\":" << number(result.metrics.orientation_order)
      << ",\"four_way_share\":" << number(result.metrics.four_way_share)
      << "},\"scenarios_run\":" << result.scenarios_run << ",\"cells\":[";

  bool first = true;
  for (attack::Algorithm algorithm : attack::kAllAlgorithms) {
    for (attack::CostType cost : attack::kAllCostTypes) {
      if (!first) out << ',';
      first = false;
      const auto& cell = result.cell(algorithm, cost);
      out << "{\"algorithm\":\"" << to_string(algorithm) << "\",\"cost_model\":\""
          << to_string(cost) << "\",";
      append_stats(out, "runtime_s", cell.runtime);
      out << ',';
      append_stats(out, "edges_removed", cell.edges_removed);
      out << ',';
      append_stats(out, "cost", cell.cost);
      out << ",\"attack_failures\":" << cell.attack_failures
          << ",\"verification_failures\":" << cell.verification_failures;
      // Degradation fields appear only when something degraded, so clean
      // runs stay byte-identical to reports written before these existed.
      if (cell.fallbacks > 0) out << ",\"fallbacks\":" << cell.fallbacks;
      if (cell.quarantined > 0) {
        out << ",\"quarantined\":" << cell.quarantined << ",\"errors\":[";
        for (std::size_t i = 0; i < cell.errors.size(); ++i) {
          if (i > 0) out << ',';
          out << '"' << json_escape(cell.errors[i]) << '"';
        }
        out << ']';
      }
      out << '}';
    }
  }
  out << "]}";
  return out.str();
}

void save_json(const CityTableResult& result, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "save_json: cannot open " + path);
  out << to_json(result);
}

std::string observability_suffix() {
  const std::string configured = env_string("MTS_OBS_SUFFIX", "");
  if (configured == "pid") return "." + std::to_string(::getpid());
  return configured;
}

void save_observability(const std::string& base_path) {
  save_observability(base_path, observability_suffix());
}

void save_observability(const std::string& base_path, const std::string& suffix) {
  if (!obs::metrics_enabled()) return;
  const auto resolution = thread_resolution();
  obs::RunInfo run;
  run.threads_requested = resolution.requested;
  run.threads_effective = resolution.effective;
  run.timing = timing_enabled();
  obs::save_metrics_json(obs::MetricsRegistry::instance().snapshot(), run,
                         base_path + suffix + "_metrics.json");
  if (obs::trace_enabled()) {
    obs::save_chrome_trace(obs::MetricsRegistry::instance().trace_events(),
                           base_path + suffix + "_trace.json");
  }
}

}  // namespace mts::exp
