#include "exp/paper_values.hpp"

namespace mts::exp {

namespace {

using attack::Algorithm;
using attack::CostType;
using attack::WeightType;
using citygen::City;

// cells[algorithm][cost] in kAllAlgorithms x kAllCostTypes order:
// {LP, GreedyPathCover, GreedyEdge, GreedyEig} x {UNIFORM, LANES, WIDTH}.
struct PaperTable {
  PaperCell cells[4][3];
};

// Table II.
constexpr PaperTable kBostonLength = {{
    {{6.31, 4.00, 4.00}, {58.31, 3.75, 5.00}, {72.27, 3.53, 7.38}},
    {{2.83, 4.00, 4.00}, {6.72, 3.78, 5.03}, {6.09, 3.53, 7.38}},
    {{1.03, 4.50, 4.50}, {3.78, 5.25, 6.50}, {2.64, 4.50, 9.42}},
    {{1.86, 5.00, 5.00}, {4.99, 4.65, 7.65}, {4.07, 4.75, 9.37}},
}};
// Table III.
constexpr PaperTable kBostonTime = {{
    {{66.82, 3.78, 3.78}, {21.17, 4.18, 6.60}, {19.56, 3.58, 7.48}},
    {{5.76, 3.78, 3.78}, {4.25, 4.15, 6.55}, {4.33, 3.58, 7.48}},
    {{2.02, 4.65, 4.65}, {1.56, 4.48, 6.90}, {1.66, 4.38, 9.16}},
    {{3.22, 4.65, 4.65}, {2.77, 4.48, 8.33}, {2.92, 4.40, 9.21}},
}};
// Table IV.
constexpr PaperTable kSfLength = {{
    {{37.40, 3.68, 3.68}, {85.35, 4.18, 5.38}, {48.40, 3.65, 7.64}},
    {{6.44, 3.68, 3.68}, {5.81, 4.43, 5.68}, {5.74, 3.65, 7.65}},
    {{2.20, 6.58, 6.58}, {2.14, 7.50, 8.45}, {2.33, 6.28, 13.13}},
    {{3.60, 5.78, 5.78}, {3.35, 5.93, 8.58}, {3.56, 5.05, 10.57}},
}};
// Table V.
constexpr PaperTable kSfTime = {{
    {{42.64, 3.93, 3.93}, {56.50, 4.88, 6.10}, {42.56, 3.88, 8.11}},
    {{4.98, 3.90, 3.90}, {5.57, 4.85, 6.10}, {4.85, 3.88, 8.11}},
    {{1.36, 4.48, 4.48}, {1.56, 6.18, 7.48}, {1.12, 4.68, 9.78}},
    {{2.49, 5.43, 5.43}, {2.44, 5.78, 8.33}, {2.00, 4.93, 10.31}},
}};
// Table VI.
constexpr PaperTable kChicagoLength = {{
    {{125.21, 3.58, 3.58}, {175.51, 3.50, 7.33}, {199.80, 3.85, 5.15}},
    {{11.33, 3.60, 3.60}, {12.46, 3.53, 7.38}, {9.91, 3.93, 5.20}},
    {{4.82, 5.08, 5.08}, {5.88, 5.70, 11.93}, {4.90, 6.43, 7.73}},
    {{5.34, 5.18, 5.18}, {6.40, 4.70, 9.84}, {5.41, 5.23, 8.55}},
}};
// Table VII.
constexpr PaperTable kChicagoTime = {{
    {{41.38, 3.50, 3.50}, {52.77, 3.73, 7.80}, {41.83, 3.73, 4.55}},
    {{8.00, 3.50, 3.50}, {8.41, 3.73, 7.80}, {7.30, 3.73, 4.55}},
    {{1.51, 4.10, 4.10}, {1.53, 4.18, 8.74}, {1.60, 4.58, 5.40}},
    {{2.12, 4.50, 4.50}, {2.16, 4.60, 9.62}, {2.15, 4.40, 7.03}},
}};
// Table VIII.
constexpr PaperTable kLaTime = {{
    {{85.77, 3.71, 3.71}, {66.80, 3.80, 7.95}, {34.85, 4.04, 7.14}},
    {{22.13, 3.73, 3.73}, {22.51, 3.80, 7.95}, {11.09, 4.01, 7.16}},
    {{5.11, 4.51, 4.51}, {4.98, 4.50, 9.42}, {2.75, 4.51, 9.15}},
    {{8.73, 4.51, 4.51}, {8.31, 4.48, 9.37}, {3.88, 4.51, 9.15}},
}};

const PaperTable* table_for(City city, WeightType weight) {
  switch (city) {
    case City::Boston: return weight == WeightType::Length ? &kBostonLength : &kBostonTime;
    case City::SanFrancisco: return weight == WeightType::Length ? &kSfLength : &kSfTime;
    case City::Chicago: return weight == WeightType::Length ? &kChicagoLength : &kChicagoTime;
    case City::LosAngeles: return weight == WeightType::Length ? nullptr : &kLaTime;
  }
  return nullptr;
}

}  // namespace

std::optional<PaperCell> paper_cell(City city, WeightType weight, Algorithm algorithm,
                                    CostType cost) {
  const PaperTable* table = table_for(city, weight);
  if (table == nullptr) return std::nullopt;
  return table->cells[static_cast<std::size_t>(algorithm)][static_cast<std::size_t>(cost)];
}

PaperCitySummary paper_table1(City city) {
  switch (city) {
    case City::Boston: return {11171, 25715, 4.60};
    case City::SanFrancisco: return {9659, 269002, 5.57};  // edge count: paper typo
    case City::Chicago: return {29299, 78046, 5.33};
    case City::LosAngeles: return {51716, 141992, 5.08};
  }
  return {};
}

PaperWeightSummary paper_table9(City city, WeightType weight) {
  const bool length = weight == WeightType::Length;
  switch (city) {
    case City::Boston: return length ? PaperWeightSummary{4.27, 6.27} : PaperWeightSummary{4.17, 6.54};
    case City::SanFrancisco:
      return length ? PaperWeightSummary{5.03, 7.23} : PaperWeightSummary{4.73, 6.84};
    case City::Chicago:
      return length ? PaperWeightSummary{4.52, 6.71} : PaperWeightSummary{4.02, 5.92};
    case City::LosAngeles:
      return length ? PaperWeightSummary{4.35, 7.23} : PaperWeightSummary{4.18, 6.85};
  }
  return {};
}

std::optional<PaperThreshold> paper_table10(City city) {
  switch (city) {
    case City::Boston: return PaperThreshold{7.93, 9.54};
    case City::SanFrancisco: return PaperThreshold{4.23, 5.35};
    case City::Chicago: return PaperThreshold{1.58, 1.93};
    case City::LosAngeles: return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace mts::exp
