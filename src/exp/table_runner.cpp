#include "exp/table_runner.hpp"

#include <cstdio>
#include <iostream>
#include <memory>

#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "core/thread_pool.hpp"
#include "exp/checkpoint.hpp"
#include "graph/ch_assets.hpp"
#include "graph/yen.hpp"
#include "obs/phase.hpp"

namespace mts::exp {

using attack::Algorithm;
using attack::AttackOptions;
using attack::AttackResult;
using attack::AttackStatus;
using attack::CostType;
using attack::ForcePathCutProblem;
using attack::kAllAlgorithms;
using attack::kAllCostTypes;

namespace {

// Stream tags keeping the harness's RNG consumers on disjoint SplitMix64
// substreams of the one user-facing seed.
constexpr std::uint64_t kScenarioStream = 0xa5a5a5a5ULL;
constexpr std::uint64_t kThresholdStream = 0x5c5c5c5cULL;

}  // namespace

std::string checkpoint_fingerprint(const RunConfig& config) {
  char scale[40];
  std::snprintf(scale, sizeof scale, "%.17g", config.scale);
  std::string fp = citygen::to_string(config.city);
  fp += '|';
  fp += attack::to_string(config.weight);
  fp += '|';
  fp += scale;
  fp += "|trials=" + std::to_string(config.trials);
  fp += "|rank=" + std::to_string(config.path_rank);
  fp += "|seed=" + std::to_string(config.seed);
  fp += config.deterministic_timing ? "|dt=1" : "|dt=0";
  fp += "|edges=" + std::to_string(config.work_budget.max_edges_scanned);
  fp += "|pivots=" + std::to_string(config.work_budget.max_lp_pivots);
  fp += "|spurs=" + std::to_string(config.work_budget.max_spur_searches);
  return fp;
}

CityTableResult run_city_table(const RunConfig& config) {
  const auto network = citygen::generate_city(config.city, config.scale, config.seed);
  const auto weights = attack::make_weights(network, config.weight);
  ScenarioOptions scenario_options;
  scenario_options.path_rank = config.path_rank;
  const auto scenarios = sample_scenarios(network, weights, config.trials,
                                          derive_seed(config.seed, {kScenarioStream}),
                                          scenario_options);
  return run_city_table_on(network, scenarios, config);
}

CityTableResult run_city_table_on(const osm::RoadNetwork& network,
                                  const std::vector<Scenario>& scenarios,
                                  const RunConfig& config) {
  CityTableResult result;
  result.config = config;
  result.metrics = compute_network_metrics(network.graph());
  result.scenarios_run = static_cast<int>(scenarios.size());

  const auto weights = attack::make_weights(network, config.weight);
  std::vector<std::vector<double>> costs;
  costs.reserve(kNumCostTypes);
  for (CostType cost_type : kAllCostTypes) {
    costs.push_back(attack::make_costs(network, cost_type));
  }

  // CH/CCH bundle for this (graph, weights) pair, built once and shared
  // read-only by every cell's oracle and verifier (MTS_CH=0 opts out; the
  // answers are identical either way, see DESIGN.md §14).  Scenario
  // sampling above deliberately does not use it: it ran before this point
  // on resumable runs' first pass, and keeping it on the plain Yen path
  // pins the scenario stream byte-for-byte.
  std::unique_ptr<ChAssets> ch_assets;
  if (ch_enabled()) {
    obs::ScopedPhase ch_phase("ch_build");
    ch_assets = std::make_unique<ChAssets>(ChAssets::build(network.graph(), weights));
  }

  // One immutable problem per (scenario, cost) cell column, shared by the
  // four algorithm tasks.  ForcePathCutProblem is safe to share across
  // threads as const: run_attack / verify_attack / the oracle only read it.
  std::vector<ForcePathCutProblem> problems;
  problems.reserve(scenarios.size() * kNumCostTypes);
  for (const Scenario& scenario : scenarios) {
    for (std::size_t ci = 0; ci < kNumCostTypes; ++ci) {
      ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs[ci];
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;
      problem.ch = ch_assets.get();
      problems.push_back(std::move(problem));
    }
  }
  const std::vector<ForcePathCutProblem>& shared_problems = problems;

  // Checkpointing: a journal (when configured) collects every cleanly
  // completed cell as it finishes; a resume folds journaled cells back in
  // without recomputing them.  Quarantined cells are never journaled, so a
  // resumed run retries exactly the missing + previously poisoned cells.
  // Journal task ids are keyed on the scenario's ORIGINAL trial index, not
  // its position in `scenarios`: a trial quarantined during sampling shifts
  // the survivors down, and position-keyed ids would replay the wrong
  // trial's cells on resume.
  const std::string fingerprint = checkpoint_fingerprint(config);
  std::unordered_map<std::uint64_t, CellRecord> completed;
  if (config.resume) {
    require(!config.checkpoint_path.empty(), "table: resume requires a checkpoint journal path");
    completed = CheckpointJournal::load(config.checkpoint_path, fingerprint);
  }
  std::unique_ptr<CheckpointJournal> journal;
  if (!config.checkpoint_path.empty()) {
    journal = std::make_unique<CheckpointJournal>(config.checkpoint_path, fingerprint);
  }

  // Every (scenario, cost, algorithm) task is independent: it gets its own
  // SplitMix64-derived RNG stream and writes only its own outcome slot.
  // The slots carry no MTS_GUARDED_BY annotation (DESIGN.md §11) on
  // purpose: writes are index-disjoint, and parallel_for's join barrier
  // (core/thread_pool, annotated) publishes them to the reduction below.
  // `record` carries exactly the values the reduction folds, so a resumed
  // cell (record read back from the journal) reduces bit-identically.
  struct TaskOutcome {
    CellRecord record;
    bool quarantined = false;
    std::string error;  // taxonomy string when quarantined
  };
  const std::size_t tasks_per_scenario = kNumCostTypes * kNumAlgorithms;
  std::vector<TaskOutcome> outcomes(scenarios.size() * tasks_per_scenario);
  parallel_for(outcomes.size(), [&](std::size_t t) {
    // Root phase: attribution is the same whether this cell runs on a pool
    // worker or inline on the calling thread.
    obs::ScopedPhase phase("cell", obs::PhaseKind::Root);
    TaskOutcome& outcome = outcomes[t];
    const std::size_t si = t / tasks_per_scenario;
    const std::size_t trial = scenarios[si].trial;
    const std::size_t stable_task = trial * tasks_per_scenario + t % tasks_per_scenario;
    if (config.resume) {
      const auto it = completed.find(stable_task);
      if (it != completed.end()) {
        outcome.record = it->second;
        // Registered lazily so non-resume runs never learn this counter.
        static const obs::CounterId kResumed =
            obs::MetricsRegistry::instance().counter("exp.cells_resumed");
        obs::add(kResumed);
        return;
      }
    }
    static const obs::CounterId kCells = obs::MetricsRegistry::instance().counter("exp.cells_run");
    obs::add(kCells);
    const std::size_t ci = (t % tasks_per_scenario) / kNumAlgorithms;
    const std::size_t ai = t % kNumAlgorithms;
    const ForcePathCutProblem& problem = shared_problems[si * kNumCostTypes + ci];

    // Any escape from one cell — injected fault, invariant violation,
    // budget bug, bad_alloc — quarantines that cell and leaves the rest of
    // the grid (and the journal) intact.
    try {
      MTS_FAULT_POINT("pool.task");
      AttackOptions options;
      options.rng_seed = derive_seed(config.seed, {trial, ci, ai});
      options.work_budget = config.work_budget;
      const AttackResult attack = run_attack(kAllAlgorithms[ai], problem, options);
      CellRecord& record = outcome.record;
      record.task = stable_task;
      record.status = to_string(attack.status);
      record.fallback_used = attack.fallback_used;
      record.fallback_reason = attack.fallback_reason;
      record.seconds = config.deterministic_timing ? 0.0 : attack.seconds;
      record.removed = attack.num_removed();
      record.total_cost = attack.total_cost;
      if (attack.status == AttackStatus::Success) {
        const auto verdict = attack::verify_attack(problem, attack.removed_edges);
        record.verified = verdict.ok;
        if (!verdict.ok) record.verify_reason = verdict.reason;
      }
      if (journal != nullptr) journal->append(record);
    } catch (...) {
      outcome.quarantined = true;
      outcome.error = current_exception_taxonomy();
    }
  });

  // Deterministic reduction: outcomes fold into CellStats in trial order,
  // so tables and JSON are bit-identical at any thread count (and to the
  // serial MTS_THREADS=1 run).  Diagnostics print here, in the same order.
  for (std::size_t t = 0; t < outcomes.size(); ++t) {
    const std::size_t ci = (t % tasks_per_scenario) / kNumAlgorithms;
    const std::size_t ai = t % kNumAlgorithms;
    const Algorithm algorithm = kAllAlgorithms[ai];
    const TaskOutcome& outcome = outcomes[t];
    auto& cell = result.cells[ai][ci];
    if (outcome.quarantined) {
      ++cell.quarantined;
      ++cell.attack_failures;
      cell.errors.push_back(outcome.error);
      const std::size_t stable_task =
          scenarios[t / tasks_per_scenario].trial * tasks_per_scenario + t % tasks_per_scenario;
      std::cerr << "[quarantine] " << to_string(algorithm) << " task " << stable_task << ": "
                << outcome.error << '\n';
      continue;
    }
    const CellRecord& record = outcome.record;
    if (record.fallback_used) {
      ++cell.fallbacks;
      std::cerr << "[fallback] " << to_string(algorithm) << ": " << record.fallback_reason << '\n';
    }
    if (record.status != "success") {
      ++cell.attack_failures;
      std::cerr << "[attack] " << to_string(algorithm) << " status: " << record.status << '\n';
    } else if (!record.verified) {
      ++cell.verification_failures;
      std::cerr << "[verify] " << to_string(algorithm) << " failed: " << record.verify_reason
                << '\n';
    } else {
      cell.add(record.seconds, static_cast<double>(record.removed), record.total_cost);
    }
  }
  return result;
}

Table render_city_table(const CityTableResult& result) {
  const std::string title = std::string(citygen::to_string(result.config.city)) +
                            ", Weight Type: " + attack::to_string(result.config.weight) + " (" +
                            std::to_string(result.scenarios_run) + " experiments)";
  std::vector<std::string> headers = {"Algorithm"};
  for (CostType cost_type : kAllCostTypes) {
    const std::string prefix = attack::to_string(cost_type);
    headers.push_back(prefix + " Runtime");
    headers.push_back(prefix + " ANER");
    headers.push_back(prefix + " ACRE");
  }
  Table table(title, headers);
  for (Algorithm algorithm : kAllAlgorithms) {
    std::vector<std::string> row = {to_string(algorithm)};
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      row.push_back(format_fixed(cell.avg_runtime(), 4));
      row.push_back(format_fixed(cell.aner(), 2));
      row.push_back(format_fixed(cell.acre(), 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table render_city_table_detailed(const CityTableResult& result) {
  const std::string title = std::string(citygen::to_string(result.config.city)) +
                            ", Weight Type: " + attack::to_string(result.config.weight) +
                            " (detailed)";
  Table table(title, {"Algorithm", "Cost", "Runtime Mean", "Runtime Stddev", "ANER Mean",
                      "ANER Stddev", "ACRE Mean", "ACRE Stddev", "N", "Attack Failures",
                      "Verify Failures"});
  for (Algorithm algorithm : kAllAlgorithms) {
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      table.add_row({to_string(algorithm), to_string(cost_type),
                     format_fixed(cell.runtime.mean(), 5), format_fixed(cell.runtime.stddev(), 5),
                     format_fixed(cell.edges_removed.mean(), 2),
                     format_fixed(cell.edges_removed.stddev(), 2),
                     format_fixed(cell.cost.mean(), 2), format_fixed(cell.cost.stddev(), 2),
                     std::to_string(cell.n), std::to_string(cell.attack_failures),
                     std::to_string(cell.verification_failures)});
    }
  }
  return table;
}

WeightSummary summarize(const CityTableResult& result) {
  WeightSummary summary;
  int n = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      if (cell.n == 0) continue;
      summary.aner += cell.aner();
      summary.acre += cell.acre();
      ++n;
    }
  }
  if (n > 0) {
    summary.aner /= n;
    summary.acre /= n;
  }
  return summary;
}

ThresholdRow run_threshold_experiment(citygen::City city, double scale, int trials,
                                      std::uint64_t seed) {
  ThresholdRow row;
  row.city = city;
  const auto network = citygen::generate_city(city, scale, seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);

  ScenarioOptions options;
  options.path_rank = 200;  // one Yen run yields both the 100th and 200th
  const auto scenarios = sample_scenarios(network, weights, trials,
                                          derive_seed(seed, {kThresholdStream}), options);

  for (const Scenario& scenario : scenarios) {
    const double base = scenario.shortest_length;
    require(base > 0.0, "threshold: zero-length shortest path");
    const double len100 = scenario.prefix[99].length;
    const double len200 = scenario.p_star.length;
    row.avg_increase_100th += (len100 / base - 1.0) * 100.0;
    row.avg_increase_200th += (len200 / base - 1.0) * 100.0;
    ++row.n;
  }
  if (row.n > 0) {
    row.avg_increase_100th /= row.n;
    row.avg_increase_200th /= row.n;
  }
  return row;
}

}  // namespace mts::exp
