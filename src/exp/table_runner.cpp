#include "exp/table_runner.hpp"

#include <iostream>

#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "graph/yen.hpp"

namespace mts::exp {

using attack::Algorithm;
using attack::AttackOptions;
using attack::AttackResult;
using attack::AttackStatus;
using attack::CostType;
using attack::ForcePathCutProblem;
using attack::kAllAlgorithms;
using attack::kAllCostTypes;

CityTableResult run_city_table(const RunConfig& config) {
  const auto network = citygen::generate_city(config.city, config.scale, config.seed);
  const auto weights = attack::make_weights(network, config.weight);
  Rng rng(config.seed ^ 0xa5a5a5a5ULL);
  ScenarioOptions scenario_options;
  scenario_options.path_rank = config.path_rank;
  const auto scenarios =
      sample_scenarios(network, weights, config.trials, rng, scenario_options);
  return run_city_table_on(network, scenarios, config);
}

CityTableResult run_city_table_on(const osm::RoadNetwork& network,
                                  const std::vector<Scenario>& scenarios,
                                  const RunConfig& config) {
  CityTableResult result;
  result.config = config;
  result.metrics = compute_network_metrics(network.graph());
  result.scenarios_run = static_cast<int>(scenarios.size());

  const auto weights = attack::make_weights(network, config.weight);
  std::vector<std::vector<double>> costs;
  costs.reserve(kNumCostTypes);
  for (CostType cost_type : kAllCostTypes) {
    costs.push_back(attack::make_costs(network, cost_type));
  }

  for (const Scenario& scenario : scenarios) {
    for (std::size_t ci = 0; ci < kNumCostTypes; ++ci) {
      ForcePathCutProblem problem;
      problem.graph = &network.graph();
      problem.weights = weights;
      problem.costs = costs[ci];
      problem.source = scenario.source;
      problem.target = scenario.target;
      problem.p_star = scenario.p_star;
      problem.seed_paths = scenario.prefix;

      for (Algorithm algorithm : kAllAlgorithms) {
        AttackOptions options;
        options.rng_seed = config.seed + ci * 131 + static_cast<std::size_t>(algorithm);
        const AttackResult attack_result = run_attack(algorithm, problem, options);
        auto& cell = result.cells[static_cast<std::size_t>(algorithm)][ci];
        if (attack_result.status == AttackStatus::Success) {
          const auto verdict = attack::verify_attack(problem, attack_result.removed_edges);
          if (!verdict.ok) {
            ++cell.verification_failures;
            std::cerr << "[verify] " << to_string(algorithm) << " failed: " << verdict.reason
                      << '\n';
            continue;
          }
          cell.add(attack_result.seconds, static_cast<double>(attack_result.num_removed()),
                   attack_result.total_cost);
        } else {
          ++cell.verification_failures;
          std::cerr << "[attack] " << to_string(algorithm)
                    << " status: " << to_string(attack_result.status) << '\n';
        }
      }
    }
  }
  return result;
}

Table render_city_table(const CityTableResult& result) {
  const std::string title = std::string(citygen::to_string(result.config.city)) +
                            ", Weight Type: " + attack::to_string(result.config.weight) + " (" +
                            std::to_string(result.scenarios_run) + " experiments)";
  std::vector<std::string> headers = {"Algorithm"};
  for (CostType cost_type : kAllCostTypes) {
    const std::string prefix = attack::to_string(cost_type);
    headers.push_back(prefix + " Runtime");
    headers.push_back(prefix + " ANER");
    headers.push_back(prefix + " ACRE");
  }
  Table table(title, headers);
  for (Algorithm algorithm : kAllAlgorithms) {
    std::vector<std::string> row = {to_string(algorithm)};
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      row.push_back(format_fixed(cell.avg_runtime(), 4));
      row.push_back(format_fixed(cell.aner(), 2));
      row.push_back(format_fixed(cell.acre(), 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table render_city_table_detailed(const CityTableResult& result) {
  const std::string title = std::string(citygen::to_string(result.config.city)) +
                            ", Weight Type: " + attack::to_string(result.config.weight) +
                            " (detailed)";
  Table table(title, {"Algorithm", "Cost", "Runtime Mean", "Runtime Stddev", "ANER Mean",
                      "ANER Stddev", "ACRE Mean", "ACRE Stddev", "N", "Failures"});
  for (Algorithm algorithm : kAllAlgorithms) {
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      table.add_row({to_string(algorithm), to_string(cost_type),
                     format_fixed(cell.runtime.mean(), 5), format_fixed(cell.runtime.stddev(), 5),
                     format_fixed(cell.edges_removed.mean(), 2),
                     format_fixed(cell.edges_removed.stddev(), 2),
                     format_fixed(cell.cost.mean(), 2), format_fixed(cell.cost.stddev(), 2),
                     std::to_string(cell.n), std::to_string(cell.verification_failures)});
    }
  }
  return table;
}

WeightSummary summarize(const CityTableResult& result) {
  WeightSummary summary;
  int n = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    for (CostType cost_type : kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost_type);
      if (cell.n == 0) continue;
      summary.aner += cell.aner();
      summary.acre += cell.acre();
      ++n;
    }
  }
  if (n > 0) {
    summary.aner /= n;
    summary.acre /= n;
  }
  return summary;
}

ThresholdRow run_threshold_experiment(citygen::City city, double scale, int trials,
                                      std::uint64_t seed) {
  ThresholdRow row;
  row.city = city;
  const auto network = citygen::generate_city(city, scale, seed);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);

  Rng rng(seed ^ 0x5c5c5c5cULL);
  ScenarioOptions options;
  options.path_rank = 200;  // one Yen run yields both the 100th and 200th
  const auto scenarios = sample_scenarios(network, weights, trials, rng, options);

  for (const Scenario& scenario : scenarios) {
    const double base = scenario.shortest_length;
    require(base > 0.0, "threshold: zero-length shortest path");
    const double len100 = scenario.prefix[99].length;
    const double len200 = scenario.p_star.length;
    row.avg_increase_100th += (len100 / base - 1.0) * 100.0;
    row.avg_increase_200th += (len200 / base - 1.0) * 100.0;
    ++row.n;
  }
  if (row.n > 0) {
    row.avg_increase_100th /= row.n;
    row.avg_increase_200th /= row.n;
  }
  return row;
}

}  // namespace mts::exp
