#include "exp/scenario.hpp"

#include <iostream>

#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "graph/metrics.hpp"
#include "graph/yen.hpp"
#include "obs/phase.hpp"

namespace mts::exp {

std::optional<Scenario> sample_scenario(const osm::RoadNetwork& network,
                                        const std::vector<double>& weights,
                                        std::size_t hospital_index, Rng& rng,
                                        const ScenarioOptions& options) {
  require(!network.pois().empty(), "sample_scenario: network has no POIs");
  require(hospital_index < network.pois().size(), "sample_scenario: hospital index out of range");
  require(options.path_rank >= 1, "sample_scenario: path_rank must be >= 1");

  const auto& g = network.graph();
  const auto& poi = network.pois()[hospital_index];
  require(poi.node.valid(), "sample_scenario: POI was not snapped to the network");

  const auto intersections = network.intersection_nodes();
  require(!intersections.empty(), "sample_scenario: no intersections");

  const double mean_segment = compute_network_metrics(g).mean_segment_length;
  const double min_separation = options.min_separation_segments * mean_segment;

  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    const NodeId source = intersections[rng.uniform_index(intersections.size())];
    if (source == poi.node || source == poi.access_node) continue;
    if (g.node_distance(source, poi.node) < min_separation) continue;

    Stopwatch stopwatch;
    auto ranked = yen_ksp(g, weights, source, poi.node,
                          static_cast<std::size_t>(options.path_rank));
    if (ranked.size() < static_cast<std::size_t>(options.path_rank)) continue;

    Scenario scenario;
    scenario.source = source;
    scenario.target = poi.node;
    scenario.hospital = poi.name;
    scenario.p_star = std::move(ranked.back());
    ranked.pop_back();
    scenario.prefix = std::move(ranked);
    scenario.shortest_length = scenario.prefix.empty() ? scenario.p_star.length
                                                       : scenario.prefix.front().length;
    scenario.p_star_length = scenario.p_star.length;
    scenario.yen_seconds = stopwatch.reported();
    return scenario;
  }
  return std::nullopt;
}

std::vector<Scenario> sample_scenarios(const osm::RoadNetwork& network,
                                       const std::vector<double>& weights, int count,
                                       std::uint64_t seed, const ScenarioOptions& options) {
  const std::size_t hospitals = network.pois().size();
  require(hospitals > 0, "sample_scenarios: network has no POIs");
  if (count <= 0) return {};

  // One slot per trial: tasks only touch their own index, and the ordered
  // harvest below makes the result independent of the thread count.
  std::vector<std::optional<Scenario>> slots(static_cast<std::size_t>(count));
  parallel_for(slots.size(), [&](std::size_t i) {
    // Root phase: attribution is the same whether this trial runs on a pool
    // worker or inline on the calling thread.
    obs::ScopedPhase phase("scenario", obs::PhaseKind::Root);
    Rng trial_rng(derive_seed(seed, {i}));
    // A poisoned trial (fault injection, Yen invariant breach) drops only
    // its own slot; the other trials keep their RNG streams and results.
    try {
      slots[i] = sample_scenario(network, weights, i % hospitals, trial_rng, options);
      if (slots[i]) slots[i]->trial = i;
    } catch (...) {
      std::cerr << "[quarantine] scenario trial " << i << ": " << current_exception_taxonomy()
                << '\n';
    }
  });

  std::vector<Scenario> scenarios;
  scenarios.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot) scenarios.push_back(std::move(*slot));
  }
  return scenarios;
}

std::vector<Scenario> sample_scenarios(const osm::RoadNetwork& network,
                                       const std::vector<double>& weights, int count, Rng& rng,
                                       const ScenarioOptions& options) {
  return sample_scenarios(network, weights, count, rng(), options);
}

}  // namespace mts::exp
