// The paper's reported numbers (Tables I-X), embedded for side-by-side
// "paper vs. measured" output in the benchmark binaries and EXPERIMENTS.md.
#pragma once

#include <optional>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/spec.hpp"

namespace mts::exp {

/// One (algorithm, cost) cell of Tables II-VIII.
struct PaperCell {
  double runtime = 0.0;  // seconds, on the authors' hardware
  double aner = 0.0;     // average number of edges removed
  double acre = 0.0;     // average cost of removed edges
};

/// Paper value for a cell, or nullopt when the paper omits the table
/// (Los Angeles was only reported with the TIME weight).
std::optional<PaperCell> paper_cell(citygen::City city, attack::WeightType weight,
                                    attack::Algorithm algorithm, attack::CostType cost);

/// Table I: city graph summaries as printed in the paper.  Note: the
/// paper's San Francisco edge count (269002) is inconsistent with its own
/// average degree column and is almost certainly a typo (see DESIGN.md).
struct PaperCitySummary {
  long nodes = 0;
  long edges = 0;
  double avg_degree = 0.0;
};
PaperCitySummary paper_table1(citygen::City city);

/// Table IX: ANER/ACRE averaged across cost types and algorithms.
struct PaperWeightSummary {
  double aner = 0.0;
  double acre = 0.0;
};
PaperWeightSummary paper_table9(citygen::City city, attack::WeightType weight);

/// Table X: average % increase from shortest to 100th/200th path (TIME).
/// nullopt for Los Angeles (not reported).
struct PaperThreshold {
  double increase_100th = 0.0;  // percent
  double increase_200th = 0.0;
};
std::optional<PaperThreshold> paper_table10(citygen::City city);

}  // namespace mts::exp
