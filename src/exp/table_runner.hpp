// Reproduction of the paper's evaluation tables.
//
// One CityTable run regenerates a Table II-VIII style grid: for one city
// and weight type, the 4 algorithms x 3 cost models x {Avg Runtime, ANER,
// ACRE} cells averaged over sampled (source, hospital) scenarios, each
// attack independently verified.
#pragma once

#include <string>
#include <vector>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/spec.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "exp/scenario.hpp"
#include "graph/metrics.hpp"

namespace mts::exp {

struct RunConfig {
  citygen::City city = citygen::City::Boston;
  double scale = 1.0;
  attack::WeightType weight = attack::WeightType::Length;
  int trials = 12;       // scenarios (paper: 40 = 10 sources x 4 hospitals)
  int path_rank = 100;   // p* = path_rank-th shortest path
  std::uint64_t seed = 7;
  /// Report 0.0 for every wall-clock value, so the rendered tables and
  /// JSON are byte-identical across runs and thread counts (MTS_TIMING=0).
  bool deterministic_timing = false;
  /// When non-empty, each cleanly completed cell is appended to this JSONL
  /// journal as it finishes (survives a kill mid-grid).
  std::string checkpoint_path;
  /// With resume=true, cells already present in the journal are folded in
  /// from their records instead of being recomputed; only missing (and
  /// previously quarantined) cells run.  Requires checkpoint_path.
  bool resume = false;
  /// Per-attack deterministic work caps (all-zero = unlimited); forwarded
  /// to AttackOptions::work_budget for every cell.
  WorkBudget work_budget;
};

/// Pins every RunConfig knob that changes cell results (not checkpointing
/// knobs themselves).  Journals written under a different fingerprint are
/// rejected at load time.
std::string checkpoint_fingerprint(const RunConfig& config);

/// Aggregate over scenarios for one (algorithm, cost) cell.  The paper
/// reports plain averages; standard deviations are kept alongside so the
/// CSV output exposes run-to-run spread.
struct CellStats {
  RunningStats runtime;
  RunningStats edges_removed;
  RunningStats cost;
  int n = 0;
  /// Attack honestly reported a non-Success status (budget infeasible, no
  /// path, iteration limit) — an expected experimental outcome.
  int attack_failures = 0;
  /// Attack claimed Success but the independent verifier rejected the cut.
  /// Any nonzero value here is a library bug and must stay loud.
  int verification_failures = 0;
  /// Cell threw (fault injection, invariant violation, OOM): isolated from
  /// the rest of the grid and counted into attack_failures as well.
  int quarantined = 0;
  /// Cells where LP-PathCover degraded to the greedy cover (lp/covering).
  int fallbacks = 0;
  /// Error-taxonomy strings of quarantined cells, in scenario order.
  std::vector<std::string> errors;

  void add(double runtime_s, double removed, double cut_cost) {
    runtime.add(runtime_s);
    edges_removed.add(removed);
    cost.add(cut_cost);
    ++n;
  }
  [[nodiscard]] double avg_runtime() const { return runtime.mean(); }
  [[nodiscard]] double aner() const { return edges_removed.mean(); }
  [[nodiscard]] double acre() const { return cost.mean(); }
};

inline constexpr std::size_t kNumAlgorithms = 4;
inline constexpr std::size_t kNumCostTypes = 3;

struct CityTableResult {
  RunConfig config;
  NetworkMetrics metrics;
  CellStats cells[kNumAlgorithms][kNumCostTypes];
  int scenarios_run = 0;

  [[nodiscard]] const CellStats& cell(attack::Algorithm a, attack::CostType c) const {
    return cells[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)];
  }
};

/// Runs the full grid for one city + weight type.
CityTableResult run_city_table(const RunConfig& config);

/// Same, on an already-generated network and scenario set (lets several
/// tables share one expensive Yen pass).
CityTableResult run_city_table_on(const osm::RoadNetwork& network,
                                  const std::vector<Scenario>& scenarios,
                                  const RunConfig& config);

/// Paper-style rendering: one row per algorithm, three cost blocks.
Table render_city_table(const CityTableResult& result);

/// CSV-oriented rendering with mean and stddev per metric.
Table render_city_table_detailed(const CityTableResult& result);

/// Table IX row: ANER/ACRE averaged over the three cost types.
struct WeightSummary {
  double aner = 0.0;
  double acre = 0.0;
};
WeightSummary summarize(const CityTableResult& result);

/// Table X: average % length increase from the shortest to the k-th path.
struct ThresholdRow {
  citygen::City city;
  double avg_increase_100th = 0.0;  // percent
  double avg_increase_200th = 0.0;  // percent
  int n = 0;
};
ThresholdRow run_threshold_experiment(citygen::City city, double scale, int trials,
                                      std::uint64_t seed);

}  // namespace mts::exp
