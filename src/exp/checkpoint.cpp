#include "exp/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "core/error.hpp"

namespace mts::exp {

namespace {

constexpr const char* kHeaderPrefix = "{\"journal\":\"mts-cells\",\"v\":1,\"fingerprint\":\"";

/// %.17g round-trips every finite double exactly through strtod.
std::string exact_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string header_line(const std::string& fingerprint) {
  return kHeaderPrefix + json_escape(fingerprint) + "\"}";
}

/// Position just past `"key":` in `line`, or npos.
std::size_t value_pos(const std::string& line, const char* key) {
  const std::string token = std::string("\"") + key + "\":";
  const std::size_t at = line.find(token);
  if (at == std::string::npos) return std::string::npos;
  return at + token.size();
}

bool parse_string(const std::string& line, const char* key, std::string& out) {
  std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  std::string escaped;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\') {
      if (pos + 1 >= line.size()) return false;
      escaped.push_back(line[pos]);
      escaped.push_back(line[pos + 1]);
      pos += 2;
    } else {
      escaped.push_back(line[pos]);
      ++pos;
    }
  }
  if (pos >= line.size()) return false;  // unterminated literal
  out = json_unescape(escaped);
  return true;
}

bool parse_double(const std::string& line, const char* key, double& out) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool parse_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  out = std::strtoull(start, &end, 10);
  return end != start;
}

bool parse_bool(const std::string& line, const char* key, bool& out) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos) return false;
  if (line.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

bool parse_record(const std::string& line, CellRecord& record) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  return parse_u64(line, "task", record.task) && parse_string(line, "status", record.status) &&
         parse_bool(line, "verified", record.verified) &&
         parse_string(line, "verify_reason", record.verify_reason) &&
         parse_bool(line, "fallback", record.fallback_used) &&
         parse_string(line, "fallback_reason", record.fallback_reason) &&
         parse_double(line, "seconds", record.seconds) &&
         parse_u64(line, "removed", record.removed) &&
         parse_double(line, "total_cost", record.total_cost);
}

std::string format_record(const CellRecord& record) {
  std::string line = "{\"task\":" + std::to_string(record.task);
  line += ",\"status\":\"" + json_escape(record.status) + "\"";
  line += std::string(",\"verified\":") + (record.verified ? "true" : "false");
  line += ",\"verify_reason\":\"" + json_escape(record.verify_reason) + "\"";
  line += std::string(",\"fallback\":") + (record.fallback_used ? "true" : "false");
  line += ",\"fallback_reason\":\"" + json_escape(record.fallback_reason) + "\"";
  line += ",\"seconds\":" + exact_number(record.seconds);
  line += ",\"removed\":" + std::to_string(record.removed);
  line += ",\"total_cost\":" + exact_number(record.total_cost);
  line += "}";
  return line;
}

}  // namespace

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 >= escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    const char next = escaped[++i];
    switch (next) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u':
        if (i + 4 < escaped.size()) {
          const std::string hex = escaped.substr(i + 1, 4);
          out.push_back(static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16)));
          i += 4;
        }
        break;
      default: out.push_back(next); break;
    }
  }
  return out;
}

CheckpointJournal::CheckpointJournal(const std::string& path, const std::string& fingerprint)
    : path_(path) {
  require(!path.empty(), "checkpoint: empty journal path");
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  bool need_header = true;
  {
    std::ifstream in(p);
    std::string first;
    if (in.good() && std::getline(in, first) && !first.empty()) {
      if (first != header_line(fingerprint)) {
        throw InvalidInput("checkpoint: journal " + path +
                           " was written under a different configuration "
                           "(fingerprint mismatch); delete it or fix the knobs");
      }
      need_header = false;
    }
  }

  // No other thread can hold a reference during construction; the lock is
  // taken anyway so the guarded-member accesses are analysis-clean.
  MutexLock lock(mutex_);
  out_.open(p, std::ios::app);
  require(out_.good(), "checkpoint: cannot open journal " + path);
  if (need_header) {
    out_ << header_line(fingerprint) << '\n';
    out_.flush();
  }
}

void CheckpointJournal::append(const CellRecord& record) {
  const std::string line = format_record(record);
  MutexLock lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

std::unordered_map<std::uint64_t, CellRecord> CheckpointJournal::load(
    const std::string& path, const std::string& fingerprint) {
  std::unordered_map<std::uint64_t, CellRecord> records;
  std::ifstream in(path);
  if (!in.good()) return records;  // no journal yet: nothing completed

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  if (lines.empty()) return records;

  if (lines.front() != header_line(fingerprint)) {
    throw InvalidInput("checkpoint: journal " + path +
                       " was written under a different configuration "
                       "(fingerprint mismatch); delete it or fix the knobs");
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    CellRecord record;
    if (!parse_record(lines[i], record)) {
      // A kill mid-append leaves at most one torn line, and only at the end.
      if (i + 1 == lines.size()) break;
      throw InvalidInput("checkpoint: corrupt journal line " + std::to_string(i + 1) + " in " +
                         path);
    }
    records[record.task] = std::move(record);
  }
  return records;
}

}  // namespace mts::exp
