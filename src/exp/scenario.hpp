// Experiment scenario sampling (paper §III-A).
//
// "The source is a randomly selected intersection and the destination is a
// hospital. [...] The alternative path is set to the 100th shortest path
// between the source and destination."  A scenario bundles the sampled
// endpoints, the ranked Yen paths, and the chosen p*.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "graph/path.hpp"
#include "osm/road_network.hpp"

namespace mts::exp {

using mts::NodeId;
using mts::Path;
using mts::Rng;

struct Scenario {
  /// Original trial index this scenario was sampled as.  A quarantined
  /// trial drops out of the returned vector, so position is NOT a stable
  /// identity — anything keyed on the trial (per-cell RNG streams, the
  /// checkpoint journal's task ids) must use this index instead.
  std::size_t trial = 0;
  NodeId source;
  NodeId target;             // the hospital's POI node
  std::string hospital;
  Path p_star;               // the path_rank-th shortest path
  std::vector<Path> prefix;  // ranks 1 .. path_rank-1 (seed constraints)
  double shortest_length = 0.0;
  double p_star_length = 0.0;
  double yen_seconds = 0.0;  // time spent ranking paths (preprocessing)
};

struct ScenarioOptions {
  int path_rank = 100;
  /// Resampling attempts per scenario before giving up (sources too close
  /// to the hospital may not have `path_rank` distinct simple paths).
  int max_attempts = 40;
  /// Minimum straight-line source-hospital separation, in multiples of the
  /// network's mean segment length (avoids trivial adjacent sources).
  double min_separation_segments = 8.0;
};

/// Samples `count` scenarios, rotating through the network's hospitals
/// (paper: 10 sources x 4 hospitals).  Returns fewer if sampling fails
/// repeatedly.  Throws PreconditionViolation if the network has no POIs.
///
/// Trial i draws from its own Rng stream derived via SplitMix64 from
/// (seed, i), so trials are statistically independent and the expensive
/// per-trial Yen runs execute in parallel on the global thread pool
/// (MTS_THREADS) — with results identical at any thread count.
std::vector<Scenario> sample_scenarios(const osm::RoadNetwork& network,
                                       const std::vector<double>& weights, int count,
                                       std::uint64_t seed, const ScenarioOptions& options = {});

/// Compatibility overload: derives the stream base from one draw of `rng`.
std::vector<Scenario> sample_scenarios(const osm::RoadNetwork& network,
                                       const std::vector<double>& weights, int count, Rng& rng,
                                       const ScenarioOptions& options = {});

/// Samples one scenario targeting the given hospital POI index.
std::optional<Scenario> sample_scenario(const osm::RoadNetwork& network,
                                        const std::vector<double>& weights,
                                        std::size_t hospital_index, Rng& rng,
                                        const ScenarioOptions& options = {});

}  // namespace mts::exp
