#include "exp/obs_flush.hpp"

#include <filesystem>
#include <utility>

#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "exp/json_report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mts::exp {

PeriodicMetricsFlusher::PeriodicMetricsFlusher(std::string base_path, double interval_s)
    : target_path_(std::move(base_path) + observability_suffix() + "_metrics.json"),
      interval_s_(interval_s) {
  require(interval_s_ > 0.0, "PeriodicMetricsFlusher: interval must be > 0 seconds");
}

PeriodicMetricsFlusher::~PeriodicMetricsFlusher() { stop(); }

void PeriodicMetricsFlusher::start() {
  require(!thread_.joinable(), "PeriodicMetricsFlusher::start called twice");
  flush_once();
  thread_ = std::thread([this] { run(); });
}

void PeriodicMetricsFlusher::stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  flush_once();  // final state: the artifact always reflects the full run
}

void PeriodicMetricsFlusher::flush_once() {
  const auto resolution = thread_resolution();
  obs::RunInfo run;
  run.threads_requested = resolution.requested;
  run.threads_effective = resolution.effective;
  run.timing = timing_enabled();
  // Write-then-rename keeps the flush atomic for pollers: the target path
  // always holds a complete JSON document, never a partial write.
  const std::string tmp_path = target_path_ + ".tmp";
  obs::save_metrics_json(obs::MetricsRegistry::instance().snapshot(), run, tmp_path);
  std::filesystem::rename(tmp_path, target_path_);
}

void PeriodicMetricsFlusher::run() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      wake_.wait_for_seconds(lock, interval_s_);
      if (stop_requested_) return;  // stop() does the final flush after join
    }
    flush_once();  // outside the lock: snapshot + I/O never blocks stop()
  }
}

}  // namespace mts::exp
