// Machine-readable experiment records.
//
// Tables are for humans; downstream analysis (plots, regression tracking
// of this reproduction itself) wants structured output.  One JSON document
// per CityTableResult: configuration, network metrics, and per-cell
// mean/stddev/min/max for every metric.
#pragma once

#include <string>

#include "exp/table_runner.hpp"

namespace mts::exp {

/// Serializes a full city-table run (config + network metrics + cells).
std::string to_json(const CityTableResult& result);

/// Writes to_json(result) to `path` (creating parent directories).
void save_json(const CityTableResult& result, const std::string& path);

/// When MTS_METRICS/MTS_TRACE are on, writes the current metrics snapshot
/// to `<base_path><suffix>_metrics.json` and (trace only) the Chrome trace
/// to `<base_path><suffix>_trace.json`.  No-op when both knobs are off, so
/// default runs produce byte-identical artifact sets.
///
/// The one-argument form takes the suffix from MTS_OBS_SUFFIX: unset or
/// empty keeps the historical names byte-for-byte; the literal value "pid"
/// expands to ".<process id>" so concurrent runs sharing a base path (CI
/// shards, the routed smoke) never clobber each other's artifacts; any
/// other value is appended verbatim.
void save_observability(const std::string& base_path);
void save_observability(const std::string& base_path, const std::string& suffix);

/// The MTS_OBS_SUFFIX expansion described above ("" when unset).
std::string observability_suffix();

}  // namespace mts::exp
