// Machine-readable experiment records.
//
// Tables are for humans; downstream analysis (plots, regression tracking
// of this reproduction itself) wants structured output.  One JSON document
// per CityTableResult: configuration, network metrics, and per-cell
// mean/stddev/min/max for every metric.
#pragma once

#include <string>

#include "exp/table_runner.hpp"

namespace mts::exp {

/// Serializes a full city-table run (config + network metrics + cells).
std::string to_json(const CityTableResult& result);

/// Writes to_json(result) to `path` (creating parent directories).
void save_json(const CityTableResult& result, const std::string& path);

}  // namespace mts::exp
