// Append-only JSONL checkpoint journal for experiment grids.
//
// The parallel harness appends one record per *cleanly completed* cell task
// (quarantined cells are deliberately absent, so a resumed run retries
// them).  Each record carries exactly the reduction inputs table_runner
// folds into CellStats — status, verification verdict, wall-clock, removal
// count, cut cost — with doubles serialized at %.17g so a resumed reduction
// is bit-identical to the original one (DESIGN.md §10).
//
// File format (one JSON object per line):
//   {"journal":"mts-cells","v":1,"fingerprint":"<config fingerprint>"}
//   {"task":17,"status":"success","verified":true,...}
//   ...
// The header fingerprint pins every configuration knob that changes
// results; loading a journal under a different configuration throws
// InvalidInput instead of silently mixing incompatible cells.  A trailing
// partial line (process killed mid-write) is skipped, not an error.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace mts::exp {

/// Reduction inputs of one completed (scenario, cost, algorithm) task.
struct CellRecord {
  std::uint64_t task = 0;  // flat task index in the grid's parallel_for
  std::string status;      // attack::to_string(AttackStatus) value
  bool verified = false;
  std::string verify_reason;
  bool fallback_used = false;
  std::string fallback_reason;
  double seconds = 0.0;
  std::uint64_t removed = 0;
  double total_cost = 0.0;
};

/// Escapes a string for embedding in a JSON string literal (backslash,
/// quote, and control characters).
std::string json_escape(const std::string& raw);

/// Inverse of json_escape (also accepts \uXXXX for ASCII code points).
std::string json_unescape(const std::string& escaped);

class CheckpointJournal {
 public:
  /// Opens `path` for appending.  Writes the header line when the file is
  /// new or empty; otherwise verifies the existing header's fingerprint and
  /// throws InvalidInput on a mismatch (or a non-journal file).
  CheckpointJournal(const std::string& path, const std::string& fingerprint);

  /// Appends one record and flushes, so a kill at any point loses at most
  /// the record being written.  Thread-safe.
  void append(const CellRecord& record) MTS_EXCLUDES(mutex_);

  /// Parses the journal at `path` into task -> record.  Returns an empty
  /// map when the file does not exist.  Throws InvalidInput when the header
  /// fingerprint does not match `fingerprint`.  A trailing unparsable line
  /// is ignored (kill mid-write); unparsable interior lines throw.
  static std::unordered_map<std::uint64_t, CellRecord> load(const std::string& path,
                                                            const std::string& fingerprint);

 private:
  Mutex mutex_;
  std::ofstream out_ MTS_GUARDED_BY(mutex_);  // writer stream shared by all cells
  const std::string path_;                    // immutable after construction
};

}  // namespace mts::exp
