#include "core/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace mts {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& headers,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::render_text(std::ostream& out) const {
  const auto widths = column_widths(headers_, rows_);
  out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::render_markdown(std::ostream& out) const {
  out << "### " << title_ << "\n\n|";
  for (const auto& h : headers_) out << ' ' << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (const auto& cell : row) out << ' ' << cell << " |";
    out << '\n';
  }
}

void Table::render_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "Table::save_csv: cannot open " + path);
  render_csv(out);
}

std::string format_fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace mts
