#include "core/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>

#include "core/error.hpp"

#include "core/fault.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace mts {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = env_raw(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  const char* raw = env_raw(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return parsed;
}

std::size_t env_threads() {
  const char* raw = env_raw("MTS_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE || parsed < 0 || parsed > 1'000'000) {
    throw InvalidInput("MTS_THREADS: expected a non-negative thread count, got '" +
                       std::string(raw) + "'");
  }
  return static_cast<std::size_t>(parsed);
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = env_raw(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

BenchEnv BenchEnv::from_environment() {
  BenchEnv env;
  env.scale = env_double("MTS_SCALE", env.scale);
  env.trials = static_cast<int>(env_int("MTS_TRIALS", env.trials));
  env.seed = static_cast<std::uint64_t>(env_int("MTS_SEED", static_cast<std::int64_t>(env.seed)));
  env.path_rank = static_cast<int>(env_int("MTS_PATH_RANK", env.path_rank));
  env.threads = static_cast<int>(env_threads());
  env.timing = env_int("MTS_TIMING", env.timing ? 1 : 0) != 0;
  env.checkpoint = env_string("MTS_CHECKPOINT", env.checkpoint);
  // Force the one-time MTS_FAULTS parse now: a malformed spec must abort at
  // startup, not surface later as a quarantine on every cell.
  (void)fault::faults_enabled();
  return env;
}

void BenchEnv::print_run_header(const std::string& binary_name) const {
  const auto resolution = thread_resolution();
  std::cerr << "[run] " << binary_name << ": scale=" << scale << " trials=" << trials
            << " seed=" << seed << " path_rank=" << path_rank
            << " threads=" << resolution.effective << " (requested "
            << (resolution.requested == 0 ? std::string("auto")
                                          : std::to_string(resolution.requested))
            << ", effective " << resolution.effective << ")"
            << " timing=" << (timing_enabled() ? 1 : 0)
            << " metrics=" << (obs::metrics_enabled() ? 1 : 0)
            << " trace=" << (obs::trace_enabled() ? 1 : 0);
  if (!checkpoint.empty()) std::cerr << " checkpoint=" << checkpoint;
  std::cerr << '\n';
}

}  // namespace mts
