#include "core/env.hpp"

#include <cstdlib>

namespace mts {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return parsed;
}

BenchEnv BenchEnv::from_environment() {
  BenchEnv env;
  env.scale = env_double("MTS_SCALE", env.scale);
  env.trials = static_cast<int>(env_int("MTS_TRIALS", env.trials));
  env.seed = static_cast<std::uint64_t>(env_int("MTS_SEED", static_cast<std::int64_t>(env.seed)));
  env.path_rank = static_cast<int>(env_int("MTS_PATH_RANK", env.path_rank));
  env.threads = static_cast<int>(env_int("MTS_THREADS", env.threads));
  env.timing = env_int("MTS_TIMING", env.timing ? 1 : 0) != 0;
  return env;
}

}  // namespace mts
