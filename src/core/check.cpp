#include "core/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace mts::detail {

void dcheck_fail(const char* expression, const char* file, int line,
                 const std::string& operands) {
  std::fprintf(stderr, "MTS_DCHECK failed at %s:%d: %s%s\n", file, line, expression,
               operands.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace mts::detail
