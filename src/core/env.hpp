// Environment-variable knobs shared by every benchmark binary.
//
// MTS_SCALE     city size multiplier (1 = scaled-down default, larger values
//               approach the paper's full-size graphs)
// MTS_TRIALS    experiments per table cell (paper used 40; default 24)
// MTS_SEED      RNG seed for the whole experiment
// MTS_PATH_RANK rank of the forced alternative path p* (paper: 100)
// MTS_THREADS   worker threads for the experiment harness (0 = hardware
//               concurrency).  Any value produces bit-identical results;
//               see core/thread_pool.hpp.
// MTS_TIMING    1 (default) = report wall-clock runtimes; 0 = report zeros,
//               making every table/JSON byte-identical across runs and
//               thread counts (used by the determinism tests and CI)
#pragma once

#include <cstdint>
#include <string>

namespace mts {

/// Reads an integer environment variable, falling back to `fallback` when
/// unset or unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a floating-point environment variable with fallback.
double env_double(const std::string& name, double fallback);

/// Bundled experiment knobs with their defaults applied.
struct BenchEnv {
  double scale = 1.0;
  int trials = 24;
  std::uint64_t seed = 7;
  int path_rank = 100;
  int threads = 0;     // 0 = hardware concurrency
  bool timing = true;  // false = zero out reported wall-clock values

  static BenchEnv from_environment();
};

}  // namespace mts
