// Environment-variable knobs shared by every benchmark binary.
//
// MTS_SCALE     city size multiplier (1 = scaled-down default, larger values
//               approach the paper's full-size graphs)
// MTS_TRIALS    experiments per table cell (paper used 40; default 24)
// MTS_SEED      RNG seed for the whole experiment
// MTS_PATH_RANK rank of the forced alternative path p* (paper: 100)
// MTS_THREADS   worker threads for the experiment harness (0 = hardware
//               concurrency).  Any value produces bit-identical results;
//               see core/thread_pool.hpp.
// MTS_TIMING    1 (default) = report wall-clock runtimes; 0 = report zeros,
//               making every table/JSON byte-identical across runs and
//               thread counts (used by the determinism tests and CI)
// MTS_METRICS   1 = record counters/histograms/phase rollups and write
//               <artifact>_metrics.json next to each bench artifact
//               (default 0: near-zero overhead, no extra files)
// MTS_TRACE     1 = additionally buffer per-phase trace events and write a
//               Chrome trace_event JSON (implies MTS_METRICS=1)
// MTS_CHECKPOINT path of the append-only cell journal; empty (default) =
//               no journaling.  See exp/checkpoint.hpp and --resume.
// MTS_BUDGET    deterministic work caps, e.g. "edges=5000000,pivots=20000"
//               (parsed by WorkBudget::from_environment; empty = unlimited)
// MTS_FAULTS    deterministic fault injection, e.g. "lp.pivot:after=100:throw"
//               (parsed by fault::FaultRegistry; empty = disarmed)
// MTS_SLOWLOG   slow-query threshold in milliseconds for `mts routed`:
//               requests at/over it (or failing) append one JSONL line to
//               the --slowlog file (default routed_slowlog.jsonl); unset
//               or 0 (default) writes nothing
// MTS_METRICS_INTERVAL
//               seconds between periodic metrics-snapshot flushes while
//               `mts routed` serves (implies MTS_METRICS=1); unset or 0
//               (default) = no periodic flush, artifacts only at exit
// MTS_MAX_INFLIGHT
//               `mts routed` per-connection cap on parsed-but-unanswered
//               requests; a connection over the cap gets `err <id>
//               overloaded` immediately.  Unset or 0 (default) = unbounded.
// MTS_MAX_QUEUE `mts routed` cap on queued+executing requests across all
//               connections.  At half the cap the daemon sheds expensive
//               verbs (attack, table); at the cap it sheds all search verbs
//               (route, kalt too).  Unset or 0 (default) = unbounded.
// MTS_DEADLINE_MS
//               `mts routed` default per-request deadline in milliseconds,
//               measured from parse (queue wait counts); an expired request
//               answers `err <id> deadline-exceeded`.  A request's own
//               `deadline=` token overrides.  Unset or 0 (default) = none.
// MTS_WRITE_TIMEOUT_MS
//               `mts routed` per-response send timeout; a client that can't
//               drain a response within it is disconnected and counted in
//               routed.slow_client_disconnects.  Unset or 0 (default) =
//               writes block (the per-connection write-queue byte cap still
//               bounds memory).
// MTS_CH        1 (default) = serve route/kalt distance work and the
//               attack oracle/verifier distance checks through the
//               Contraction Hierarchy built at snapshot/table load (see
//               DESIGN.md §14); 0 = plain Dijkstra/Yen fallback paths.
//               Answers are identical either way — the knob exists for
//               A/B parity checks (ci.sh routed_smoke) and bisection.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mts {

/// The repo's single raw environment read (lint rule no-raw-getenv): every
/// MTS_* knob flows through here, so determinism-sensitive configuration
/// has exactly one entry point.  Returns nullptr when unset.  Header-only
/// on purpose — the obs layer sits below mts_core in the link order and
/// may only use header-only core facilities.
inline const char* env_raw(const char* name) {
  return std::getenv(name);  // mts-lint: allow(no-raw-getenv) the one entry point
}

/// Reads an integer environment variable, falling back to `fallback` when
/// unset or unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Strictly-validated MTS_THREADS read: unset or empty means 0 (= hardware
/// concurrency); anything else must be a fully-consumed non-negative
/// integer.  Negative counts, trailing junk ("4x"), and non-numeric values
/// throw InvalidInput naming the offending value instead of silently
/// falling back — a typo'd thread count must never change results quietly.
std::size_t env_threads();

/// Reads a floating-point environment variable with fallback.
double env_double(const std::string& name, double fallback);

/// Reads a string environment variable, falling back when unset or empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Bundled experiment knobs with their defaults applied.
struct BenchEnv {
  double scale = 1.0;
  int trials = 24;
  std::uint64_t seed = 7;
  int path_rank = 100;
  int threads = 0;     // 0 = hardware concurrency
  bool timing = true;  // false = zero out reported wall-clock values
  std::string checkpoint;  // cell journal path; empty = no journaling

  static BenchEnv from_environment();

  /// Prints a one-line run header to stderr: the binary name, every knob,
  /// and the requested-vs-effective thread resolution.  stderr on purpose —
  /// stdout tables and saved artifacts must stay byte-identical across
  /// thread counts and observability settings.
  void print_run_header(const std::string& binary_name) const;
};

}  // namespace mts
