#include "core/fault.hpp"

#include <cstdlib>

#include "core/env.hpp"
#include "core/mutex.hpp"
#include "obs/metrics.hpp"

namespace mts::fault {

std::string to_string(Action action) {
  switch (action) {
    case Action::None:
      return "none";
    case Action::Throw:
      return "throw";
    case Action::Nan:
      return "nan";
    case Action::Limit:
      return "limit";
    case Action::Stall:
      return "stall";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kMaxPoints = 32;

struct Point {
  std::string name;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fire_at{0};  // 0 = disarmed
  std::atomic<int> action{static_cast<int>(Action::None)};
};

Action parse_action(std::string_view token) {
  if (token == "throw") return Action::Throw;
  if (token == "nan") return Action::Nan;
  if (token == "limit") return Action::Limit;
  if (token == "stall") return Action::Stall;
  throw InvalidInput("MTS_FAULTS: unknown action '" + std::string(token) +
                     "' (expected throw|nan|limit|stall)");
}

}  // namespace

struct FaultRegistry::Impl {
  mutable Mutex mutex;  // guards registration/arming
  // Stable storage with a split protection protocol: Point::name is written
  // once under `mutex` (find_or_add) before `count` is published with a
  // release store; the Point atomics (hits/fire_at/action) are lock-free on
  // the hit() fast path.  Per-field guards inside an array element are not
  // expressible to the analysis, so the array itself stays unannotated.
  std::array<Point, kMaxPoints> points;
  std::atomic<std::size_t> count{0};

  std::size_t find_or_add(std::string_view name) MTS_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    const std::size_t n = count.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      if (points[i].name == name) return i;
    }
    require(n < kMaxPoints, "fault registry: too many fault points");
    points[n].name = std::string(name);
    count.store(n + 1, std::memory_order_release);
    return n;
  }
};

FaultRegistry::Impl& FaultRegistry::impl() {
  static Impl instance;
  return instance;
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

PointId FaultRegistry::point(std::string_view name) {
  return PointId{static_cast<std::uint32_t>(impl().find_or_add(name))};
}

Action FaultRegistry::hit(PointId id) {
  Point& p = impl().points[id.index];
  // fetch_add makes hit number `n` unique even across threads, so the
  // trigger fires exactly once regardless of the thread interleaving.
  const std::uint64_t n = p.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = p.fire_at.load(std::memory_order_relaxed);
  if (at == 0 || n != at) return Action::None;
  // Cold branch: registration here keeps the counter out of clean-run
  // metrics snapshots (bench_gate byte-identity).
  static const obs::CounterId kInjected =
      obs::MetricsRegistry::instance().counter("fault.injected");
  obs::add(kInjected);
  return static_cast<Action>(p.action.load(std::memory_order_relaxed));
}

void FaultRegistry::arm(std::string_view name, std::uint64_t after, Action action) {
  require(after >= 1, "fault registry: trigger hit count must be >= 1");
  require(action != Action::None, "fault registry: cannot arm Action::None");
  Point& p = impl().points[impl().find_or_add(name)];
  p.action.store(static_cast<int>(action), std::memory_order_relaxed);
  p.fire_at.store(after, std::memory_order_relaxed);
  detail::g_faults_override.store(1, std::memory_order_relaxed);
}

void FaultRegistry::arm_from_spec(std::string_view spec) {
  // Grammar: entry ("," entry)*;  entry := name ":after=" N ":" action
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 = (c1 == std::string_view::npos)
                               ? std::string_view::npos
                               : entry.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
      throw InvalidInput("MTS_FAULTS: malformed entry '" + std::string(entry) +
                         "' (expected name:after=N:action)");
    }
    const std::string_view name = entry.substr(0, c1);
    const std::string_view after_kv = entry.substr(c1 + 1, c2 - c1 - 1);
    const std::string_view action_tok = entry.substr(c2 + 1);
    constexpr std::string_view kAfterKey = "after=";
    if (name.empty() || after_kv.substr(0, kAfterKey.size()) != kAfterKey) {
      throw InvalidInput("MTS_FAULTS: malformed entry '" + std::string(entry) +
                         "' (expected name:after=N:action)");
    }
    const std::string count_str(after_kv.substr(kAfterKey.size()));
    // strtoull silently wraps negatives, so insist on a leading digit.
    if (count_str.empty() || count_str[0] < '0' || count_str[0] > '9') {
      throw InvalidInput("MTS_FAULTS: bad trigger count in '" + std::string(entry) +
                         "' (need a positive integer)");
    }
    char* end = nullptr;
    const unsigned long long after = std::strtoull(count_str.c_str(), &end, 10);
    if (end == count_str.c_str() || *end != '\0' || after == 0) {
      throw InvalidInput("MTS_FAULTS: bad trigger count in '" + std::string(entry) +
                         "' (need a positive integer)");
    }
    arm(name, after, parse_action(action_tok));
  }
}

void FaultRegistry::reset() {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  const std::size_t n = im.count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    im.points[i].hits.store(0, std::memory_order_relaxed);
    im.points[i].fire_at.store(0, std::memory_order_relaxed);
    im.points[i].action.store(static_cast<int>(Action::None), std::memory_order_relaxed);
  }
  detail::g_faults_override.store(0, std::memory_order_relaxed);
}

std::vector<std::string> FaultRegistry::point_names() const {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  const std::size_t n = im.count.load(std::memory_order_relaxed);
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back(im.points[i].name);
  return names;
}

void throw_injected(const char* name, Action action) {
  throw FaultInjected(std::string("fault injected at ") + name + " (action " +
                      to_string(action) + ")");
}

namespace detail {

bool env_armed() {
  // One-time parse; the magic static is the synchronization.  After this,
  // runs with MTS_FAULTS unset flip g_faults_override to 0 so every later
  // faults_enabled() is the single relaxed load.
  static const bool armed = [] {
    const char* raw = env_raw("MTS_FAULTS");
    if (raw == nullptr || *raw == '\0') {
      g_faults_override.store(0, std::memory_order_relaxed);
      return false;
    }
    FaultRegistry::instance().arm_from_spec(raw);
    return true;
  }();
  return armed;
}

}  // namespace detail

}  // namespace mts::fault
