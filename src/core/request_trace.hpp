// Per-request work accounting, threaded by pointer like WorkBudget.
//
// The global obs counters aggregate across every request; a live service
// also needs to answer "what did *this* request cost?" — for request
// spans in the Chrome trace and for slow-query log lines.  A RequestTrace
// is owned by one request, carried through DijkstraOptions / YenOptions /
// the oracle exactly where the WorkBudget pointer already travels, and
// incremented at the same coarse checkpoints.  Unlike a budget it never
// throws: it only observes.
//
// A null pointer (the default everywhere) means "don't account" and costs
// one pointer test per checkpoint, so uninstrumented callers pay nothing.
#pragma once

#include <cstdint>

namespace mts {

/// Work performed on behalf of one request.  Not thread-safe: one trace
/// per request, touched only by the worker handling it.
struct RequestTrace {
  std::uint64_t dijkstra_runs = 0;
  std::uint64_t nodes_settled = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t spur_searches = 0;
  std::uint64_t spurs_pruned = 0;
  std::uint64_t oracle_calls = 0;
  std::uint64_t ch_queries = 0;
  std::uint64_t ch_nodes_settled = 0;
};

}  // namespace mts
