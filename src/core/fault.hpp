// Deterministic fault-injection registry.
//
// Robustness features (quarantine, fallback, resume) are only trustworthy if
// failures can be produced on demand at exact, reproducible points.  This
// registry provides named fault points compiled into the library:
//
//   MTS_FAULT_POINT("lp.pivot");             // throws FaultInjected when armed
//   switch (MTS_FAULT_ACTION("lp.pivot")) {  // site emulates Nan/Limit natively
//     case fault::Action::Nan:   ...; break;
//     case fault::Action::Limit: ...; break;
//     ...
//   }
//
// Points are armed via MTS_FAULTS="lp.pivot:after=100:throw" (comma-separated
// entries, actions: throw | nan | limit | stall) or programmatically through
// FaultRegistry::arm().  A point fires exactly once, on hit number `after`
// (1-based, counted process-wide with an atomic increment, so the firing hit
// is unique even across threads).
//
// Hot-path discipline mirrors the obs layer: every site first checks
// faults_enabled(), a relaxed atomic load, so a disarmed run pays one
// predictable branch per site and changes zero output bytes (DESIGN.md §10).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace mts::fault {

/// Thrown by an armed `throw`-action fault point (and by plain sites for any
/// action) when the trigger hit count is reached.  Deliberately NOT caught by
/// the solve chain's degradation paths: an injected fault must surface to the
/// harness quarantine, proving end-to-end isolation.
class FaultInjected : public Error {
 public:
  using Error::Error;
};

/// What an armed fault point does on its trigger hit.
enum class Action : int {
  None = 0,   ///< not this hit (or disarmed)
  Throw = 1,  ///< throw FaultInjected
  Nan = 2,    ///< site poisons a value with quiet NaN
  Limit = 3,  ///< site reports a forced iteration/search limit
  Stall = 4,  ///< site sleeps kStallMillis, emulating a wedged peer/syscall
};

/// How long an Action::Stall site sleeps before proceeding.  Long enough to
/// dominate loopback round-trips in tests, short enough to keep chaos legs
/// fast.
inline constexpr int kStallMillis = 400;

std::string to_string(Action action);

namespace detail {
/// -1 = decide from MTS_FAULTS on first query; 0/1 = forced.
inline std::atomic<int> g_faults_override{-1};
/// Parses and arms MTS_FAULTS once; true when the variable armed anything.
bool env_armed();
}  // namespace detail

/// True when any fault point may be armed.  A single relaxed load on the
/// steady-state path; disarmed runs never reach the registry.
inline bool faults_enabled() {
  const int forced = detail::g_faults_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return detail::env_armed();
}

/// Every fault point compiled into the library.  Tests and the CI smoke leg
/// iterate this list; keep it in sync with the MTS_FAULT_POINT/ACTION sites.
inline constexpr std::array<const char*, 6> kKnownPoints = {
    "lp.pivot",        // simplex.cpp, once per pivot
    "yen.spur",        // yen.cpp, once per spur search
    "oracle.solve",    // oracle.cpp, once per exclusivity query
    "pool.task",       // table_runner.cpp, once per grid cell task
    "routed.request",  // net/engine.cpp, once per routed request
    "net.write",       // net/server.cpp, once per queued response write
};

struct PointId {
  std::uint32_t index = 0;
};

/// Registry of named fault points.  Registration and arming are mutex-backed
/// cold paths; hit() is a pair of relaxed atomic ops.
class FaultRegistry {
 public:
  /// Process-wide singleton (function-local static).
  static FaultRegistry& instance();

  /// Registers (or looks up) a point by name.  Idempotent; intended for
  /// function-local statics at instrumentation sites.
  PointId point(std::string_view name);

  /// Counts one hit of `id`; returns the armed action iff this hit is the
  /// trigger, Action::None otherwise.  Caller owns the faults_enabled()
  /// check.  Bumps the `fault.injected` obs counter when it fires.
  Action hit(PointId id);

  /// Arms `name` (registering it if needed) to fire `action` on hit number
  /// `after` (1-based; `after` must be >= 1).  Forces faults_enabled() on.
  void arm(std::string_view name, std::uint64_t after, Action action);

  /// Parses an MTS_FAULTS-style spec ("name:after=N:action,...") and arms
  /// every entry.  Throws InvalidInput on a malformed spec.
  void arm_from_spec(std::string_view spec);

  /// Disarms every point, zeroes hit counts, and forces faults_enabled()
  /// off.  For test isolation.
  void reset();

  /// Names of all currently registered points, in registration order.
  [[nodiscard]] std::vector<std::string> point_names() const;

 private:
  FaultRegistry() = default;

  struct Impl;
  static Impl& impl();
};

/// Throws FaultInjected describing a fired plain site.  Out of line so the
/// macro below stays small at every site.
[[noreturn]] void throw_injected(const char* name, Action action);

}  // namespace mts::fault

/// Value site: evaluates to the Action fired at this hit (Action::None on the
/// fast path).  The site is responsible for emulating Nan/Limit.
#define MTS_FAULT_ACTION(name_literal)                                         \
  (::mts::fault::faults_enabled()                                              \
       ? [] {                                                                  \
           static const ::mts::fault::PointId mts_fault_point_id =             \
               ::mts::fault::FaultRegistry::instance().point(name_literal);    \
           return ::mts::fault::FaultRegistry::instance().hit(                 \
               mts_fault_point_id);                                            \
         }()                                                                   \
       : ::mts::fault::Action::None)

/// Plain site: any fired action escalates to a FaultInjected throw.  Used
/// where Nan/Limit have no safe native emulation.
#define MTS_FAULT_POINT(name_literal)                                          \
  do {                                                                         \
    const ::mts::fault::Action mts_fault_fired = MTS_FAULT_ACTION(name_literal); \
    if (mts_fault_fired != ::mts::fault::Action::None) [[unlikely]] {          \
      ::mts::fault::throw_injected(name_literal, mts_fault_fired);             \
    }                                                                          \
  } while (false)
