#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace mts {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::initializer_list<std::uint64_t> coords) {
  std::uint64_t h = mix64(seed);
  for (std::uint64_t coord : coords) {
    // Full avalanche between coordinates: h depends on every bit of every
    // coordinate before the next one is folded in.
    h = mix64(h ^ (coord + 0x9e3779b97f4a7c15ULL));
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::uniform_index(std::size_t n) {
  require(n > 0, "uniform_index: n must be positive");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform(double lo, double hi) {
  // 53 random mantissa bits -> uniform double in [0, 1).
  const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace mts
