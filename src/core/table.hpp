// Formatted table output (aligned text, Markdown, CSV) used by the
// benchmark harness to print the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mts {

/// A simple row/column table of strings with a title, rendered in three
/// formats.  Numeric cells should be pre-formatted by the caller (see
/// format_fixed below).
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; its size must match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Monospace-aligned rendering for terminals.
  void render_text(std::ostream& out) const;
  /// GitHub-flavored Markdown rendering.
  void render_markdown(std::ostream& out) const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void render_csv(std::ostream& out) const;

  /// Writes CSV to `path`, creating parent directories if needed.
  void save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `decimals` digits after the point ("3.58").
std::string format_fixed(double v, int decimals = 2);

}  // namespace mts
