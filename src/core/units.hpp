// Unit conversions and road-domain physical constants.
#pragma once

namespace mts {

inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kSecondsPerHour = 3600.0;

/// Miles-per-hour to meters-per-second.
constexpr double mph_to_mps(double mph) { return mph * kMetersPerMile / kSecondsPerHour; }

/// Kilometers-per-hour to meters-per-second.
constexpr double kmh_to_mps(double kmh) { return kmh * 1000.0 / kSecondsPerHour; }

/// Feet to meters (OSM `width` values are occasionally imperial).
constexpr double feet_to_meters(double ft) { return ft * 0.3048; }

/// Width of the average American car, meters.  The paper's WIDTH cost model
/// divides road width by this ([21], The Zebra 2022: ~5.8 ft).
inline constexpr double kAverageCarWidthMeters = 1.77;

/// Standard US lane width, meters (used when OSM lacks an explicit width).
inline constexpr double kLaneWidthMeters = 3.35;

/// Mean Earth radius, meters (spherical model for projections).
inline constexpr double kEarthRadiusMeters = 6371008.8;

}  // namespace mts
