#include "core/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace mts {

namespace {

// True while the current thread is executing a parallel_for task (on any
// pool).  Nested parallelism would deadlock a fixed-size pool, so it is
// rejected instead of queued.
thread_local bool t_in_parallel_task = false;

struct TaskScope {
  TaskScope() { t_in_parallel_task = true; }
  ~TaskScope() { t_in_parallel_task = false; }
};

obs::CounterId calls_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("pool.parallel_for_calls");
  return id;
}

obs::CounterId tasks_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("pool.tasks_executed");
  return id;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  require(num_threads >= 1, "ThreadPool: num_threads must be >= 1");
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!(stop_ || (job_ != nullptr && generation_ != seen_generation))) {
        work_ready_.wait(lock);
      }
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      ++job->remaining_workers;  // registered: the caller waits for us
    }
    if (job->submit_s > 0.0) {
      static const obs::HistogramId kQueueWait =
          obs::MetricsRegistry::instance().histogram("pool.queue_wait_s");
      const double wait_s =
          obs::MetricsRegistry::instance().seconds_since_epoch() - job->submit_s;
      obs::observe(kQueueWait, reported_seconds(wait_s));
    }
    run_job(*job);
    {
      MutexLock lock(mutex_);
      if (--job->remaining_workers == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::run_job(Job& job) {
  TaskScope scope;
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1);
    if (i >= job.n) break;
    if (job.failed.load()) continue;  // drain remaining indices un-run
    try {
      (*job.fn)(i);
      ++executed;
    } catch (...) {
      MutexLock lock(mutex_);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true);
    }
  }
  obs::add(tasks_counter(), executed);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  require(!t_in_parallel_task,
          "ThreadPool::parallel_for: nested use from inside a parallel task");
  if (n == 0) return;
  obs::add(calls_counter());
  if (workers_.empty() || n == 1) {
    // Serial fast path: no synchronization, same index order as any
    // parallel schedule's reduction order.
    TaskScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    obs::add(tasks_counter(), n);
    return;
  }

  MutexLock submit_lock(submit_mutex_);  // one job at a time
  Job job;
  job.n = n;
  job.fn = &fn;
  if (obs::metrics_enabled()) {
    job.submit_s = obs::MetricsRegistry::instance().seconds_since_epoch();
  }
  {
    MutexLock lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_ready_.notify_all();
  run_job(job);  // the calling thread is the pool's last worker
  {
    MutexLock lock(mutex_);
    while (job.remaining_workers != 0) work_done_.wait(lock);
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

// ---- TaskQueue -------------------------------------------------------------

TaskQueue::TaskQueue(std::size_t num_workers, std::size_t max_queued)
    : max_queued_(max_queued) {
  require(num_workers >= 1, "TaskQueue: num_workers must be >= 1");
  workers_.reserve(num_workers);
  for (std::size_t worker = 0; worker < num_workers; ++worker) {
    workers_.emplace_back([this, worker] { worker_loop(worker); });
  }
}

TaskQueue::~TaskQueue() { close(); }

TaskQueue::SubmitResult TaskQueue::try_submit(Task task) {
  require(static_cast<bool>(task), "TaskQueue::submit: empty task");
  {
    MutexLock lock(mutex_);
    if (closed_) return SubmitResult::Closed;
    if (max_queued_ != 0 && queue_.size() >= max_queued_) {
      return SubmitResult::QueueFull;
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return SubmitResult::Accepted;
}

bool TaskQueue::submit(Task task) {
  return try_submit(std::move(task)) == SubmitResult::Accepted;
}

std::size_t TaskQueue::queued() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void TaskQueue::close() {
  bool join_here = false;
  {
    MutexLock lock(mutex_);
    closed_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  work_ready_.notify_all();
  if (join_here) {
    // Workers drain the queue before exiting, so joining == draining.
    for (std::thread& worker : workers_) worker.join();
  }
}

void TaskQueue::worker_loop(std::size_t worker) {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !closed_) work_ready_.wait(lock);
      if (queue_.empty()) return;  // closed and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task(worker);
      MutexLock lock(mutex_);
      ++tasks_run_;
    } catch (...) {
      MutexLock lock(mutex_);
      ++tasks_run_;
      task_errors_.push_back(current_exception_taxonomy());
    }
  }
}

std::uint64_t TaskQueue::tasks_run() const {
  MutexLock lock(mutex_);
  return tasks_run_;
}

std::vector<std::string> TaskQueue::task_errors() const {
  MutexLock lock(mutex_);
  return task_errors_;
}

// ---- Global pool -----------------------------------------------------------

namespace {

// Function-local statics rather than namespace-scope globals (lint rule
// no-mutable-global): construction is lazy and race-free, and there is no
// static-initialization-order coupling with other translation units.
std::atomic<std::size_t>& thread_override() {
  static std::atomic<std::size_t> count{0};
  return count;
}

struct GlobalPool {
  Mutex mutex;
  std::unique_ptr<ThreadPool> pool MTS_GUARDED_BY(mutex);
};

GlobalPool& global_pool() {
  static GlobalPool instance;
  return instance;
}

}  // namespace

std::size_t num_threads() {
  const std::size_t override_count = thread_override().load();
  if (override_count != 0) return override_count;
  // env_threads() rejects negative or malformed MTS_THREADS with
  // InvalidInput instead of letting a bogus value slide into the pool-size
  // cast (or silently fall back to hardware concurrency).
  const std::size_t env = env_threads();
  if (env > 0) return env;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void set_num_threads(std::size_t n) { thread_override().store(n); }

ThreadResolution thread_resolution() {
  ThreadResolution resolution;
  const std::size_t override_count = thread_override().load();
  if (override_count != 0) {
    resolution.requested = override_count;
  } else {
    resolution.requested = env_threads();
  }
  resolution.effective = num_threads();
  return resolution;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t threads = num_threads();
  if (threads <= 1 || n <= 1) {
    require(!t_in_parallel_task,
            "parallel_for: nested use from inside a parallel task");
    TaskScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    obs::add(calls_counter());
    obs::add(tasks_counter(), n);
    return;
  }
  GlobalPool& global = global_pool();
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(global.mutex);
    if (!global.pool || global.pool->num_threads() != threads) {
      global.pool = std::make_unique<ThreadPool>(threads);
    }
    pool = global.pool.get();
  }
  pool->parallel_for(n, fn);
}

}  // namespace mts
