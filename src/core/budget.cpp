#include "core/budget.hpp"

#include <cstdlib>

#include "core/env.hpp"

namespace mts {

WorkBudget WorkBudget::parse(std::string_view spec) {
  WorkBudget budget;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidInput("MTS_BUDGET: malformed entry '" + std::string(entry) +
                         "' (expected key=N with key in edges|pivots|spurs)");
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string value(entry.substr(eq + 1));
    // strtoull silently wraps negatives, so insist on a leading digit.
    if (value.empty() || value[0] < '0' || value[0] > '9') {
      throw InvalidInput("MTS_BUDGET: bad count in '" + std::string(entry) +
                         "' (need a positive integer)");
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || parsed == 0) {
      throw InvalidInput("MTS_BUDGET: bad count in '" + std::string(entry) +
                         "' (need a positive integer)");
    }
    if (key == "edges") {
      budget.max_edges_scanned = parsed;
    } else if (key == "pivots") {
      budget.max_lp_pivots = parsed;
    } else if (key == "spurs") {
      budget.max_spur_searches = parsed;
    } else {
      throw InvalidInput("MTS_BUDGET: unknown key '" + std::string(key) +
                         "' (expected edges|pivots|spurs)");
    }
  }
  return budget;
}

WorkBudget WorkBudget::from_environment() {
  const char* raw = env_raw("MTS_BUDGET");
  if (raw == nullptr || *raw == '\0') return WorkBudget{};
  return parse(raw);
}

void WorkBudget::exhausted(const char* counter, std::uint64_t cap) {
  throw BudgetExhausted(std::string("work budget exhausted: ") + counter +
                        " exceeded cap " + std::to_string(cap));
}

void WorkBudget::expired() {
  // Deliberately carries no elapsed time: the message lands on the wire and
  // wire bytes must not depend on scheduler jitter.
  throw DeadlineExceeded("request ran past its deadline");
}

}  // namespace mts
