// Annotated mutex / condition-variable wrappers for Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// -Wthread-safety cannot see a std::lock_guard acquire it and every
// MTS_GUARDED_BY member access would be flagged as unprotected.  These thin
// wrappers re-expose the standard primitives with the annotations attached;
// they compile to exactly the std:: calls (header-only, no extra state), so
// non-clang builds and the TSan leg see the identical synchronization.
//
// Condition-variable discipline: the analysis cannot model a predicate
// lambda evaluated with the lock held inside std::condition_variable_any,
// so waits are written as explicit loops —
//
//   mts::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);   // ready_ is MTS_GUARDED_BY(mutex_)
//
// — which the analysis checks exactly (the condition read provably happens
// under the lock).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/annotations.hpp"

namespace mts {

/// std::mutex with the `capability` attribute so MTS_GUARDED_BY members can
/// name it and MutexLock acquisitions are visible to the analysis.
class MTS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MTS_ACQUIRE() { m_.lock(); }
  void unlock() MTS_RELEASE() { m_.unlock(); }
  bool try_lock() MTS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII scope holding a Mutex, equivalent to std::lock_guard but visible to
/// the analysis.  Also satisfies BasicLockable so CondVar can wait on it.
class MTS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MTS_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() MTS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface used only by CondVar::wait's internal
  // unlock/relock.  The capability is held again by the time wait returns,
  // so the scope's end state is unchanged; the analysis cannot follow the
  // round-trip through the standard header, hence the suppression.
  void lock() MTS_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() MTS_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable waiting on a MutexLock.  Wrapping keeps every wait
/// site on the annotated lock type; see the header comment for the
/// explicit-loop discipline that replaces predicate waits.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Atomically releases `lock`, blocks, and re-acquires before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(MutexLock& lock) { cv_.wait(lock); }

  /// Timed wait: returns false on timeout, true when notified.  Same
  /// discipline as wait() — re-check the condition either way (periodic
  /// loops use the timeout as their tick).
  bool wait_for_seconds(MutexLock& lock, double seconds) {
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mts
