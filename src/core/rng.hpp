// Deterministic random number generation.
//
// Every stochastic component of the library (city generation, source
// sampling, randomized LP rounding) draws from this engine so that a seed
// fully determines an experiment.  xoshiro256++ is used for speed and
// quality; seeding goes through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace mts {

/// SplitMix64 finalizer: a bijective 64-bit avalanche mix.  Adjacent inputs
/// map to statistically independent outputs, which is what makes it safe to
/// build stream seeds out of small integers (seeds, trial indices, ...).
std::uint64_t mix64(std::uint64_t x);

/// Derives a decorrelated substream seed from a base seed and a list of
/// stream coordinates (trial index, cost index, algorithm, ...).  Each
/// coordinate goes through a full mix64 avalanche round, so nearby base
/// seeds (ablation_seeds uses seed, seed+101, seed+202) and nearby
/// coordinates never produce overlapping or correlated streams — unlike
/// additive schemes such as `seed + ci * 131 + algorithm`.
std::uint64_t derive_seed(std::uint64_t seed, std::initializer_list<std::uint64_t> coords);

/// xoshiro256++ engine.  Satisfies UniformRandomBitGenerator, so it can
/// also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal via Box-Muller (cached second value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Derives an independent child stream (for parallel-safe substreams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mts
