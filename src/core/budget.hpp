// Cooperative deterministic work budgets.
//
// Wall-clock deadlines make runs machine-dependent; the harness instead caps
// the exact work counters the pipeline already tracks (Dijkstra edge
// relaxations, simplex pivots, Yen spur searches).  A WorkBudget is owned by
// one attack task, threaded by pointer through dijkstra/yen/simplex/oracle,
// and charged at coarse checkpoints (once per settled node / pivot / spur).
// Exceeding any cap throws BudgetExhausted, which run_attack() converts into
// a structured AttackStatus::BudgetExhausted — the same outcome on every
// machine and thread count (DESIGN.md §10).
//
// A null budget pointer (the default everywhere) means unlimited and costs
// one pointer test per checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/error.hpp"

namespace mts {

/// Thrown by WorkBudget::charge_* when a cap is exceeded.  Callers that
/// degrade gracefully catch it at the attack boundary; everything between
/// must be exception-safe, not exception-aware.
class BudgetExhausted : public Error {
 public:
  using Error::Error;
};

/// Deterministic work caps plus the running totals charged against them.
/// Caps of 0 mean unlimited.  Not thread-safe: one budget per task.
struct WorkBudget {
  std::uint64_t max_edges_scanned = 0;
  std::uint64_t max_lp_pivots = 0;
  std::uint64_t max_spur_searches = 0;

  std::uint64_t edges_scanned = 0;
  std::uint64_t lp_pivots = 0;
  std::uint64_t spur_searches = 0;

  /// True when at least one cap is set; callers pass nullptr instead of an
  /// unlimited budget so the zero-cap case stays off the hot path entirely.
  [[nodiscard]] bool limited() const {
    return max_edges_scanned != 0 || max_lp_pivots != 0 || max_spur_searches != 0;
  }

  void charge_edges_scanned(std::uint64_t n) {
    edges_scanned += n;
    if (max_edges_scanned != 0 && edges_scanned > max_edges_scanned) {
      exhausted("edges_scanned", max_edges_scanned);
    }
  }

  void charge_lp_pivots(std::uint64_t n) {
    lp_pivots += n;
    if (max_lp_pivots != 0 && lp_pivots > max_lp_pivots) {
      exhausted("lp_pivots", max_lp_pivots);
    }
  }

  void charge_spur_searches(std::uint64_t n) {
    spur_searches += n;
    if (max_spur_searches != 0 && spur_searches > max_spur_searches) {
      exhausted("spur_searches", max_spur_searches);
    }
  }

  /// Parses "edges=N,pivots=N,spurs=N" (any non-empty subset, any order).
  /// Throws InvalidInput on unknown keys or non-positive counts.
  static WorkBudget parse(std::string_view spec);

  /// Budget from MTS_BUDGET; all-unlimited when unset or empty.
  static WorkBudget from_environment();

 private:
  [[noreturn]] static void exhausted(const char* counter, std::uint64_t cap);
};

}  // namespace mts
