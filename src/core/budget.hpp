// Cooperative deterministic work budgets (plus opt-in serving deadlines).
//
// Wall-clock deadlines make runs machine-dependent; the harness instead caps
// the exact work counters the pipeline already tracks (Dijkstra edge
// relaxations, simplex pivots, Yen spur searches).  A WorkBudget is owned by
// one attack task, threaded by pointer through dijkstra/yen/simplex/oracle,
// and charged at coarse checkpoints (once per settled node / pivot / spur).
// Exceeding any cap throws BudgetExhausted, which run_attack() converts into
// a structured AttackStatus::BudgetExhausted — the same outcome on every
// machine and thread count (DESIGN.md §10).
//
// The serving layer (`mts routed`) additionally arms a wall-clock deadline on
// the same budget object: arm_deadline() makes every charge checkpoint also
// probe (every kDeadlineCheckInterval charges, to keep clock reads off the
// per-node path) whether the request ran past its deadline, throwing
// DeadlineExceeded.  Deadlines are deliberately NOT parsed from MTS_BUDGET —
// batch experiment output must stay machine-independent; only the daemon,
// whose responses are already latency-sensitive, arms them (DESIGN.md §15).
//
// A null budget pointer (the default everywhere) means unlimited and costs
// one pointer test per checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace mts {

/// Thrown by WorkBudget::charge_* when a cap is exceeded.  Callers that
/// degrade gracefully catch it at the attack boundary; everything between
/// must be exception-safe, not exception-aware.
class BudgetExhausted : public Error {
 public:
  using Error::Error;
};

/// Thrown by WorkBudget charge checkpoints when an armed wall-clock deadline
/// has passed.  Distinct from BudgetExhausted so the serving layer can map it
/// to the `deadline-exceeded` wire taxonomy (retryable by clients) while
/// budget exhaustion stays a deterministic, non-retryable outcome.
class DeadlineExceeded : public Error {
 public:
  using Error::Error;
};

/// Deterministic work caps plus the running totals charged against them.
/// Caps of 0 mean unlimited.  Not thread-safe: one budget per task.
struct WorkBudget {
  /// A deadline probe reads the clock only once per this many charge calls;
  /// the first charge always probes, so an already-expired request fails on
  /// its first checkpoint instead of after a full interval.
  static constexpr std::uint64_t kDeadlineCheckInterval = 64;

  std::uint64_t max_edges_scanned = 0;
  std::uint64_t max_lp_pivots = 0;
  std::uint64_t max_spur_searches = 0;

  std::uint64_t edges_scanned = 0;
  std::uint64_t lp_pivots = 0;
  std::uint64_t spur_searches = 0;

  /// True when at least one cap (or a deadline) is set; callers pass nullptr
  /// instead of an unlimited budget so the zero-cap case stays off the hot
  /// path entirely.
  [[nodiscard]] bool limited() const {
    return max_edges_scanned != 0 || max_lp_pivots != 0 ||
           max_spur_searches != 0 || deadline_clock_ != nullptr;
  }

  /// Arms a wall-clock deadline at absolute instant `deadline_s` on `clock`
  /// (which must outlive the budget).  Charge checkpoints then throw
  /// DeadlineExceeded once the clock passes the deadline.
  void arm_deadline(const Stopwatch* clock, double deadline_s) {
    deadline_clock_ = clock;
    deadline_s_ = deadline_s;
    deadline_ticks_ = 0;
  }

  /// True when an armed deadline has already passed.  Cheap enough for a
  /// per-request pre-execution probe (one clock read); false when disarmed.
  [[nodiscard]] bool deadline_expired() const {
    return deadline_clock_ != nullptr && deadline_clock_->seconds() >= deadline_s_;
  }

  void charge_edges_scanned(std::uint64_t n) {
    check_deadline();
    edges_scanned += n;
    if (max_edges_scanned != 0 && edges_scanned > max_edges_scanned) {
      exhausted("edges_scanned", max_edges_scanned);
    }
  }

  void charge_lp_pivots(std::uint64_t n) {
    check_deadline();
    lp_pivots += n;
    if (max_lp_pivots != 0 && lp_pivots > max_lp_pivots) {
      exhausted("lp_pivots", max_lp_pivots);
    }
  }

  void charge_spur_searches(std::uint64_t n) {
    check_deadline();
    spur_searches += n;
    if (max_spur_searches != 0 && spur_searches > max_spur_searches) {
      exhausted("spur_searches", max_spur_searches);
    }
  }

  /// Parses "edges=N,pivots=N,spurs=N" (any non-empty subset, any order).
  /// Throws InvalidInput on unknown keys or non-positive counts.
  static WorkBudget parse(std::string_view spec);

  /// Budget from MTS_BUDGET; all-unlimited when unset or empty.
  static WorkBudget from_environment();

 private:
  void check_deadline() {
    if (deadline_clock_ == nullptr) return;
    if ((deadline_ticks_++ % kDeadlineCheckInterval) != 0) return;
    if (deadline_clock_->seconds() >= deadline_s_) expired();
  }

  [[noreturn]] static void exhausted(const char* counter, std::uint64_t cap);
  [[noreturn]] static void expired();

  const Stopwatch* deadline_clock_ = nullptr;  ///< nullptr = no deadline
  double deadline_s_ = 0.0;                    ///< absolute, on deadline_clock_
  std::uint64_t deadline_ticks_ = 0;
};

}  // namespace mts
