#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mts {

void RunningStats::add(double value) {
  ++count_;
  if (count_ == 1) {
    mean_ = min_ = max_ = value;
    m2_ = 0.0;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  require(!values.empty(), "percentile: empty sample");
  require(q >= 0.0 && q <= 1.0, "percentile: q must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - frac) + values[lower + 1] * frac;
}

}  // namespace mts
