// Library-wide error type and precondition checks.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mts {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on malformed input data (bad OSM file, inconsistent graph, ...).
class InvalidInput : public Error {
 public:
  using Error::Error;
};

/// Thrown when an algorithm's preconditions are violated by the caller.
class PreconditionViolation : public Error {
 public:
  using Error::Error;
};

/// Thrown by check_invariants() validators when an internal data structure
/// is corrupt (broken CSR, discontiguous path, invalid simplex basis).
/// Reaching this is a library bug, never a caller error.
class InvariantViolation : public Error {
 public:
  using Error::Error;
};

/// Classifies the exception currently in flight into a stable
/// "<category>: <message>" string for quarantine records and JSON reports.
/// Categories: fault-injected, deadline-exceeded, budget-exhausted,
/// invariant-violation, precondition-violation, invalid-input, error,
/// bad-alloc, exception, unknown.  Must be called from inside a catch block (it rethrows the
/// active exception to inspect it).
std::string current_exception_taxonomy();

/// Checks a caller-facing precondition; throws PreconditionViolation with
/// file/line context on failure.  Used at public API boundaries (internal
/// invariants use MTS_DCHECK from core/check.hpp).
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionViolation(std::string(loc.file_name()) + ":" +
                                std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace mts
