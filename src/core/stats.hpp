// Streaming descriptive statistics (Welford) used by the experiment
// harness to report variability alongside the paper's plain averages.
#pragma once

#include <cstddef>
#include <vector>

namespace mts {

/// Single-pass mean/variance accumulator (numerically stable), plus
/// min/max.  add() values one at a time; all queries are O(1).
class RunningStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample via linear interpolation between order
/// statistics; `q` in [0, 1].  Sorts a copy — fine for experiment sizes.
double percentile(std::vector<double> values, double q);

}  // namespace mts
