// Strong ID types used throughout the library.
//
// Graph nodes and edges are referred to by dense 32-bit indices.  Wrapping
// them in distinct types prevents the classic bug of passing an edge index
// where a node index is expected, at zero runtime cost.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace mts {

/// A type-tagged dense index.  `Tag` only serves to make distinct ID types
/// incompatible with each other; `Rep` is the underlying integer.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  /// The sentinel "no such object" value.
  static constexpr StrongId invalid() { return StrongId(); }

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<Rep>::max();
  }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep value_ = std::numeric_limits<Rep>::max();
};

struct NodeTag {};
struct EdgeTag {};
struct OsmNodeTag {};
struct OsmWayTag {};

/// Index of an intersection (graph vertex).
using NodeId = StrongId<NodeTag>;
/// Index of a directed road segment (graph edge).
using EdgeId = StrongId<EdgeTag>;
/// 64-bit OSM element identifiers (sparse, file-assigned).
using OsmNodeId = StrongId<OsmNodeTag, std::int64_t>;
using OsmWayId = StrongId<OsmWayTag, std::int64_t>;

/// Iterates a contiguous range of StrongIds: `for (NodeId u : g.nodes())`.
template <typename Id>
class IdRange {
 public:
  class iterator {
   public:
    using value_type = Id;
    constexpr explicit iterator(typename Id::rep_type v) : v_(v) {}
    constexpr Id operator*() const { return Id(v_); }
    constexpr iterator& operator++() {
      ++v_;
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) = default;

   private:
    typename Id::rep_type v_;
  };

  constexpr IdRange(typename Id::rep_type begin, typename Id::rep_type end)
      : begin_(begin), end_(end) {}
  [[nodiscard]] constexpr iterator begin() const { return iterator(begin_); }
  [[nodiscard]] constexpr iterator end() const { return iterator(end_); }
  [[nodiscard]] constexpr std::size_t size() const { return end_ - begin_; }

 private:
  typename Id::rep_type begin_;
  typename Id::rep_type end_;
};

}  // namespace mts

template <typename Tag, typename Rep>
struct std::hash<mts::StrongId<Tag, Rep>> {
  std::size_t operator()(mts::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
