// Clang Thread Safety Analysis annotation macros (no-ops elsewhere).
//
// The reproduction's headline guarantee — bit-identical tables at any
// thread count — is enforced dynamically by the TSan CI leg and the golden
// determinism suites.  These macros add the *static* half: every
// lock-protected member in core/obs/exp declares which capability guards
// it, and clang's -Wthread-safety (promoted to an error in
// MtsCompileOptions.cmake) rejects any access that does not hold the lock
// at compile time.  See DESIGN.md §11 "Static analysis".
//
// Usage pattern (core/mutex.hpp provides the annotated Mutex/MutexLock/
// CondVar wrappers; std::mutex itself is unannotated in libstdc++, so the
// analysis cannot see std::lock_guard acquisitions):
//
//   class Journal {
//     mts::Mutex mutex_;
//     std::ofstream out_ MTS_GUARDED_BY(mutex_);
//   };
//   void Journal::append(...) {
//     mts::MutexLock lock(mutex_);
//     out_ << ...;          // OK: lock held
//   }
//
// Suppression policy: a function whose locking protocol the analysis
// cannot express (e.g. the BasicLockable surface handed to a condition
// variable) carries MTS_NO_THREAD_SAFETY_ANALYSIS with a comment naming
// the invariant that makes it safe.  Never suppress to silence a finding
// you have not explained.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MTS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MTS_THREAD_ANNOTATION
#define MTS_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no thread-safety analysis
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define MTS_CAPABILITY(name) MTS_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define MTS_SCOPED_CAPABILITY MTS_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define MTS_GUARDED_BY(x) MTS_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected.
#define MTS_PT_GUARDED_BY(x) MTS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define MTS_REQUIRES(...) MTS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define MTS_ACQUIRE(...) MTS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define MTS_RELEASE(...) MTS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define MTS_TRY_ACQUIRE(result, ...) \
  MTS_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention: the function
/// acquires it itself).
#define MTS_EXCLUDES(...) MTS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MTS_RETURN_CAPABILITY(x) MTS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose protocol the analysis cannot express.
/// Every use carries a comment naming the invariant that makes it safe.
#define MTS_NO_THREAD_SAFETY_ANALYSIS MTS_THREAD_ANNOTATION(no_thread_safety_analysis)
