// Fixed-size thread pool for the experiment layer.
//
// Design goals, in order: determinism, simplicity, zero surprises.
//   * Fixed worker count, no work stealing: a parallel_for hands out loop
//     indices from one atomic counter, so scheduling never affects which
//     task runs — only *when*.  Results must be written to per-index slots
//     and reduced in index order by the caller; then any thread count
//     (including 1, which runs inline on the calling thread) produces
//     bit-identical output.
//   * The calling thread participates as a worker, so a pool of size N uses
//     exactly N threads (N-1 workers + the caller) and a size-1 pool is a
//     plain serial loop with no synchronization at all.
//   * The first exception thrown by any task is captured and rethrown on
//     the calling thread after the loop finishes draining.
//
// Thread count resolution: `set_num_threads()` override if set, else the
// MTS_THREADS environment variable, else std::thread::hardware_concurrency.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace mts {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the last worker).
  /// `num_threads` must be >= 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices across the pool,
  /// and blocks until all calls finish.  The first exception any call throws
  /// is rethrown here (the remaining indices still drain, un-run).  Nested
  /// use — calling parallel_for from inside a task — is a precondition
  /// violation: the pool is fixed-size, so nesting would deadlock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      MTS_EXCLUDES(submit_mutex_, mutex_);

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    double submit_s = 0.0;  // metrics epoch timestamp; 0 when metrics are off
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};  // set once error is captured
    // The analysis cannot name the owning pool's mutex_ from a nested
    // struct, so these two carry the guard as a comment: both are written
    // only with ThreadPool::mutex_ held (worker registration in
    // worker_loop, error capture in run_job) and read by the caller after
    // the work_done_ wait under the same lock.
    std::size_t remaining_workers = 0;  // guarded by ThreadPool::mutex_
    std::exception_ptr error;           // first failure, guarded by ThreadPool::mutex_
  };

  void worker_loop() MTS_EXCLUDES(mutex_);
  void run_job(Job& job) MTS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex submit_mutex_;  // serializes concurrent top-level parallel_for
  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  Job* job_ MTS_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ MTS_GUARDED_BY(mutex_) = 0;
  bool stop_ MTS_GUARDED_BY(mutex_) = false;
};

/// FIFO queue with dedicated workers, for latency-oriented service work
/// (the routed daemon) as opposed to parallel_for's throughput loops.
/// Tasks receive their worker index so callers can keep per-worker state
/// (e.g. one net::QueryEngine per worker) without any sharing.  Tasks must
/// not throw; one that does is swallowed and its quarantine taxonomy
/// recorded (a service must survive a bad request).
///
/// The queue is unbounded by default; a `max_queued` bound turns submission
/// into admission control — try_submit() reports QueueFull instead of
/// growing the backlog, and the caller decides how to shed.
class TaskQueue {
 public:
  using Task = std::function<void(std::size_t worker)>;

  /// Why try_submit() did or did not accept a task.  Distinct outcomes on
  /// purpose: a full queue is a load signal (shed and keep serving) while a
  /// closed queue is a lifecycle signal (shut down).
  enum class SubmitResult : std::uint8_t { Accepted, QueueFull, Closed };

  /// Spawns `num_workers` dedicated threads (>= 1 required).  Unlike
  /// ThreadPool, the constructing thread never runs tasks.  `max_queued`
  /// caps tasks waiting in the queue (not yet running); 0 = unbounded.
  explicit TaskQueue(std::size_t num_workers, std::size_t max_queued = 0);

  /// close() + join.
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a task unless the queue is closed or at its bound.
  [[nodiscard]] SubmitResult try_submit(Task task) MTS_EXCLUDES(mutex_);

  /// Enqueues a task.  Returns false — dropping the task — once close()
  /// has begun or the bound is hit, so producers racing a shutdown get a
  /// definite answer.  (Callers that must tell the two apart use
  /// try_submit().)
  bool submit(Task task) MTS_EXCLUDES(mutex_);

  /// Tasks currently waiting in the queue (excludes ones being executed).
  [[nodiscard]] std::size_t queued() const MTS_EXCLUDES(mutex_);

  /// Stops accepting new tasks, waits for every already-queued task to
  /// finish, and joins the workers.  Idempotent; safe to call once from
  /// any single thread while others are still submitting.
  void close() MTS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Total tasks executed so far.
  [[nodiscard]] std::uint64_t tasks_run() const MTS_EXCLUDES(mutex_);

  /// Taxonomy strings ("<category>: <message>") of tasks that threw.
  [[nodiscard]] std::vector<std::string> task_errors() const MTS_EXCLUDES(mutex_);

 private:
  void worker_loop(std::size_t worker) MTS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  const std::size_t max_queued_;  // 0 = unbounded
  mutable Mutex mutex_;
  CondVar work_ready_;
  std::deque<Task> queue_ MTS_GUARDED_BY(mutex_);
  bool closed_ MTS_GUARDED_BY(mutex_) = false;
  bool joined_ MTS_GUARDED_BY(mutex_) = false;
  std::uint64_t tasks_run_ MTS_GUARDED_BY(mutex_) = 0;
  std::vector<std::string> task_errors_ MTS_GUARDED_BY(mutex_);
};

/// Thread count the global pool will use: the set_num_threads() override if
/// set, else MTS_THREADS, else hardware concurrency (min 1).
std::size_t num_threads();

/// How the global thread count was resolved.  `requested` is the explicit
/// ask — the set_num_threads() override if set, else a positive MTS_THREADS
/// value, else 0 (nothing requested).  `effective` is what parallel_for
/// will actually use (falls back to hardware concurrency).
struct ThreadResolution {
  std::size_t requested = 0;
  std::size_t effective = 1;
};
ThreadResolution thread_resolution();

/// Overrides the global thread count (0 = back to MTS_THREADS/hardware).
/// Takes effect on the next global parallel_for; not thread-safe against
/// concurrent top-level parallel_for calls.
void set_num_threads(std::size_t n);

/// Runs fn(i) for i in [0, n) on the lazily-created global pool.  With one
/// thread (or n <= 1) this is an inline serial loop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace mts
