// Debug invariant framework.
//
// Two tiers of checking, by audience:
//
//   * mts::require()  (core/error.hpp) — caller-facing preconditions at
//     public API boundaries.  Always on; throws PreconditionViolation.
//   * MTS_DCHECK*     (this header) — internal invariants ("this cannot
//     happen unless the library itself is wrong").  Compiled away unless
//     MTS_ENABLE_DCHECKS is defined (Debug and MTS_SANITIZE builds define
//     it); failure prints expression + operands and aborts, which gives a
//     clean stack under ASan/UBSan and in core dumps.
//
// Structural validators (`DiGraph::check_invariants()`, Path and simplex
// tableau checks) are ordinary always-available functions that throw
// InvariantViolation, so tests can exercise them in any build type; the
// *automatic* call sites inside hot paths go through MTS_DCHECK_INVARIANTS
// and vanish in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <string>

#include "core/error.hpp"

namespace mts {

/// Used inside check_invariants() implementations: throws InvariantViolation
/// with file:line context.  Always on — call sites decide (via
/// MTS_DCHECK_INVARIANTS or an explicit call) whether checking happens.
inline void enforce_invariant(bool condition, const std::string& message,
                              std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantViolation(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                             ": invariant violated: " + message);
  }
}

namespace detail {

/// Prints the failed expression and aborts.  Out-of-line so the macro
/// expansion stays small at every call site.
[[noreturn]] void dcheck_fail(const char* expression, const char* file, int line,
                              const std::string& operands);

template <typename T>
concept Streamable = requires(std::ostream& os, const T& value) { os << value; };

/// "  (lhs=3, rhs=7)" when both sides are streamable; ids and other opaque
/// types fall back to their integral value() if they have one.
template <typename L, typename R>
std::string format_operands(const L& lhs, const R& rhs) {
  const auto put = [](std::ostringstream& os, const auto& value) {
    using V = std::decay_t<decltype(value)>;
    if constexpr (Streamable<V>) {
      os << value;
    } else if constexpr (requires { value.value(); }) {
      os << value.value();
    } else {
      os << "<unprintable>";
    }
  };
  std::ostringstream os;
  os << " (lhs=";
  put(os, lhs);
  os << ", rhs=";
  put(os, rhs);
  os << ")";
  return os.str();
}

}  // namespace detail
}  // namespace mts

#if defined(MTS_ENABLE_DCHECKS)

#define MTS_DCHECK(condition)                                                      \
  do {                                                                             \
    if (!(condition)) {                                                            \
      ::mts::detail::dcheck_fail(#condition, __FILE__, __LINE__, std::string()); \
    }                                                                              \
  } while (false)

#define MTS_DCHECK_OP_(op, lhs, rhs)                                             \
  do {                                                                           \
    const auto& mts_dcheck_lhs_ = (lhs);                                         \
    const auto& mts_dcheck_rhs_ = (rhs);                                         \
    if (!(mts_dcheck_lhs_ op mts_dcheck_rhs_)) {                                 \
      ::mts::detail::dcheck_fail(                                                \
          #lhs " " #op " " #rhs, __FILE__, __LINE__,                             \
          ::mts::detail::format_operands(mts_dcheck_lhs_, mts_dcheck_rhs_));     \
    }                                                                            \
  } while (false)

/// Calls obj.check_invariants() in checked builds only.
#define MTS_DCHECK_INVARIANTS(obj) (obj).check_invariants()

#else  // !MTS_ENABLE_DCHECKS: syntax-checked but never evaluated.

#define MTS_DCHECK(condition) static_cast<void>(sizeof(static_cast<bool>(condition)))

#define MTS_DCHECK_OP_(op, lhs, rhs) static_cast<void>(sizeof((lhs) op (rhs)))

#define MTS_DCHECK_INVARIANTS(obj) static_cast<void>(sizeof(&(obj)))

#endif  // MTS_ENABLE_DCHECKS

#define MTS_DCHECK_EQ(lhs, rhs) MTS_DCHECK_OP_(==, lhs, rhs)
#define MTS_DCHECK_NE(lhs, rhs) MTS_DCHECK_OP_(!=, lhs, rhs)
#define MTS_DCHECK_LT(lhs, rhs) MTS_DCHECK_OP_(<, lhs, rhs)
#define MTS_DCHECK_LE(lhs, rhs) MTS_DCHECK_OP_(<=, lhs, rhs)
#define MTS_DCHECK_GT(lhs, rhs) MTS_DCHECK_OP_(>, lhs, rhs)
#define MTS_DCHECK_GE(lhs, rhs) MTS_DCHECK_OP_(>=, lhs, rhs)
