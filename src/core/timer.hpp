// Wall-clock measurement and the single gate all reported durations pass
// through.
//
// MTS_TIMING=0 makes every *reported* duration zero — table runtime
// columns, JSON runtime stats, and the obs phase/trace output — so
// experiment output is byte-reproducible across runs and thread counts.
// To keep that guarantee airtight, raw clock reads are confined to this
// header and src/obs/ (enforced by the tools/lint.py `no-raw-clock` rule);
// everything that lands in output goes through reported_seconds().
#pragma once

#include <atomic>
#include <chrono>

#include "core/env.hpp"

namespace mts {

namespace detail {
/// -1 = decide from MTS_TIMING on first query; 0/1 = forced by
/// set_timing_enabled (tests).
inline std::atomic<int> g_timing_override{-1};

inline bool timing_enabled_from_env() {
  static const bool enabled = [] {
    const char* raw = env_raw("MTS_TIMING");
    return raw == nullptr || *raw == '\0' || !(raw[0] == '0' && raw[1] == '\0');
  }();
  return enabled;
}
}  // namespace detail

/// True unless MTS_TIMING=0 (or set_timing_enabled(false)): reported
/// durations carry real wall-clock values.
inline bool timing_enabled() {
  const int forced = detail::g_timing_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return detail::timing_enabled_from_env();
}

/// Programmatic override; wins over the environment until process exit.
inline void set_timing_enabled(bool on) {
  detail::g_timing_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

/// The one duration gate: every wall-clock value that reaches any output
/// path (tables, JSON, metrics, traces) must be wrapped in this.
inline double reported_seconds(double raw_seconds) {
  return timing_enabled() ? raw_seconds : 0.0;
}

/// Measures elapsed wall time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last restart().  Raw: use only
  /// for internal decisions; wrap in reported_seconds() before output.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed seconds as they may appear in output (0 when MTS_TIMING=0).
  [[nodiscard]] double reported() const { return reported_seconds(seconds()); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mts
