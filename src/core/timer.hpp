// Wall-clock stopwatch for algorithm timing.
#pragma once

#include <chrono>

namespace mts {

/// Measures elapsed wall time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mts
