#include "core/error.hpp"

#include <exception>
#include <new>

#include "core/budget.hpp"
#include "core/fault.hpp"

namespace mts {

std::string current_exception_taxonomy() {
  // Most-derived classes first; the Error ladder mirrors the hierarchy in
  // error.hpp plus the robustness-layer exceptions.
  try {
    throw;
  } catch (const fault::FaultInjected& e) {
    return std::string("fault-injected: ") + e.what();
  } catch (const DeadlineExceeded& e) {
    return std::string("deadline-exceeded: ") + e.what();
  } catch (const BudgetExhausted& e) {
    return std::string("budget-exhausted: ") + e.what();
  } catch (const InvariantViolation& e) {
    return std::string("invariant-violation: ") + e.what();
  } catch (const PreconditionViolation& e) {
    return std::string("precondition-violation: ") + e.what();
  } catch (const InvalidInput& e) {
    return std::string("invalid-input: ") + e.what();
  } catch (const Error& e) {
    return std::string("error: ") + e.what();
  } catch (const std::bad_alloc& e) {
    return std::string("bad-alloc: ") + e.what();
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  } catch (...) {
    return "unknown: non-standard exception";
  }
}

}  // namespace mts
