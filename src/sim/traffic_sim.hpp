// Mesoscopic traffic simulation with live rerouting.
//
// The paper's premise is that drivers follow navigation software that
// "dynamically accounts for live traffic updates" — i.e. they re-query
// shortest paths as conditions change, which is exactly what makes them
// predictable and attackable.  This simulator closes the loop: vehicles
// traverse the road network under BPR-style congestion, periodically
// reroute on live travel times, and road closures (the attack) take
// effect mid-simulation.  Benches use it to measure the *realized* victim
// delay an attack causes, not just the static path-length delta.
#pragma once

#include <optional>
#include <vector>

#include "graph/edge_filter.hpp"
#include "graph/path.hpp"
#include "osm/road_network.hpp"

namespace mts::sim {

using mts::EdgeFilter;
using mts::EdgeId;
using mts::NodeId;
using mts::Path;

struct VehicleSpec {
  NodeId source;
  NodeId destination;
  double depart_time_s = 0.0;
  bool victim = false;  // tracked separately in the result aggregates
};

struct SimOptions {
  double time_step_s = 1.0;
  /// How often a vehicle re-queries routing with live travel times
  /// (0 = never reroute after departure: a "static" driver).
  double reroute_interval_s = 60.0;
  double max_time_s = 4.0 * 3600.0;
  /// Vehicles one lane-kilometer holds before congestion becomes severe.
  double capacity_per_lane_km = 40.0;
  /// BPR volume-delay parameters: time = free_time * (1 + a*(occ/cap)^b).
  double bpr_alpha = 0.15;
  double bpr_beta = 4.0;
  /// Gridlock guard: the BPR multiplier is capped here (occupancy is not
  /// flow, so an uncapped polynomial would produce unphysical crawls).
  double max_congestion_factor = 8.0;
  /// Consecutive ticks a vehicle may sit routeless before it is written off
  /// as terminally stranded (0 = keep retrying until max_time_s).  Without
  /// the cap a vehicle whose destination was cut off re-runs a full
  /// shortest-path query every tick for the rest of the simulation.
  int max_stranded_ticks = 600;
};

/// A scheduled road closure (the attacker blocking a segment).
struct Closure {
  EdgeId edge;
  double at_time_s = 0.0;
};

struct VehicleOutcome {
  bool arrived = false;
  /// Gave up after max_stranded_ticks consecutive routeless ticks (a
  /// terminal outcome; the vehicle stops consuming simulation work).
  bool terminally_stranded = false;
  double depart_time_s = 0.0;
  double arrival_time_s = 0.0;
  double travel_time_s = 0.0;  // only meaningful when arrived
  std::size_t reroutes = 0;
  std::vector<EdgeId> route_taken;
};

struct SimResult {
  std::vector<VehicleOutcome> outcomes;  // parallel to added vehicles
  double mean_travel_time_s = 0.0;       // over arrived vehicles
  std::size_t arrived = 0;
  std::size_t stranded = 0;              // never reached the destination
  double simulated_time_s = 0.0;

  /// Outcome of the first vehicle flagged `victim` (nullopt if none).
  [[nodiscard]] std::optional<VehicleOutcome> victim_outcome() const;
  std::ptrdiff_t victim_index = -1;
};

/// Deterministic single-run simulator.  Build, add vehicles and closures,
/// run() once.
class TrafficSimulation {
 public:
  TrafficSimulation(const osm::RoadNetwork& network, const SimOptions& options = {});

  /// Registers a vehicle; returns its index in the result outcomes.
  std::size_t add_vehicle(const VehicleSpec& spec);

  /// Schedules a road closure.  Vehicles already on the segment finish
  /// traversing it; nobody may enter it afterwards.
  void add_closure(EdgeId edge, double at_time_s);

  /// Runs to completion (all vehicles arrived/stranded or max_time_s).
  SimResult run();

 private:
  struct ActiveVehicle;

  double edge_travel_time(EdgeId e) const;      // live, congestion-adjusted
  std::optional<Path> route(NodeId from, NodeId to) const;

  const osm::RoadNetwork& network_;
  SimOptions options_;
  std::vector<VehicleSpec> vehicles_;
  std::vector<Closure> closures_;
  std::vector<double> free_flow_time_;   // per edge
  std::vector<double> capacity_;         // per edge, vehicles
  std::vector<int> occupancy_;           // per edge, live
  EdgeFilter closed_;
};

}  // namespace mts::sim
