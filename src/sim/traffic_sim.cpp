#include "sim/traffic_sim.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "graph/dijkstra.hpp"

namespace mts::sim {

std::optional<VehicleOutcome> SimResult::victim_outcome() const {
  if (victim_index < 0) return std::nullopt;
  return outcomes[static_cast<std::size_t>(victim_index)];
}

/// Per-vehicle progression state.
struct TrafficSimulation::ActiveVehicle {
  std::size_t index = 0;
  NodeId position;                  // node reached so far
  std::vector<EdgeId> plan;         // remaining route (front = next edge)
  std::size_t plan_cursor = 0;
  EdgeId current_edge = EdgeId::invalid();
  double remaining_on_edge_m = 0.0;
  double next_reroute_s = 0.0;
  int stranded_ticks = 0;  // consecutive ticks with no route
  bool departed = false;
  bool done = false;
};

TrafficSimulation::TrafficSimulation(const osm::RoadNetwork& network,
                                     const SimOptions& options)
    : network_(network),
      options_(options),
      free_flow_time_(network.edge_times()),
      closed_(network.graph().num_edges()) {
  require(options.time_step_s > 0.0, "sim: time step must be positive");
  require(options.max_time_s > 0.0, "sim: max time must be positive");
  capacity_.reserve(network.segments().size());
  for (const auto& seg : network.segments()) {
    const double lane_km = seg.lanes * seg.length_m / 1000.0;
    capacity_.push_back(std::max(1.0, lane_km * options.capacity_per_lane_km));
  }
  occupancy_.assign(network.graph().num_edges(), 0);
}

std::size_t TrafficSimulation::add_vehicle(const VehicleSpec& spec) {
  require(spec.source.value() < network_.graph().num_nodes() &&
              spec.destination.value() < network_.graph().num_nodes(),
          "sim: vehicle endpoint out of range");
  vehicles_.push_back(spec);
  return vehicles_.size() - 1;
}

void TrafficSimulation::add_closure(EdgeId edge, double at_time_s) {
  require(edge.value() < network_.graph().num_edges(), "sim: closure edge out of range");
  closures_.push_back({edge, at_time_s});
}

double TrafficSimulation::edge_travel_time(EdgeId e) const {
  const double load = occupancy_[e.value()] / capacity_[e.value()];
  const double factor = 1.0 + options_.bpr_alpha * std::pow(load, options_.bpr_beta);
  return free_flow_time_[e.value()] * std::min(options_.max_congestion_factor, factor);
}

std::optional<Path> TrafficSimulation::route(NodeId from, NodeId to) const {
  // Live weights: congestion-adjusted travel times, closures removed.
  std::vector<double> live(network_.graph().num_edges());
  for (EdgeId e : network_.graph().edges()) live[e.value()] = edge_travel_time(e);
  return shortest_path(network_.graph(), live, from, to, &closed_);
}

SimResult TrafficSimulation::run() {
  SimResult result;
  result.outcomes.resize(vehicles_.size());
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    result.outcomes[i].depart_time_s = vehicles_[i].depart_time_s;
    if (vehicles_[i].victim && result.victim_index < 0) {
      result.victim_index = static_cast<std::ptrdiff_t>(i);
    }
  }

  std::vector<ActiveVehicle> active(vehicles_.size());
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    active[i].index = i;
    active[i].position = vehicles_[i].source;
  }

  std::sort(closures_.begin(), closures_.end(),
            [](const Closure& a, const Closure& b) { return a.at_time_s < b.at_time_s; });
  std::size_t next_closure = 0;

  std::size_t remaining = vehicles_.size();
  double now = 0.0;
  const auto& g = network_.graph();

  while (remaining > 0 && now <= options_.max_time_s) {
    // Apply closures due by now.
    while (next_closure < closures_.size() && closures_[next_closure].at_time_s <= now) {
      closed_.remove(closures_[next_closure].edge);
      ++next_closure;
    }

    for (auto& vehicle : active) {
      if (vehicle.done) continue;
      const VehicleSpec& spec = vehicles_[vehicle.index];
      VehicleOutcome& outcome = result.outcomes[vehicle.index];

      if (!vehicle.departed) {
        if (spec.depart_time_s > now) continue;
        vehicle.departed = true;
        vehicle.next_reroute_s = now + options_.reroute_interval_s;
        if (auto path = route(spec.source, spec.destination)) {
          vehicle.plan = std::move(path->edges);
        }
      }

      // Instant arrival (source == destination) or stranded with no plan.
      if (vehicle.position == spec.destination) {
        outcome.arrived = true;
        outcome.arrival_time_s = now;
        outcome.travel_time_s = now - spec.depart_time_s;
        vehicle.done = true;
        --remaining;
        continue;
      }

      double step_budget = options_.time_step_s;
      while (step_budget > 0.0 && !vehicle.done) {
        if (!vehicle.current_edge.valid()) {
          // Periodic rerouting on live conditions (0 disables).
          if (options_.reroute_interval_s > 0.0 && now >= vehicle.next_reroute_s) {
            vehicle.next_reroute_s = now + options_.reroute_interval_s;
            if (auto path = route(vehicle.position, spec.destination)) {
              vehicle.plan = std::move(path->edges);
              vehicle.plan_cursor = 0;
              ++outcome.reroutes;
            }
          }
          // Enter the next planned edge if it is still open; otherwise
          // force an immediate replan.
          if (vehicle.plan_cursor >= vehicle.plan.size() ||
              closed_.is_removed(vehicle.plan[vehicle.plan_cursor])) {
            if (auto path = route(vehicle.position, spec.destination)) {
              vehicle.plan = std::move(path->edges);
              vehicle.plan_cursor = 0;
              ++outcome.reroutes;
            } else {
              // No route under the current closures: retry next tick, but
              // write the vehicle off once the cap is hit so an unreachable
              // destination stops burning a shortest-path query per tick.
              ++vehicle.stranded_ticks;
              if (options_.max_stranded_ticks > 0 &&
                  vehicle.stranded_ticks >= options_.max_stranded_ticks) {
                outcome.terminally_stranded = true;
                vehicle.done = true;
                --remaining;
              }
              break;
            }
            if (vehicle.plan.empty()) break;
          }
          vehicle.stranded_ticks = 0;
          vehicle.current_edge = vehicle.plan[vehicle.plan_cursor++];
          vehicle.remaining_on_edge_m = network_.segment(vehicle.current_edge).length_m;
          ++occupancy_[vehicle.current_edge.value()];
          outcome.route_taken.push_back(vehicle.current_edge);
        }

        // Advance along the current edge at the congestion-adjusted speed.
        const EdgeId e = vehicle.current_edge;
        const double speed =
            network_.segment(e).length_m / std::max(1e-9, edge_travel_time(e));
        const double advance = speed * step_budget;
        if (advance < vehicle.remaining_on_edge_m) {
          vehicle.remaining_on_edge_m -= advance;
          step_budget = 0.0;
        } else {
          step_budget -= vehicle.remaining_on_edge_m / speed;
          vehicle.position = g.edge_to(e);
          --occupancy_[e.value()];
          vehicle.current_edge = EdgeId::invalid();
          if (vehicle.position == spec.destination) {
            outcome.arrived = true;
            outcome.arrival_time_s = now + (options_.time_step_s - step_budget);
            outcome.travel_time_s = outcome.arrival_time_s - spec.depart_time_s;
            vehicle.done = true;
            --remaining;
          }
        }
      }
    }
    now += options_.time_step_s;
  }

  result.simulated_time_s = now;
  double total = 0.0;
  for (const auto& outcome : result.outcomes) {
    if (outcome.arrived) {
      ++result.arrived;
      total += outcome.travel_time_s;
    } else {
      ++result.stranded;
    }
  }
  if (result.arrived > 0) {
    result.mean_travel_time_s = total / static_cast<double>(result.arrived);
  }
  return result;
}

}  // namespace mts::sim
