// Exclusivity oracle: "is p* the exclusive shortest path yet, and if not,
// which path still beats it?"
//
// All four attack algorithms are driven by this constraint-generation
// query.  A violating path is any simple s→d path different from p* whose
// length is <= len(p*) (within floating tolerance).  Ties are certified
// with an exact second-shortest-path search rather than assumed away.
#pragma once

#include <memory>
#include <optional>

#include "attack/problem.hpp"
#include "core/budget.hpp"
#include "core/request_trace.hpp"
#include "graph/cch.hpp"
#include "graph/edge_filter.hpp"
#include "graph/search_space.hpp"

namespace mts::attack {

using mts::EdgeFilter;

class ExclusivityOracle {
 public:
  /// `problem` must outlive the oracle (as must `budget` and `trace` when
  /// non-null).  Throws PreconditionViolation if p* is not a simple s→d
  /// path or touches a non-positive-length check.  `budget` caps the
  /// deterministic work of every query this oracle runs (core/budget.hpp;
  /// nullptr = unlimited); `trace` receives per-request work accounting
  /// for the same queries (core/request_trace.hpp; nullptr = none).
  explicit ExclusivityOracle(const ForcePathCutProblem& problem, WorkBudget* budget = nullptr,
                             RequestTrace* trace = nullptr);

  /// A path that still violates p*'s exclusivity under `filter`, or
  /// nullopt when p* is certified exclusively shortest.
  [[nodiscard]] std::optional<Path> find_violating_path(const EdgeFilter& filter) const;

  [[nodiscard]] std::size_t calls() const { return calls_; }
  [[nodiscard]] double p_star_length() const { return p_star_length_; }

  /// Tolerance at which two path lengths are considered tied.
  [[nodiscard]] double tie_epsilon() const;

 private:
  const ForcePathCutProblem& problem_;
  double p_star_length_;
  /// Exact reverse shortest-path distances to the target under the
  /// *unfiltered* weights, built once per problem.  Removing edges only
  /// lengthens paths, so these distances lower-bound the remaining
  /// distance under every filter the oracle will ever see — an admissible
  /// goal-direction heuristic for all queries (DESIGN.md §9).  Filled by a
  /// CH PHAST pass when the problem carries ChAssets, by a full reverse
  /// Dijkstra otherwise — same exact distances either way.
  SearchSpace reverse_tree_;
  /// Masked-metric machinery for tie certifications, lazily created on the
  /// first tie (most problems never hit one).  Mutable like calls_: the
  /// oracle is logically const but single-threaded by contract.
  mutable std::unique_ptr<CchMetric> cch_;
  mutable SearchSpace cch_bounds_;
  WorkBudget* budget_ = nullptr;
  RequestTrace* trace_ = nullptr;
  mutable std::size_t calls_ = 0;
};

}  // namespace mts::attack
