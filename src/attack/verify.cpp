#include "attack/verify.hpp"

#include <cmath>

#include "graph/ch_assets.hpp"
#include "graph/dijkstra.hpp"
#include "graph/edge_filter.hpp"
#include "graph/shortest_path_count.hpp"
#include "obs/phase.hpp"

namespace mts::attack {

namespace {

/// Counts every verification plus its outcome.
VerifyReport finish(VerifyReport report) {
  static const obs::CounterId kChecks = obs::MetricsRegistry::instance().counter("verify.checks");
  static const obs::CounterId kRejections =
      obs::MetricsRegistry::instance().counter("verify.rejections");
  obs::add(kChecks);
  if (!report.ok) obs::add(kRejections);
  return report;
}

}  // namespace

VerifyReport verify_attack(const ForcePathCutProblem& problem,
                           const std::vector<EdgeId>& removed_edges) {
  obs::ScopedPhase phase("verify");
  const auto& g = *problem.graph;

  if (!is_simple_path(g, problem.p_star, problem.source, problem.target)) {
    return finish({false, "p* is not a simple source->target path"});
  }

  EdgeFilter filter(g.num_edges());
  for (EdgeId e : removed_edges) filter.remove(e);
  for (EdgeId e : problem.p_star.edges) {
    if (filter.is_removed(e)) {
      return finish({false, "removed edge " + std::to_string(e.value()) + " lies on p*"});
    }
  }

  const double len_star = path_length(problem.p_star.edges, problem.weights);
  const double eps = 1e-9 * (1.0 + std::abs(len_star));

  // Distance-under-mask check: with ChAssets present this runs off a CCH
  // re-customized to the cut (O(shortcuts) + one upward query) instead of
  // a full filtered Dijkstra.  Both compute the exact masked distance; the
  // eps comparison absorbs their summation-order ulps, so the verdict is
  // identical.  The exclusivity count and the final path identity check
  // below deliberately stay on the Dijkstra machinery: an independent
  // implementation should confirm what the CCH-accelerated attack claims.
  double dist = 0.0;
  if (problem.ch != nullptr && problem.ch->cch.num_edges() == g.num_edges() &&
      problem.ch->cch.num_nodes() == g.num_nodes()) {
    CchMetric metric(problem.ch->cch, problem.weights);
    metric.recustomize(&filter);
    dist = metric.distance(problem.source, problem.target);
  } else {
    dist = shortest_distance(g, problem.weights, problem.source, problem.target, &filter);
  }
  if (std::abs(dist - len_star) > eps) {
    return finish({false, "shortest distance " + std::to_string(dist) + " != len(p*) " +
                       std::to_string(len_star)});
  }

  const auto count = count_shortest_paths(g, problem.weights, problem.source, problem.target,
                                          &filter);
  if (count != 1) {
    return finish(
        {false, "p* is not exclusive: " + std::to_string(count) + " tied shortest paths"});
  }

  // The unique shortest path must be p* itself.
  const auto sp = shortest_path(g, problem.weights, problem.source, problem.target, &filter);
  if (!sp || !(sp->edges == problem.p_star.edges)) {
    return finish({false, "the unique shortest path is not p*"});
  }
  return finish({true, ""});
}

}  // namespace mts::attack
