#include "attack/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "attack/oracle.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "graph/eigen.hpp"
#include "obs/phase.hpp"

namespace mts::attack {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::LpPathCover: return "LP-PathCover";
    case Algorithm::GreedyPathCover: return "GreedyPathCover";
    case Algorithm::GreedyEdge: return "GreedyEdge";
    case Algorithm::GreedyEig: return "GreedyEig";
  }
  return "?";
}

const char* to_string(AttackStatus status) {
  switch (status) {
    case AttackStatus::Success: return "success";
    case AttackStatus::BudgetExceeded: return "budget-exceeded";
    case AttackStatus::Infeasible: return "infeasible";
    case AttackStatus::IterationLimit: return "iteration-limit";
    case AttackStatus::BudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

namespace {

/// Shared per-run context.
struct Context {
  const ForcePathCutProblem& problem;
  ExclusivityOracle oracle;
  std::vector<std::uint8_t> in_p_star;  // per edge

  explicit Context(const ForcePathCutProblem& p, WorkBudget* budget = nullptr,
                   RequestTrace* trace = nullptr)
      : problem(p), oracle(p, budget, trace), in_p_star(p.graph->num_edges(), 0) {
    for (EdgeId e : p.p_star.edges) in_p_star[e.value()] = 1;
  }

  [[nodiscard]] bool removable(EdgeId e) const {
    if (in_p_star[e.value()]) return false;
    return problem.protected_edges.empty() || !problem.protected_edges[e.value()];
  }

  [[nodiscard]] double cost_of(const std::vector<EdgeId>& edges) const {
    double total = 0.0;
    for (EdgeId e : edges) total += problem.costs[e.value()];
    return total;
  }
};

/// Finishes a result: status from budget, bookkeeping from the oracle.
AttackResult finish(Context& ctx, AttackStatus status, std::vector<EdgeId> removed,
                    std::size_t iterations) {
  AttackResult result;
  result.removed_edges = std::move(removed);
  std::sort(result.removed_edges.begin(), result.removed_edges.end());
  result.total_cost = ctx.cost_of(result.removed_edges);
  result.oracle_calls = ctx.oracle.calls();
  result.iterations = iterations;
  if (status == AttackStatus::Success && result.total_cost > ctx.problem.budget) {
    status = AttackStatus::BudgetExceeded;
  }
  result.status = status;

  static const obs::CounterId kRuns = obs::MetricsRegistry::instance().counter("attack.runs");
  static const obs::CounterId kRounds = obs::MetricsRegistry::instance().counter("attack.rounds");
  static const obs::CounterId kOracleCalls =
      obs::MetricsRegistry::instance().counter("attack.oracle_calls");
  static const obs::CounterId kEdgesRemoved =
      obs::MetricsRegistry::instance().counter("attack.edges_removed");
  obs::add(kRuns);
  obs::add(kRounds, result.iterations);
  obs::add(kOracleCalls, result.oracle_calls);
  obs::add(kEdgesRemoved, result.removed_edges.size());
  return result;
}

// ---- GreedyEdge / GreedyEig ------------------------------------------------

/// Iteratively removes one scored edge from each violating path.
/// `better(a, b)` returns true when edge a is preferable to edge b.
template <typename Better>
AttackResult run_iterative(Context& ctx, const AttackOptions& options, Better better) {
  EdgeFilter filter(ctx.problem.graph->num_edges());
  std::vector<EdgeId> removed;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const auto violating = ctx.oracle.find_violating_path(filter);
    if (!violating) return finish(ctx, AttackStatus::Success, std::move(removed), iter);

    EdgeId choice = EdgeId::invalid();
    for (EdgeId e : violating->edges) {
      if (!ctx.removable(e)) continue;
      if (!choice.valid() || better(e, choice)) choice = e;
    }
    // A violating path always has an edge outside p*, but a defender may
    // have protected all of them — then p* simply cannot be forced.
    if (!choice.valid()) {
      return finish(ctx, AttackStatus::Infeasible, std::move(removed), iter);
    }

    filter.remove(choice);
    removed.push_back(choice);
    if (ctx.cost_of(removed) > ctx.problem.budget) {
      return finish(ctx, AttackStatus::BudgetExceeded, std::move(removed), iter + 1);
    }
  }
  return finish(ctx, AttackStatus::IterationLimit, std::move(removed), options.max_iterations);
}

AttackResult run_greedy_edge(Context& ctx, const AttackOptions& options) {
  // Paper: "cuts the shortest road segment, not in p*, on the current
  // shortest route".
  return run_iterative(ctx, options, [&](EdgeId a, EdgeId b) {
    return ctx.problem.weights[a.value()] < ctx.problem.weights[b.value()];
  });
}

AttackResult run_greedy_eig(Context& ctx, const AttackOptions& options) {
  // Eigen-scores come from the pristine graph: the attacker's topological
  // pre-analysis (recomputing per removal would change no ranking in
  // practice but cost a power iteration per cut).
  const auto eig = eigenvector_centrality(*ctx.problem.graph);
  const auto scores = edge_eigen_scores(*ctx.problem.graph, eig);
  return run_iterative(ctx, options, [&, scores](EdgeId a, EdgeId b) {
    const double ra = scores[a.value()] / ctx.problem.costs[a.value()];
    const double rb = scores[b.value()] / ctx.problem.costs[b.value()];
    return ra > rb;
  });
}

// ---- PathCover (greedy set cover and LP relaxation) -------------------------

AttackResult run_path_cover(Context& ctx, const AttackOptions& options, bool use_lp) {
  static const obs::CounterId kConstraints =
      obs::MetricsRegistry::instance().counter("attack.constraints_generated");
  static const obs::CounterId kForced =
      obs::MetricsRegistry::instance().counter("attack.forced_edges");
  Rng rng(options.rng_seed);
  const double eps = ctx.oracle.tie_epsilon();
  const double len_star = ctx.oracle.p_star_length();

  // Constraint paths: must be cut.  Seeded from the caller's Yen prefix.
  std::vector<Path> constraints;
  std::unordered_set<std::uint64_t> signatures;
  for (const Path& p : ctx.problem.seed_paths) {
    if (p.edges == ctx.problem.p_star.edges) continue;
    if (path_length(p.edges, ctx.problem.weights) > len_star + eps) continue;
    if (signatures.insert(path_signature(p)).second) {
      constraints.push_back(p);
      obs::add(kConstraints);
    }
  }

  // Edges the cut must always include (progress guarantee on duplicate
  // oracle answers near the tolerance boundary).
  std::vector<EdgeId> forced;
  std::unordered_set<std::uint32_t> forced_set;

  EdgeFilter filter(ctx.problem.graph->num_edges());
  double lp_lower_bound = 0.0;
  bool fallback_used = false;
  std::string fallback_reason;
  const auto finalize = [&](AttackResult result) {
    result.lp_lower_bound = lp_lower_bound;
    result.fallback_used = fallback_used;
    result.fallback_reason = fallback_reason;
    return result;
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // ---- Build the covering instance over removable edges.
    std::unordered_map<std::uint32_t, std::size_t> var_of;
    std::vector<EdgeId> vars;
    CoveringProblem covering;
    covering.sets.reserve(constraints.size());
    for (const Path& path : constraints) {
      // Paths already hit by a forced edge need no additional cover.
      bool hit = false;
      for (EdgeId e : path.edges) {
        if (forced_set.contains(e.value())) {
          hit = true;
          break;
        }
      }
      if (hit) continue;
      std::vector<std::size_t> set;
      for (EdgeId e : path.edges) {
        if (!ctx.removable(e)) continue;
        const auto [it, inserted] = var_of.emplace(e.value(), vars.size());
        if (inserted) vars.push_back(e);
        set.push_back(it->second);
      }
      if (set.empty()) {  // fully protected constraint path: unforceable
        return finalize(finish(ctx, AttackStatus::Infeasible, std::move(forced), iter));
      }
      covering.sets.push_back(std::move(set));
    }
    covering.costs.reserve(vars.size());
    for (EdgeId e : vars) covering.costs.push_back(ctx.problem.costs[e.value()]);

    // ---- Solve the cover from scratch (PATHATTACK-style per-iteration
    // re-solve) and apply it together with the forced edges.
    std::vector<EdgeId> cut = forced;
    if (!covering.sets.empty()) {
      const CoveringSolution solution = use_lp ? solve_covering_lp(covering, rng, options.covering)
                                               : solve_covering_greedy(covering);
      require(solution.feasible, "path cover: covering unexpectedly infeasible");
      if (solution.fallback_used && !fallback_used) {
        fallback_used = true;
        fallback_reason = solution.fallback_reason;
        // Cold branch: lazy registration keeps the counter out of clean-run
        // snapshots (bench_gate byte-identity).
        static const obs::CounterId kFallbacks =
            obs::MetricsRegistry::instance().counter("attack.fallbacks");
        obs::add(kFallbacks);
      }
      if (use_lp) lp_lower_bound = std::max(lp_lower_bound, solution.lp_lower_bound);
      for (std::size_t j : solution.chosen) cut.push_back(vars[j]);
    }

    filter.clear();
    for (EdgeId e : cut) filter.remove(e);
    if (ctx.cost_of(cut) > ctx.problem.budget) {
      return finalize(finish(ctx, AttackStatus::BudgetExceeded, std::move(cut), iter));
    }

    // ---- Oracle: did the cut force p*?
    const auto violating = ctx.oracle.find_violating_path(filter);
    if (!violating) {
      return finalize(finish(ctx, AttackStatus::Success, std::move(cut), iter));
    }
    if (signatures.insert(path_signature(*violating)).second) {
      constraints.push_back(*violating);
      obs::add(kConstraints);
    } else {
      // Tolerance-boundary duplicate: permanently cut its cheapest
      // removable edge so the next iteration strictly progresses.
      EdgeId cheapest = EdgeId::invalid();
      for (EdgeId e : violating->edges) {
        if (!ctx.removable(e) || forced_set.contains(e.value())) continue;
        if (!cheapest.valid() ||
            ctx.problem.costs[e.value()] < ctx.problem.costs[cheapest.value()]) {
          cheapest = e;
        }
      }
      if (!cheapest.valid()) {
        return finalize(finish(ctx, AttackStatus::Infeasible, filter.removed_edges(), iter));
      }
      forced.push_back(cheapest);
      forced_set.insert(cheapest.value());
      obs::add(kForced);
    }
  }
  return finalize(
      finish(ctx, AttackStatus::IterationLimit, filter.removed_edges(), options.max_iterations));
}

}  // namespace

AttackResult run_attack(Algorithm algorithm, const ForcePathCutProblem& problem,
                        const AttackOptions& options) {
  require(problem.graph != nullptr, "run_attack: null graph");
  require(problem.weights.size() == problem.graph->num_edges(),
          "run_attack: weights size mismatch");
  require(problem.costs.size() == problem.graph->num_edges(), "run_attack: costs size mismatch");
  require(problem.protected_edges.empty() ||
              problem.protected_edges.size() == problem.graph->num_edges(),
          "run_attack: protected_edges size mismatch");
  for (EdgeId e : problem.p_star.edges) {
    require(problem.costs[e.value()] >= 0.0, "run_attack: negative cost");
  }

  obs::ScopedPhase phase("attack");
  Stopwatch stopwatch;
  // The per-attack budget copy is what gets charged; a caller's all-zero
  // (unlimited) budget stays off the hot path as a null pointer.
  WorkBudget budget = options.work_budget;
  WorkBudget* budget_ptr = budget.limited() ? &budget : nullptr;
  AttackOptions effective = options;
  effective.covering.lp.budget = budget_ptr;
  AttackResult result;
  try {
    Context ctx(problem, budget_ptr, options.trace);
    switch (algorithm) {
      case Algorithm::GreedyEdge: result = run_greedy_edge(ctx, effective); break;
      case Algorithm::GreedyEig: result = run_greedy_eig(ctx, effective); break;
      case Algorithm::GreedyPathCover: result = run_path_cover(ctx, effective, false); break;
      case Algorithm::LpPathCover: result = run_path_cover(ctx, effective, true); break;
    }
  } catch (const BudgetExhausted&) {
    // Structured outcome, not an error: the deterministic caps ran out.
    // Injected faults (FaultInjected) deliberately propagate past here so
    // the harness quarantine handles them.
    result = AttackResult{};
    result.status = AttackStatus::BudgetExhausted;
  }
  result.seconds = stopwatch.reported();
  return result;
}

}  // namespace mts::attack
