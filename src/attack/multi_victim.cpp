#include "attack/multi_victim.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "attack/oracle.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"
#include "lp/covering.hpp"

namespace mts::attack {

MultiVictimResult run_multi_victim_attack(const MultiVictimProblem& problem,
                                          const AttackOptions& options) {
  require(problem.graph != nullptr, "multi_victim: null graph");
  require(problem.weights.size() == problem.graph->num_edges(),
          "multi_victim: weights size mismatch");
  require(problem.costs.size() == problem.graph->num_edges(),
          "multi_victim: costs size mismatch");
  require(!problem.victims.empty(), "multi_victim: no victims");

  Stopwatch stopwatch;
  MultiVictimResult result;
  result.victim_forced.assign(problem.victims.size(), 0);

  // Protected set: the union of all chosen paths.
  std::vector<std::uint8_t> in_any_p_star(problem.graph->num_edges(), 0);
  for (const Victim& victim : problem.victims) {
    for (EdgeId e : victim.p_star.edges) in_any_p_star[e.value()] = 1;
  }
  auto removable = [&](EdgeId e) { return !in_any_p_star[e.value()]; };

  // One per-victim oracle over a per-victim sub-problem view.
  std::vector<ForcePathCutProblem> sub_problems(problem.victims.size());
  std::vector<std::unique_ptr<ExclusivityOracle>> oracles;
  oracles.reserve(problem.victims.size());
  for (std::size_t i = 0; i < problem.victims.size(); ++i) {
    auto& sub = sub_problems[i];
    sub.graph = problem.graph;
    sub.weights = problem.weights;
    sub.costs = problem.costs;
    sub.source = problem.victims[i].source;
    sub.target = problem.victims[i].target;
    sub.p_star = problem.victims[i].p_star;
    oracles.push_back(std::make_unique<ExclusivityOracle>(sub));
  }

  // Constraint paths (union over victims), seeded from each victim's
  // known shorter paths.
  std::vector<Path> constraints;
  std::unordered_set<std::uint64_t> signatures;
  for (std::size_t i = 0; i < problem.victims.size(); ++i) {
    const double len_star = oracles[i]->p_star_length();
    const double eps = oracles[i]->tie_epsilon();
    for (const Path& p : problem.victims[i].seed_paths) {
      if (p.edges == problem.victims[i].p_star.edges) continue;
      if (path_length(p.edges, problem.weights) > len_star + eps) continue;
      if (signatures.insert(path_signature(p)).second) constraints.push_back(p);
    }
  }

  std::vector<EdgeId> forced;
  std::unordered_set<std::uint32_t> forced_set;
  EdgeFilter filter(problem.graph->num_edges());

  auto finish = [&](AttackStatus status, std::vector<EdgeId> removed,
                    std::size_t iterations) {
    std::sort(removed.begin(), removed.end());
    result.removed_edges = std::move(removed);
    result.total_cost = 0.0;
    for (EdgeId e : result.removed_edges) result.total_cost += problem.costs[e.value()];
    if (status == AttackStatus::Success && result.total_cost > problem.budget) {
      status = AttackStatus::BudgetExceeded;
    }
    result.status = status;
    result.iterations = iterations;
    result.seconds = stopwatch.reported();
    return result;
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Covering instance over removable edges of all constraint paths.
    std::unordered_map<std::uint32_t, std::size_t> var_of;
    std::vector<EdgeId> vars;
    CoveringProblem covering;
    for (const Path& path : constraints) {
      bool hit = false;
      for (EdgeId e : path.edges) {
        if (forced_set.contains(e.value())) {
          hit = true;
          break;
        }
      }
      if (hit) continue;
      std::vector<std::size_t> set;
      for (EdgeId e : path.edges) {
        if (!removable(e)) continue;
        const auto [it, inserted] = var_of.emplace(e.value(), vars.size());
        if (inserted) vars.push_back(e);
        set.push_back(it->second);
      }
      if (set.empty()) return finish(AttackStatus::Infeasible, std::move(forced), iter);
      covering.sets.push_back(std::move(set));
    }
    covering.costs.reserve(vars.size());
    for (EdgeId e : vars) covering.costs.push_back(problem.costs[e.value()]);

    std::vector<EdgeId> cut = forced;
    if (!covering.sets.empty()) {
      const CoveringSolution solution = solve_covering_greedy(covering);
      require(solution.feasible, "multi_victim: covering unexpectedly infeasible");
      for (std::size_t j : solution.chosen) cut.push_back(vars[j]);
    }

    filter.clear();
    for (EdgeId e : cut) filter.remove(e);
    double cut_cost = 0.0;
    for (EdgeId e : cut) cut_cost += problem.costs[e.value()];
    if (cut_cost > problem.budget) {
      return finish(AttackStatus::BudgetExceeded, std::move(cut), iter);
    }

    // Query every victim; gather all surviving violations.
    bool all_clear = true;
    for (std::size_t i = 0; i < problem.victims.size(); ++i) {
      const auto violating = oracles[i]->find_violating_path(filter);
      ++result.oracle_calls;
      if (!violating) {
        result.victim_forced[i] = 1;
        continue;
      }
      result.victim_forced[i] = 0;
      all_clear = false;
      if (signatures.insert(path_signature(*violating)).second) {
        constraints.push_back(*violating);
      } else {
        // Tolerance-boundary duplicate: permanently force its cheapest
        // removable edge (progress guarantee, as in single-victim).
        EdgeId cheapest = EdgeId::invalid();
        for (EdgeId e : violating->edges) {
          if (!removable(e) || forced_set.contains(e.value())) continue;
          if (!cheapest.valid() ||
              problem.costs[e.value()] < problem.costs[cheapest.value()]) {
            cheapest = e;
          }
        }
        if (!cheapest.valid()) {
          return finish(AttackStatus::Infeasible, filter.removed_edges(), iter);
        }
        forced.push_back(cheapest);
        forced_set.insert(cheapest.value());
      }
    }
    if (all_clear) return finish(AttackStatus::Success, std::move(cut), iter);
  }
  return finish(AttackStatus::IterationLimit, filter.removed_edges(), options.max_iterations);
}

}  // namespace mts::attack
