#include "attack/oracle.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/fault.hpp"
#include "graph/ch_assets.hpp"
#include "graph/dijkstra.hpp"
#include "graph/yen.hpp"
#include "obs/phase.hpp"

namespace mts::attack {

namespace {

struct OracleCounters {
  obs::CounterId calls;
  obs::CounterId violations;
  obs::CounterId ties;
  obs::CounterId exclusive;

  static const OracleCounters& get() {
    static const OracleCounters counters{
        obs::MetricsRegistry::instance().counter("oracle.calls"),
        obs::MetricsRegistry::instance().counter("oracle.violations"),
        obs::MetricsRegistry::instance().counter("oracle.tie_certifications"),
        obs::MetricsRegistry::instance().counter("oracle.exclusive"),
    };
    return counters;
  }
};

}  // namespace

ExclusivityOracle::ExclusivityOracle(const ForcePathCutProblem& problem, WorkBudget* budget,
                                     RequestTrace* trace)
    : problem_(problem), budget_(budget), trace_(trace) {
  require(problem.graph != nullptr, "oracle: null graph");
  require(is_simple_path(*problem.graph, problem.p_star, problem.source, problem.target),
          "oracle: p* is not a simple source->target path");
  require(!problem.p_star.empty(), "oracle: p* is empty");
  p_star_length_ = path_length(problem_.p_star.edges, problem_.weights);
  validate_weights(*problem.graph, problem_.weights, "oracle");
  if (problem.ch != nullptr) {
    // PHAST over the problem's CH: the same exact distances as the reverse
    // Dijkstra below, at two orders of magnitude fewer settles.  The
    // assets must belong to this problem's graph+weights (build contract,
    // graph/ch_assets.hpp); size mismatches are the detectable violations.
    require(problem.ch->ch.num_nodes() == problem.graph->num_nodes() &&
                problem.ch->cch.num_edges() == problem.graph->num_edges(),
            "oracle: ChAssets do not match the problem graph");
    problem.ch->ch.bounds_to_target(problem_.target, thread_ch_search_space(), reverse_tree_,
                                    trace_);
  } else {
    DijkstraOptions reverse_options;
    reverse_options.assume_valid_weights = true;
    reverse_options.budget = budget_;
    reverse_options.trace = trace_;
    reverse_dijkstra(reverse_tree_, *problem.graph, problem_.weights, problem_.target,
                     reverse_options);
  }
}

double ExclusivityOracle::tie_epsilon() const {
  return 1e-9 * (1.0 + std::abs(p_star_length_));
}

std::optional<Path> ExclusivityOracle::find_violating_path(const EdgeFilter& filter) const {
  ++calls_;
  if (trace_ != nullptr) ++trace_->oracle_calls;
  obs::ScopedPhase phase("oracle");
  obs::add(OracleCounters::get().calls);
  const auto& g = *problem_.graph;
  const double eps = tie_epsilon();

  // Nan corrupts the query's result below (caught by the consistency
  // require); Limit has no native emulation here and escalates to Throw.
  const fault::Action injected = MTS_FAULT_ACTION("oracle.solve");
  if (injected == fault::Action::Throw || injected == fault::Action::Limit) {
    fault::throw_injected("oracle.solve", injected);
  }

  // Goal-directed query: reverse_tree_'s unfiltered distances stay
  // admissible under any filter, and no violating path is ever longer than
  // p* itself, so p*'s length is an exact prune bound.  p*'s own nodes all
  // satisfy the bound, so the reachability require below is unaffected.
  DijkstraOptions options;
  options.target = problem_.target;
  options.filter = &filter;
  options.goal_bounds = &reverse_tree_;
  options.prune_bound = p_star_length_;
  options.assume_valid_weights = true;
  options.budget = budget_;
  options.trace = trace_;
  SearchSpace& ws = thread_search_space();
  dijkstra(ws, g, problem_.weights, problem_.source, options);
  auto sp = extract_path(g, ws, problem_.source, problem_.target);
  // p*'s own edges are never removed by the algorithms, so s→d stays
  // connected; a missing path means the caller removed part of p*.
  require(sp.has_value(), "oracle: source cannot reach target (p* was damaged)");
  if (injected == fault::Action::Nan) {
    // Models a poisoned weight vector reaching the solve: the consistency
    // require below turns it into a quarantinable PreconditionViolation.
    sp->length = std::numeric_limits<double>::quiet_NaN();
  }
  require(sp->length <= p_star_length_ + eps,
          "oracle: shortest path longer than p* (inconsistent weights)");

  if (sp->length < p_star_length_ - eps) {
    obs::add(OracleCounters::get().violations);
    return sp;  // strictly better path
  }

  // Tied region: the shortest path length equals len(p*).
  if (!(sp->edges == problem_.p_star.edges)) {
    obs::add(OracleCounters::get().violations);
    return sp;  // tied but different
  }

  // Dijkstra returned p* itself; certify no *other* path ties it.  The
  // certification's reverse bounds must hold under THIS filter, so the
  // base CH cannot serve them; the CCH re-customizes to the mask in
  // O(shortcuts) and its masked PHAST replaces the full reverse Dijkstra
  // the plain call would run.  The certified path is identical either way
  // (YenOptions::reverse_bounds).
  obs::add(OracleCounters::get().ties);
  const SearchSpace* certification_bounds = nullptr;
  if (problem_.ch != nullptr) {
    if (cch_ == nullptr) {
      cch_ = std::make_unique<CchMetric>(problem_.ch->cch, problem_.weights);
    }
    cch_->recustomize(&filter);
    cch_->bounds_to_target(problem_.target, cch_bounds_, trace_);
    certification_bounds = &cch_bounds_;
  }
  auto second = second_shortest_path(g, problem_.weights, problem_.source, problem_.target,
                                     problem_.p_star, &filter, budget_, trace_,
                                     certification_bounds);
  if (second && second->length <= p_star_length_ + eps) {
    obs::add(OracleCounters::get().violations);
    return second;
  }
  obs::add(OracleCounters::get().exclusive);
  return std::nullopt;
}

}  // namespace mts::attack
