#include "attack/area_isolation.hpp"

#include <limits>

#include "core/error.hpp"
#include "graph/maxflow.hpp"

namespace mts::attack {

AreaIsolationResult isolate_area(const DiGraph& g, std::span<const double> costs,
                                 std::span<const std::uint8_t> in_area,
                                 IsolationDirection direction,
                                 std::span<const std::uint8_t> origins) {
  require(g.finalized(), "isolate_area: graph not finalized");
  require(costs.size() == g.num_edges(), "isolate_area: costs size mismatch");
  require(in_area.size() == g.num_nodes(), "isolate_area: area mask size mismatch");
  require(origins.empty() || origins.size() == g.num_nodes(),
          "isolate_area: origins mask size mismatch");

  AreaIsolationResult result;
  for (auto flag : in_area) {
    if (flag) ++result.area_nodes;
  }
  result.outside_nodes = g.num_nodes() - result.area_nodes;
  if (result.area_nodes == 0 || result.outside_nodes == 0) return result;

  // Augmented graph: original edges keep their costs; a super source feeds
  // every outside node and every area node drains to a super sink with
  // uncuttable (infinite) arcs.  For Outbound the roles are swapped.
  DiGraph aug;
  for (NodeId n : g.nodes()) aug.add_node(g.x(n), g.y(n));
  const NodeId super_source = aug.add_node();
  const NodeId super_sink = aug.add_node();

  std::vector<double> capacities;
  capacities.reserve(g.num_edges() + g.num_nodes());
  double cost_sum = 0.0;
  for (EdgeId e : g.edges()) {
    require(costs[e.value()] >= 0.0, "isolate_area: negative cost");
    aug.add_edge(g.edge_from(e), g.edge_to(e));
    capacities.push_back(costs[e.value()]);
    cost_sum += costs[e.value()];
  }
  const double uncuttable = cost_sum + 1.0;
  for (NodeId n : g.nodes()) {
    const bool area = in_area[n.value()] != 0;
    // Outside endpoints feed the super source (Inbound) / drain to the
    // super sink (Outbound); when an origin mask is given only the listed
    // outside nodes participate.
    const bool outside_active = !area && (origins.empty() || origins[n.value()] != 0);
    const bool feeds = direction == IsolationDirection::Inbound ? outside_active : area;
    const bool drains = direction == IsolationDirection::Inbound ? area : outside_active;
    if (feeds) {
      aug.add_edge(super_source, n);
      capacities.push_back(uncuttable);
    }
    if (drains) {
      aug.add_edge(n, super_sink);
      capacities.push_back(uncuttable);
    }
  }
  aug.finalize();

  const auto flow = max_flow(aug, capacities, super_source, super_sink);
  if (flow.flow >= uncuttable) return result;  // no finite cut (shouldn't happen)

  result.feasible = true;
  result.total_cost = flow.flow;
  for (EdgeId cut : flow.cut_edges) {
    // Augmented edge ids [0, |E|) coincide with original edge ids.
    if (cut.value() < g.num_edges()) result.cut_edges.emplace_back(cut.value());
  }
  return result;
}

std::vector<std::uint8_t> nodes_within_radius(const DiGraph& g, NodeId center, double radius_m) {
  require(center.value() < g.num_nodes(), "nodes_within_radius: center out of range");
  std::vector<std::uint8_t> mask(g.num_nodes(), 0);
  for (NodeId n : g.nodes()) {
    if (g.node_distance(center, n) <= radius_m) mask[n.value()] = 1;
  }
  return mask;
}

}  // namespace mts::attack
