// Coordinated multi-victim route forcing (paper §II-A: "coerce multiple
// drivers to take a chosen suboptimal alternative route, make all drivers
// traveling between common locations take much slower routes").
//
// One shared set of road closures must simultaneously make every victim's
// chosen path p*_i the exclusive shortest path for its (s_i, d_i) pair.
// Closures may never touch ANY victim's chosen path, so the instances
// genuinely interact: a cut that helps victim A can be forbidden because
// it lies on victim B's route.  Solved by the GreedyPathCover machinery
// over the union of all victims' constraint paths.
#pragma once

#include "attack/algorithms.hpp"

namespace mts::attack {

struct Victim {
  NodeId source;
  NodeId target;
  Path p_star;
  std::vector<Path> seed_paths;  // known shorter paths for this pair
};

struct MultiVictimProblem {
  const DiGraph* graph = nullptr;
  std::span<const double> weights;
  std::span<const double> costs;
  std::vector<Victim> victims;
  double budget = std::numeric_limits<double>::infinity();
};

struct MultiVictimResult {
  AttackStatus status = AttackStatus::IterationLimit;
  std::vector<EdgeId> removed_edges;
  double total_cost = 0.0;
  std::size_t oracle_calls = 0;
  std::size_t iterations = 0;
  double seconds = 0.0;
  /// Victims whose p* is certified exclusively shortest under the cut
  /// (all of them on Success).
  std::vector<std::uint8_t> victim_forced;
};

/// Finds one closure set forcing every victim at once.  Infeasible when
/// some victim has a faster-or-tied path consisting entirely of protected
/// edges (other victims' routes).
MultiVictimResult run_multi_victim_attack(const MultiVictimProblem& problem,
                                          const AttackOptions& options = {});

}  // namespace mts::attack
