// The four Force Path Cut algorithms evaluated in the paper (§III-A):
//
//   LP-PathCover     — LP relaxation of weighted set cover + constraint
//                      generation + rounding (optimization-based)
//   GreedyPathCover  — greedy weighted set cover + constraint generation
//   GreedyEdge       — cut the minimum-weight edge (not in p*) on the
//                      current shortest path, repeat
//   GreedyEig        — cut the edge (not in p*) on the current shortest
//                      path with the highest eigen-score-to-cost ratio
//
// All operate on directed graphs and arbitrary weight/cost models, as the
// paper's adaptation of PATHATTACK requires.
#pragma once

#include <cstdint>

#include "attack/problem.hpp"
#include "core/budget.hpp"
#include "core/request_trace.hpp"
#include "lp/covering.hpp"

namespace mts::attack {

enum class Algorithm { LpPathCover, GreedyPathCover, GreedyEdge, GreedyEig };

const char* to_string(Algorithm algorithm);

inline constexpr Algorithm kAllAlgorithms[] = {Algorithm::LpPathCover,
                                               Algorithm::GreedyPathCover, Algorithm::GreedyEdge,
                                               Algorithm::GreedyEig};

struct AttackOptions {
  /// Cap on oracle-driven iterations (each discovers one new constraint
  /// path or removes one edge, so real instances finish far earlier).
  std::size_t max_iterations = 5000;
  /// Seed for LP randomized rounding.
  std::uint64_t rng_seed = 1;
  CoveringOptions covering;
  /// Deterministic work caps for the whole attack (all-zero = unlimited).
  /// run_attack() copies this, threads the copy through oracle/yen/simplex,
  /// and converts an exhausted budget into AttackStatus::BudgetExhausted.
  WorkBudget work_budget;
  /// Per-request work accounting threaded alongside the budget (nullptr =
  /// none; core/request_trace.hpp).  Purely observational.
  RequestTrace* trace = nullptr;
};

/// Runs `algorithm` on `problem`.  The returned removal set never touches
/// edges of p*.  `result.seconds` measures the attack computation only.
AttackResult run_attack(Algorithm algorithm, const ForcePathCutProblem& problem,
                        const AttackOptions& options = {});

}  // namespace mts::attack
