#include "attack/exact.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "attack/oracle.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"

namespace mts::attack {

ExactAttackResult run_exact_attack(const ForcePathCutProblem& problem,
                                   const ExactAttackOptions& options) {
  require(problem.graph != nullptr, "exact attack: null graph");
  require(problem.weights.size() == problem.graph->num_edges(),
          "exact attack: weights size mismatch");
  require(problem.costs.size() == problem.graph->num_edges(),
          "exact attack: costs size mismatch");

  Stopwatch stopwatch;
  ExactAttackResult result;
  ExclusivityOracle oracle(problem);

  std::vector<std::uint8_t> unremovable(problem.graph->num_edges(), 0);
  for (EdgeId e : problem.p_star.edges) unremovable[e.value()] = 1;
  if (!problem.protected_edges.empty()) {
    require(problem.protected_edges.size() == problem.graph->num_edges(),
            "exact attack: protected_edges size mismatch");
    for (EdgeId e : problem.graph->edges()) {
      if (problem.protected_edges[e.value()]) unremovable[e.value()] = 1;
    }
  }

  const double len_star = oracle.p_star_length();
  const double eps = oracle.tie_epsilon();
  std::vector<Path> constraints;
  std::unordered_set<std::uint64_t> signatures;
  for (const Path& p : problem.seed_paths) {
    if (p.edges == problem.p_star.edges) continue;
    if (path_length(p.edges, problem.weights) > len_star + eps) continue;
    if (signatures.insert(path_signature(p)).second) constraints.push_back(p);
  }

  EdgeFilter filter(problem.graph->num_edges());
  bool all_proven = true;

  auto finish = [&](AttackStatus status, std::vector<EdgeId> removed, std::size_t iterations) {
    std::sort(removed.begin(), removed.end());
    result.removed_edges = std::move(removed);
    result.total_cost = 0.0;
    for (EdgeId e : result.removed_edges) result.total_cost += problem.costs[e.value()];
    if (status == AttackStatus::Success && result.total_cost > problem.budget) {
      status = AttackStatus::BudgetExceeded;
    }
    result.status = status;
    result.proven_optimal = status == AttackStatus::Success && all_proven;
    result.oracle_calls = oracle.calls();
    result.iterations = iterations;
    result.seconds = stopwatch.reported();
    return result;
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::unordered_map<std::uint32_t, std::size_t> var_of;
    std::vector<EdgeId> vars;
    CoveringProblem covering;
    for (const Path& path : constraints) {
      std::vector<std::size_t> set;
      for (EdgeId e : path.edges) {
        if (unremovable[e.value()]) continue;
        const auto [it, inserted] = var_of.emplace(e.value(), vars.size());
        if (inserted) vars.push_back(e);
        set.push_back(it->second);
      }
      if (set.empty()) return finish(AttackStatus::Infeasible, {}, iter);
      covering.sets.push_back(std::move(set));
    }
    covering.costs.reserve(vars.size());
    for (EdgeId e : vars) covering.costs.push_back(problem.costs[e.value()]);

    std::vector<EdgeId> cut;
    if (!covering.sets.empty()) {
      const ExactCoverSolution cover = solve_covering_exact(covering, options.cover);
      require(cover.feasible, "exact attack: cover unexpectedly infeasible");
      all_proven &= cover.proven_optimal;
      for (std::size_t j : cover.chosen) cut.push_back(vars[j]);
    }

    filter.clear();
    for (EdgeId e : cut) filter.remove(e);
    double cut_cost = 0.0;
    for (EdgeId e : cut) cut_cost += problem.costs[e.value()];
    if (cut_cost > problem.budget) {
      return finish(AttackStatus::BudgetExceeded, std::move(cut), iter);
    }

    const auto violating = oracle.find_violating_path(filter);
    if (!violating) return finish(AttackStatus::Success, std::move(cut), iter);
    if (!signatures.insert(path_signature(*violating)).second) {
      // Duplicate within tolerance: optimality certification breaks; fall
      // back to declaring the run unproven and force progress.
      all_proven = false;
      EdgeId cheapest = EdgeId::invalid();
      for (EdgeId e : violating->edges) {
        if (unremovable[e.value()]) continue;
        if (!cheapest.valid() ||
            problem.costs[e.value()] < problem.costs[cheapest.value()]) {
          cheapest = e;
        }
      }
      if (!cheapest.valid()) return finish(AttackStatus::Infeasible, std::move(cut), iter);
      unremovable[cheapest.value()] = 0;  // no-op, keeps structure clear
      // Add it as a singleton constraint so every future cover includes it.
      Path singleton;
      singleton.edges = {cheapest};
      constraints.push_back(std::move(singleton));
    } else {
      constraints.push_back(*violating);
    }
  }
  return finish(AttackStatus::IterationLimit, filter.removed_edges(), options.max_iterations);
}

}  // namespace mts::attack
