#include "attack/interdiction.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "graph/betweenness.hpp"
#include "graph/dijkstra.hpp"

namespace mts::attack {

namespace {

/// s->d distance under the filter, counting the query.
double query_distance(const DiGraph& g, std::span<const double> weights, NodeId s, NodeId d,
                      const EdgeFilter& filter, std::size_t& queries) {
  ++queries;
  return shortest_distance(g, weights, s, d, &filter);
}

/// Best edge on the current shortest path by exact marginal gain: tries
/// removing each candidate and measures the distance increase per cost.
EdgeId pick_greedy(const DiGraph& g, std::span<const double> weights,
                   std::span<const double> costs, NodeId s, NodeId d, EdgeFilter& filter,
                   const Path& current, bool keep_connected, std::size_t& queries) {
  EdgeId best = EdgeId::invalid();
  double best_ratio = 0.0;
  for (EdgeId e : current.edges) {
    filter.remove(e);
    const double dist = query_distance(g, weights, s, d, filter, queries);
    filter.restore(e);
    if (dist == kInfiniteDistance) {
      if (keep_connected) continue;
      return e;  // disconnection allowed: maximal damage
    }
    const double gain = dist - current.length;
    const double ratio = gain / costs[e.value()];
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = e;
    }
  }
  return best;
}

/// Betweenness-guided pick: highest precomputed betweenness-to-cost ratio
/// among the current path's edges (no lookahead queries).
EdgeId pick_betweenness(const DiGraph& g, std::span<const double> weights,
                        std::span<const double> costs, NodeId s, NodeId d, EdgeFilter& filter,
                        const Path& current, bool keep_connected,
                        const std::vector<double>& betweenness, std::size_t& queries) {
  std::vector<EdgeId> order(current.edges);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return betweenness[a.value()] / costs[a.value()] >
           betweenness[b.value()] / costs[b.value()];
  });
  for (EdgeId e : order) {
    if (!keep_connected) return e;
    filter.remove(e);
    const bool connected =
        query_distance(g, weights, s, d, filter, queries) < kInfiniteDistance;
    filter.restore(e);
    if (connected) return e;
  }
  return EdgeId::invalid();
}

}  // namespace

InterdictionResult interdict_route(const DiGraph& g, std::span<const double> weights,
                                   std::span<const double> costs, NodeId source, NodeId target,
                                   double budget, const InterdictionOptions& options) {
  require(g.finalized(), "interdict_route: graph not finalized");
  require(weights.size() == g.num_edges(), "interdict_route: weights size mismatch");
  require(costs.size() == g.num_edges(), "interdict_route: costs size mismatch");
  require(budget >= 0.0, "interdict_route: negative budget");

  InterdictionResult result;
  EdgeFilter filter(g.num_edges());

  auto initial = shortest_path(g, weights, source, target);
  require(initial.has_value(), "interdict_route: target unreachable from source");
  ++result.distance_queries;
  result.baseline_distance = initial->length;
  result.final_distance = initial->length;

  std::vector<double> betweenness;
  if (options.strategy == InterdictionStrategy::Betweenness) {
    BetweennessOptions bopt;
    bopt.pivots = std::min<std::size_t>(64, g.num_nodes());
    betweenness = edge_betweenness(g, weights, bopt);
  }

  Path current = std::move(*initial);
  while (result.removed_edges.size() < options.max_removals) {
    EdgeId choice =
        options.strategy == InterdictionStrategy::Greedy
            ? pick_greedy(g, weights, costs, source, target, filter, current,
                          options.keep_connected, result.distance_queries)
            : pick_betweenness(g, weights, costs, source, target, filter, current,
                               options.keep_connected, betweenness,
                               result.distance_queries);
    if (!choice.valid()) break;
    if (result.total_cost + costs[choice.value()] > budget) break;

    filter.remove(choice);
    result.removed_edges.push_back(choice);
    result.total_cost += costs[choice.value()];

    auto next = shortest_path(g, weights, source, target, &filter);
    ++result.distance_queries;
    if (!next) {  // disconnected (only reachable with keep_connected=false)
      result.final_distance = kInfiniteDistance;
      break;
    }
    current = std::move(*next);
    result.final_distance = current.length;
  }
  return result;
}

}  // namespace mts::attack
