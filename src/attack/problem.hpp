// The Force Path Cut problem on directed graphs (paper §II-B).
//
// Given graph G, weights w, removal costs c, endpoints (s, d), a chosen
// alternative path p*, and a budget b, find E' ⊆ E with Σc(e) ≤ b such
// that p* is the *exclusive* shortest s→d path in G \ E'.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace mts {
struct ChAssets;  // graph/ch_assets.hpp
}

namespace mts::attack {

using mts::DiGraph;
using mts::EdgeId;
using mts::NodeId;
using mts::Path;

/// Thread-sharing contract: a const ForcePathCutProblem may be shared by
/// concurrent run_attack / verify_attack calls.  Every consumer takes it by
/// const reference and only reads; the referenced graph and the
/// weights/costs spans must stay immutable for the problem's lifetime.
/// (The parallel experiment harness relies on this — see exp/table_runner.)
struct ForcePathCutProblem {
  const DiGraph* graph = nullptr;
  std::span<const double> weights;  // victim's path metric
  std::span<const double> costs;    // attacker's removal costs
  NodeId source;
  NodeId target;
  Path p_star;
  double budget = std::numeric_limits<double>::infinity();
  /// Already-known paths shorter than p* (e.g. ranks 1..k-1 from the Yen
  /// run that selected p* as the k-th path).  PathCover algorithms use
  /// them as free initial set-cover constraints.
  std::vector<Path> seed_paths;
  /// Optional per-edge protection mask (size num_edges or empty): edges
  /// marked 1 can never be removed — e.g. roads hardened by a defender
  /// (see attack/defense.hpp).  If every cut must include a protected
  /// edge, the attack reports Infeasible.
  std::vector<std::uint8_t> protected_edges;
  /// Optional CH/CCH speedup bundle (nullptr = serve everything with
  /// Dijkstra/Yen).  MUST have been built from this problem's graph and
  /// weights — the oracle and verifier trust it for exact distances.
  /// Shared read-only like the graph (per-worker mutable state lives in
  /// the oracle/verifier), so the same pointer is safe across the parallel
  /// harness's workers.
  const ChAssets* ch = nullptr;
};

enum class AttackStatus {
  Success,         // p* certified exclusively shortest after removals
  BudgetExceeded,  // a forcing cut exists but costs more than the budget
  Infeasible,      // p* cannot be forced (shares a cheaper tied twin)
  IterationLimit,  // gave up; partial removals reported
  BudgetExhausted, // deterministic work budget ran out (core/budget.hpp)
};

const char* to_string(AttackStatus status);

struct AttackResult {
  AttackStatus status = AttackStatus::IterationLimit;
  std::vector<EdgeId> removed_edges;
  double total_cost = 0.0;
  std::size_t oracle_calls = 0;
  std::size_t iterations = 0;
  double lp_lower_bound = 0.0;  // LP-PathCover only: certified lower bound
  double seconds = 0.0;
  /// True when the covering LP failed and the greedy cover was substituted
  /// at any iteration (LP-PathCover only); the result is still a valid cut
  /// but lp_lower_bound may be weaker.  See DESIGN.md §10.
  bool fallback_used = false;
  /// Why the fallback engaged, when it did ("lp iteration-limit ...").
  std::string fallback_reason;

  [[nodiscard]] std::size_t num_removed() const { return removed_edges.size(); }
};

}  // namespace mts::attack
