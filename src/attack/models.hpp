// The paper's attacker objective (edge weight) and capability (edge
// removal cost) models (§II-B).
#pragma once

#include <string>
#include <vector>

#include "osm/road_network.hpp"

namespace mts::attack {

/// What the victim minimizes — the attacker forces p* under this metric.
enum class WeightType {
  Length,  // road segment length, meters
  Time,    // free-flow travel time, seconds (length / speed limit)
};

/// What blocking a segment costs the attacker.
enum class CostType {
  Uniform,  // 1 per segment
  Lanes,    // number of lanes
  Width,    // road width / average American car width
};

const char* to_string(WeightType type);
const char* to_string(CostType type);

inline constexpr WeightType kAllWeightTypes[] = {WeightType::Length, WeightType::Time};
inline constexpr CostType kAllCostTypes[] = {CostType::Uniform, CostType::Lanes,
                                             CostType::Width};

/// Per-edge weights under `type` (Eq. 1 for TIME).
std::vector<double> make_weights(const osm::RoadNetwork& network, WeightType type);

/// Per-edge removal costs under `type` (Eq. 2 for WIDTH).
std::vector<double> make_costs(const osm::RoadNetwork& network, CostType type);

}  // namespace mts::attack
