#include "attack/defense.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace mts::attack {

namespace {

/// Attack cost under the given protection mask; +inf when the attack can
/// no longer succeed (Infeasible or budget-bound).
double evaluate(const ForcePathCutProblem& base, const std::vector<std::uint8_t>& protection,
                const DefenseOptions& options, AttackResult* out = nullptr) {
  ForcePathCutProblem problem = base;
  problem.protected_edges = protection;
  const AttackResult result = run_attack(options.attacker, problem, options.attack_options);
  if (out != nullptr) *out = result;
  if (result.status != AttackStatus::Success) {
    return std::numeric_limits<double>::infinity();
  }
  return result.total_cost;
}

}  // namespace

DefenseResult harden_against_force_path_cut(const ForcePathCutProblem& problem,
                                            std::size_t max_protected,
                                            const DefenseOptions& options) {
  require(problem.graph != nullptr, "harden: null graph");
  require(problem.protected_edges.empty(),
          "harden: problem already carries a protection mask");

  DefenseResult result;
  std::vector<std::uint8_t> protection(problem.graph->num_edges(), 0);

  AttackResult attack;
  double current_cost = evaluate(problem, protection, options, &attack);
  result.initial_attack_cost = current_cost;
  result.final_attack_cost = current_cost;
  if (!std::isfinite(current_cost)) {
    result.attack_blocked = true;  // nothing to defend: attack already fails
    return result;
  }

  for (std::size_t round = 0; round < max_protected; ++round) {
    // Candidates: the edges the attacker actually uses right now.
    // Protecting anything else cannot change this plan's cost.  Protection
    // only restricts the attacker, so every trial costs at least
    // `current_cost`; ties are still worth taking — hardening one arm
    // edge-by-edge eventually blocks it even though each single step
    // looks cost-neutral.
    EdgeId best_edge = EdgeId::invalid();
    double best_cost = -1.0;
    AttackResult best_attack;
    for (EdgeId candidate : attack.removed_edges) {
      protection[candidate.value()] = 1;
      AttackResult trial_attack;
      const double trial = evaluate(problem, protection, options, &trial_attack);
      protection[candidate.value()] = 0;
      if (trial > best_cost) {
        best_cost = trial;
        best_edge = candidate;
        best_attack = trial_attack;
      }
    }
    if (!best_edge.valid()) break;  // attacker removes nothing: cannot defend more

    protection[best_edge.value()] = 1;
    result.protected_edges.push_back(best_edge);
    result.rounds.push_back({best_edge, current_cost, best_cost});
    current_cost = best_cost;
    result.final_attack_cost = best_cost;
    if (!std::isfinite(best_cost)) {
      result.attack_blocked = true;
      break;
    }
    attack = best_attack;
  }
  return result;
}

}  // namespace mts::attack
