// Independent attack verification.
//
// Every experiment double-checks algorithm output against the Force Path
// Cut success condition using primitives the algorithms themselves do not
// share (shortest-path counting over the full SSSP DAG).
#pragma once

#include <string>

#include "attack/problem.hpp"

namespace mts::attack {

struct VerifyReport {
  bool ok = false;
  std::string reason;  // empty when ok
};

/// Verifies that removing `removed_edges` makes p* the exclusive shortest
/// path: no removed edge lies on p*, p* stays intact, the s→d distance
/// equals len(p*), and exactly one shortest path (p* itself) attains it.
VerifyReport verify_attack(const ForcePathCutProblem& problem,
                           const std::vector<EdgeId>& removed_edges);

}  // namespace mts::attack
