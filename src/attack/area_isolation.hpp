// Area-isolation attack (paper §II-A, partition objective).
//
// "An attacker can try to disconnect (partition) some target area of
// interest" — with removal costs as capacities, the cheapest set of road
// closures making a target area unreachable from the rest of the city is
// a minimum cut, computed here via Dinic on a super-source/super-sink
// augmentation.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace mts::attack {

using mts::DiGraph;
using mts::EdgeId;
using mts::NodeId;

enum class IsolationDirection {
  Inbound,   // nothing outside can reach the area
  Outbound,  // the area cannot reach the outside
};

struct AreaIsolationResult {
  bool feasible = false;
  double total_cost = 0.0;
  std::vector<EdgeId> cut_edges;  // road segments to block
  std::size_t area_nodes = 0;
  std::size_t outside_nodes = 0;
};

/// Minimum-cost closure set isolating the nodes with `in_area[n] == 1`.
/// `costs` are per-edge removal costs (> 0 for cuttable roads).
/// `origins`, when non-empty, restricts which outside nodes traffic can
/// originate from (Inbound) or must be kept unreachable (Outbound) — e.g.
/// highway entrances; by default every outside node counts, so the cut
/// blocks literally all outside traffic.  Origin nodes inside the area are
/// ignored.
AreaIsolationResult isolate_area(const DiGraph& g, std::span<const double> costs,
                                 std::span<const std::uint8_t> in_area,
                                 IsolationDirection direction = IsolationDirection::Inbound,
                                 std::span<const std::uint8_t> origins = {});

/// Convenience: marks all nodes within Euclidean `radius_m` of `center`.
std::vector<std::uint8_t> nodes_within_radius(const DiGraph& g, NodeId center, double radius_m);

}  // namespace mts::attack
