// Defensive hardening analysis (the flip side of the paper's attack).
//
// A city operator who can protect (make unblockable) a limited set of road
// segments wants to maximize the attacker's cost of forcing any alternative
// route.  We provide a greedy defender that repeatedly protects the
// segment most used by the attacker's current cheapest plan, re-running
// the attack between rounds — a standard Stackelberg-style heuristic that
// quantifies how quickly hardening drives attack cost up.
#pragma once

#include <span>
#include <vector>

#include "attack/algorithms.hpp"

namespace mts::attack {

struct DefenseOptions {
  /// Attack used to evaluate the defender's moves (the paper's best
  /// quality/speed trade-off by default).
  Algorithm attacker = Algorithm::GreedyPathCover;
  AttackOptions attack_options;
};

struct DefenseRound {
  EdgeId protected_edge;
  double attack_cost_before = 0.0;
  double attack_cost_after = 0.0;
};

struct DefenseResult {
  std::vector<EdgeId> protected_edges;
  std::vector<DefenseRound> rounds;
  double initial_attack_cost = 0.0;
  double final_attack_cost = 0.0;  // +inf if the attack became infeasible
  bool attack_blocked = false;     // attacker could no longer force p*
};

/// Greedily protects up to `max_protected` edges against the Force Path
/// Cut instance in `problem`.  Protected edges get infinite removal cost
/// (the problem's cost vector is copied and modified internally).
DefenseResult harden_against_force_path_cut(const ForcePathCutProblem& problem,
                                            std::size_t max_protected,
                                            const DefenseOptions& options = {});

}  // namespace mts::attack
