// Certified-optimal Force Path Cut.
//
// Constraint generation with an *exact* (branch-and-bound) set cover per
// round.  Standard argument for global optimality: the final cover is
// optimal for the discovered constraint subset, every feasible attack
// must also cover that subset, and the returned cut is feasible for the
// full problem (oracle clean) — so its cost equals the global optimum.
// Used to quantify how close the paper's four approximations get
// (PATHATTACK reports its LP variant optimal in > 98% of instances).
#pragma once

#include "attack/problem.hpp"
#include "lp/covering.hpp"

namespace mts::attack {

struct ExactAttackOptions {
  std::size_t max_iterations = 5000;
  ExactCoverOptions cover;
};

struct ExactAttackResult {
  AttackStatus status = AttackStatus::IterationLimit;
  std::vector<EdgeId> removed_edges;
  double total_cost = 0.0;
  /// True when every branch-and-bound solve finished within its node cap,
  /// making `total_cost` a certified global optimum.
  bool proven_optimal = false;
  std::size_t oracle_calls = 0;
  std::size_t iterations = 0;
  double seconds = 0.0;
};

/// Solves `problem` to certified optimality (budget and protected-edge
/// semantics as in run_attack).
ExactAttackResult run_exact_attack(const ForcePathCutProblem& problem,
                                   const ExactAttackOptions& options = {});

}  // namespace mts::attack
