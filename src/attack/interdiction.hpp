// Shortest-path interdiction: "make all drivers traveling between common
// locations take much slower routes" (paper §II-A / Conclusion).
//
// Unlike Force Path Cut (which targets one chosen route), the interdictor
// simply maximizes the victim's optimal travel time between s and d under
// a removal budget.  Exact interdiction is NP-hard; we provide the
// standard greedy (remove the edge whose removal raises the s-d distance
// most per unit cost, recompute, repeat) plus a betweenness-guided
// variant for comparison in the ablation benches.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"

namespace mts::attack {

using mts::DiGraph;
using mts::EdgeFilter;
using mts::EdgeId;
using mts::NodeId;

enum class InterdictionStrategy {
  Greedy,       // exact marginal-gain greedy (|path| distance recomputations/step)
  Betweenness,  // precomputed edge-betweenness-to-cost ranking, restricted
                // to the current shortest path (cheaper, weaker)
};

struct InterdictionOptions {
  InterdictionStrategy strategy = InterdictionStrategy::Greedy;
  /// Stop after this many removals even if budget remains.
  std::size_t max_removals = 64;
  /// Never disconnect s from d (a disconnection is a different attack —
  /// use area_isolation).  When a removal would disconnect, it is skipped.
  bool keep_connected = true;
};

struct InterdictionResult {
  std::vector<EdgeId> removed_edges;
  double total_cost = 0.0;
  double baseline_distance = 0.0;  // s-d distance before any removal
  double final_distance = 0.0;     // after removals
  std::size_t distance_queries = 0;

  [[nodiscard]] double delay_factor() const {
    return baseline_distance > 0.0 ? final_distance / baseline_distance : 1.0;
  }
};

/// Maximizes the s->d shortest-path distance subject to Σ cost <= budget.
/// Throws PreconditionViolation if d is unreachable from s to begin with.
InterdictionResult interdict_route(const DiGraph& g, std::span<const double> weights,
                                   std::span<const double> costs, NodeId source, NodeId target,
                                   double budget,
                                   const InterdictionOptions& options = {});

}  // namespace mts::attack
