#include "attack/models.hpp"

#include "core/units.hpp"

namespace mts::attack {

const char* to_string(WeightType type) {
  switch (type) {
    case WeightType::Length: return "LENGTH";
    case WeightType::Time: return "TIME";
  }
  return "?";
}

const char* to_string(CostType type) {
  switch (type) {
    case CostType::Uniform: return "UNIFORM";
    case CostType::Lanes: return "LANES";
    case CostType::Width: return "WIDTH";
  }
  return "?";
}

std::vector<double> make_weights(const osm::RoadNetwork& network, WeightType type) {
  return type == WeightType::Length ? network.edge_lengths() : network.edge_times();
}

std::vector<double> make_costs(const osm::RoadNetwork& network, CostType type) {
  std::vector<double> costs;
  costs.reserve(network.segments().size());
  for (const auto& seg : network.segments()) {
    switch (type) {
      case CostType::Uniform:
        costs.push_back(1.0);
        break;
      case CostType::Lanes:
        costs.push_back(static_cast<double>(seg.lanes));
        break;
      case CostType::Width:
        costs.push_back(seg.width_m / kAverageCarWidthMeters);
        break;
    }
  }
  return costs;
}

}  // namespace mts::attack
