// RoadNetwork: the routable city model built from OSM data.
//
// Wraps a DiGraph with per-edge road attributes (length, speed limit,
// lanes, width, highway class), points of interest (hospitals), and the
// projection used to embed the city in meters.  Matches the paper's §III-A
// pipeline: ways become directed edge pairs, off-road POIs are snapped to
// the closest point of the closest road segment by inserting an artificial
// node, joined by an artificial connector segment.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.hpp"
#include "osm/model.hpp"
#include "osm/projection.hpp"
#include "osm/tags.hpp"

namespace mts::osm {

using mts::DiGraph;
using mts::EdgeId;
using mts::NodeId;

/// What a graph node represents.
enum class NodeKind : std::uint8_t {
  Intersection,  // real road node from OSM
  SplitPoint,    // artificial node inserted while snapping a POI
  Poi,           // the point of interest itself
};

/// Attributes of one directed road segment (graph edge).
struct RoadSegment {
  double length_m = 0.0;
  double speed_mps = 1.0;
  double width_m = 3.0;     // width of this direction of travel
  int lanes = 1;            // lanes in this direction of travel
  HighwayClass highway = HighwayClass::Unclassified;
  bool artificial = false;  // POI connector (paper: marked in the geodataframe)
  OsmWayId way = OsmWayId::invalid();
  std::int32_t name_index = -1;

  /// Free-flow traversal time in seconds (the paper's TIME weight).
  [[nodiscard]] double travel_time_s() const { return length_m / speed_mps; }
};

/// A point of interest (destination candidate), e.g. a hospital.
struct Poi {
  std::string name;
  std::string amenity;
  double lat = 0.0;
  double lon = 0.0;
  XY xy;
  NodeId node = NodeId::invalid();         // graph node of the POI itself
  NodeId access_node = NodeId::invalid();  // on-road node it connects through
};

struct BuildOptions {
  /// Projection center; defaults to the mean node coordinate.
  std::optional<LatLon> center;
  /// Restrict the road graph to its largest strongly connected component
  /// (as OSMnx does) so any two kept intersections are mutually routable.
  bool keep_largest_scc = true;
  /// Snap POI nodes to the road network (off by default only in tests).
  bool snap_pois = true;
  /// Snap position tolerance: within this fraction of either segment end
  /// the POI attaches to the existing endpoint instead of splitting.
  double endpoint_snap_fraction = 0.05;
};

class RoadNetwork {
 public:
  /// Builds a routable network from OSM data.  Throws InvalidInput on
  /// dangling way references or a road-less input.
  static RoadNetwork build(const OsmData& data, const BuildOptions& options = {});

  [[nodiscard]] const DiGraph& graph() const { return graph_; }
  [[nodiscard]] const LocalProjection& projection() const { return projection_; }

  [[nodiscard]] const RoadSegment& segment(EdgeId e) const { return segments_[e.value()]; }
  [[nodiscard]] const std::vector<RoadSegment>& segments() const { return segments_; }
  /// Street name of a segment ("" when unnamed).
  [[nodiscard]] const std::string& segment_name(EdgeId e) const;

  [[nodiscard]] NodeKind node_kind(NodeId n) const { return node_kinds_[n.value()]; }
  [[nodiscard]] OsmNodeId node_osm_id(NodeId n) const { return node_osm_ids_[n.value()]; }

  [[nodiscard]] const std::vector<Poi>& pois() const { return pois_; }
  /// First POI whose name matches, or nullptr.
  [[nodiscard]] const Poi* find_poi(std::string_view name) const;

  /// All real intersections (excludes POI and split-point nodes) — the
  /// sampling universe for attack sources.
  [[nodiscard]] std::vector<NodeId> intersection_nodes() const;

  /// Per-edge length in meters (the paper's LENGTH weight).
  [[nodiscard]] std::vector<double> edge_lengths() const;
  /// Per-edge free-flow travel time in seconds (the paper's TIME weight).
  [[nodiscard]] std::vector<double> edge_times() const;

 private:
  RoadNetwork() = default;

  DiGraph graph_;
  LocalProjection projection_;
  std::vector<RoadSegment> segments_;     // parallel to graph edges
  std::vector<NodeKind> node_kinds_;      // parallel to graph nodes
  std::vector<OsmNodeId> node_osm_ids_;   // parallel to graph nodes
  std::vector<Poi> pois_;
  std::vector<std::string> names_;
};

}  // namespace mts::osm
