#include "osm/projection.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/units.hpp"

namespace mts::osm {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}

LocalProjection::LocalProjection(double center_lat, double center_lon)
    : center_lat_(center_lat),
      center_lon_(center_lon),
      meters_per_deg_lat_(kEarthRadiusMeters * kDegToRad),
      meters_per_deg_lon_(kEarthRadiusMeters * kDegToRad * std::cos(center_lat * kDegToRad)) {}

XY LocalProjection::to_xy(double lat, double lon) const {
  return {(lon - center_lon_) * meters_per_deg_lon_, (lat - center_lat_) * meters_per_deg_lat_};
}

LatLon LocalProjection::to_latlon(double x, double y) const {
  return {center_lat_ + y / meters_per_deg_lat_, center_lon_ + x / meters_per_deg_lon_};
}

double haversine_m(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) * std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(a)));
}

SegmentProjection project_point_to_segment(XY p, XY a, XY b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  SegmentProjection result;
  if (len2 <= 0.0) {
    result.t = 0.0;
    result.closest = a;
  } else {
    const double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
    result.t = std::clamp(t, 0.0, 1.0);
    result.closest = {a.x + result.t * abx, a.y + result.t * aby};
  }
  const double dx = p.x - result.closest.x;
  const double dy = p.y - result.closest.y;
  result.distance = std::sqrt(dx * dx + dy * dy);
  return result;
}

}  // namespace mts::osm
