// Geographic projection utilities.
//
// The paper computes "the straight-line distance in the corresponding
// geographical projection" when snapping hospitals to roads.  We project
// WGS84 coordinates to a local equirectangular plane (meters) centered on
// the city, which is accurate to well under 0.1% across a metro area.
#pragma once

namespace mts::osm {

struct XY {
  double x = 0.0;  // meters east of center
  double y = 0.0;  // meters north of center
};

struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Local equirectangular projection around a center point.
class LocalProjection {
 public:
  LocalProjection() = default;
  LocalProjection(double center_lat, double center_lon);

  [[nodiscard]] XY to_xy(double lat, double lon) const;
  [[nodiscard]] LatLon to_latlon(double x, double y) const;

  [[nodiscard]] double center_lat() const { return center_lat_; }
  [[nodiscard]] double center_lon() const { return center_lon_; }

 private:
  double center_lat_ = 0.0;
  double center_lon_ = 0.0;
  double meters_per_deg_lat_ = 0.0;
  double meters_per_deg_lon_ = 0.0;
};

/// Great-circle distance in meters (haversine, spherical Earth).
double haversine_m(double lat1, double lon1, double lat2, double lon2);

/// Distance from point p to segment [a, b] and the parameter t in [0, 1]
/// of the closest point a + t*(b-a).  Planar.
struct SegmentProjection {
  double distance = 0.0;
  double t = 0.0;
  XY closest;
};
SegmentProjection project_point_to_segment(XY p, XY a, XY b);

}  // namespace mts::osm
