// OSM XML reading and writing.
//
// The paper ingests city street networks from OpenStreetMap.  This is a
// self-contained reader/writer for the OSM XML subset road networks use
// (<node>, <way>, <nd>, <tag>), with entity escaping.  It is not a general
// XML parser; unknown elements (<relation>, <bounds>, ...) are skipped.
#pragma once

#include <iosfwd>
#include <string>

#include "osm/model.hpp"

namespace mts::osm {

/// Serializes `data` as OSM XML v0.6.
void write_osm_xml(const OsmData& data, std::ostream& out);
void save_osm_xml(const OsmData& data, const std::string& path);

/// Parses OSM XML.  Throws InvalidInput on malformed documents (unclosed
/// elements, bad attributes, way referencing nothing).
OsmData parse_osm_xml(std::istream& in);
OsmData load_osm_xml(const std::string& path);

/// Escapes &, <, >, ", ' for attribute values.
std::string xml_escape(const std::string& raw);
/// Reverses xml_escape (also handles decimal/hex character references).
std::string xml_unescape(const std::string& escaped);

}  // namespace mts::osm
