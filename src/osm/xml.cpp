#include "osm/xml.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <iterator>
#include <optional>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace mts::osm {

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string xml_unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '&') {
      out += escaped[i];
      continue;
    }
    const auto semi = escaped.find(';', i);
    if (semi == std::string::npos) throw InvalidInput("xml_unescape: unterminated entity");
    const std::string entity = escaped.substr(i + 1, semi - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity[0] == '#') {
      int code = 0;
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const char* begin = entity.data() + (hex ? 2 : 1);
      const char* end = entity.data() + entity.size();
      const auto [ptr, ec] = std::from_chars(begin, end, code, hex ? 16 : 10);
      if (ec != std::errc() || ptr != end || code <= 0 || code > 0x10FFFF) {
        throw InvalidInput("xml_unescape: bad character reference &" + entity + ";");
      }
      // UTF-8 encode; generators only emit ASCII but parsed files may not.
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      throw InvalidInput("xml_unescape: unknown entity &" + entity + ";");
    }
    i = semi;
  }
  return out;
}

void write_osm_xml(const OsmData& data, std::ostream& out) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<osm version=\"0.6\" generator=\"mts-citygen\">\n";
  out << std::setprecision(17);  // exact double round-trip
  for (const auto& node : data.nodes) {
    out << "  <node id=\"" << node.id.value() << "\" lat=\"" << node.lat << "\" lon=\""
        << node.lon << "\"";
    if (node.tags.empty()) {
      out << "/>\n";
    } else {
      out << ">\n";
      for (const auto& [k, v] : node.tags) {
        out << "    <tag k=\"" << xml_escape(k) << "\" v=\"" << xml_escape(v) << "\"/>\n";
      }
      out << "  </node>\n";
    }
  }
  for (const auto& way : data.ways) {
    out << "  <way id=\"" << way.id.value() << "\">\n";
    for (OsmNodeId ref : way.node_refs) {
      out << "    <nd ref=\"" << ref.value() << "\"/>\n";
    }
    for (const auto& [k, v] : way.tags) {
      out << "    <tag k=\"" << xml_escape(k) << "\" v=\"" << xml_escape(v) << "\"/>\n";
    }
    out << "  </way>\n";
  }
  out << "</osm>\n";
}

void save_osm_xml(const OsmData& data, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "save_osm_xml: cannot open " + path);
  write_osm_xml(data, out);
}

namespace {

/// One parsed XML element tag: name, attributes, and whether it opens,
/// closes, or self-closes.
struct ElementTag {
  std::string name;
  std::unordered_map<std::string, std::string> attributes;
  bool closing = false;      // </name>
  bool self_closing = false; // <name ... />
};

class XmlScanner {
 public:
  explicit XmlScanner(std::istream& in) : text_(std::istreambuf_iterator<char>(in), {}) {}

  /// Next element tag, or nullopt at end of input.  Skips text content,
  /// comments, processing instructions, and doctypes.
  std::optional<ElementTag> next() {
    while (true) {
      const auto lt = text_.find('<', pos_);
      if (lt == std::string::npos) return std::nullopt;
      pos_ = lt + 1;
      if (starts_with("?")) {
        skip_until("?>");
        continue;
      }
      if (starts_with("!--")) {
        skip_until("-->");
        continue;
      }
      if (starts_with("!")) {
        skip_until(">");
        continue;
      }
      return parse_tag();
    }
  }

 private:
  bool starts_with(const std::string& prefix) const {
    return text_.compare(pos_, prefix.size(), prefix) == 0;
  }

  void skip_until(const std::string& marker) {
    const auto end = text_.find(marker, pos_);
    if (end == std::string::npos) throw InvalidInput("OSM XML: unterminated <" + marker);
    pos_ = end + marker.size();
  }

  ElementTag parse_tag() {
    ElementTag tag;
    if (text_[pos_] == '/') {
      tag.closing = true;
      ++pos_;
    }
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_' || text_[pos_] == ':')) {
      tag.name += text_[pos_++];
    }
    if (tag.name.empty()) throw InvalidInput("OSM XML: element with empty name");

    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size()) throw InvalidInput("OSM XML: unterminated element");
      if (text_[pos_] == '>') {
        ++pos_;
        return tag;
      }
      if (text_[pos_] == '/') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          throw InvalidInput("OSM XML: malformed self-closing element");
        }
        ++pos_;
        tag.self_closing = true;
        return tag;
      }
      // attribute name
      std::string key;
      while (pos_ < text_.size() && text_[pos_] != '=' &&
             !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        key += text_[pos_++];
      }
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        throw InvalidInput("OSM XML: attribute without value: " + key);
      }
      ++pos_;
      skip_whitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        throw InvalidInput("OSM XML: unquoted attribute value: " + key);
      }
      const char quote = text_[pos_++];
      const auto end = text_.find(quote, pos_);
      if (end == std::string::npos) throw InvalidInput("OSM XML: unterminated attribute value");
      tag.attributes[key] = xml_unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

double parse_double_attr(const ElementTag& tag, const std::string& key) {
  const auto it = tag.attributes.find(key);
  if (it == tag.attributes.end()) {
    throw InvalidInput("OSM XML: <" + tag.name + "> missing attribute " + key);
  }
  // std::stod alone is too lax: it prefix-parses ("1.0abc") and accepts
  // "nan"/"inf", either of which would smuggle garbage coordinates into
  // the graph.  Demand full consumption and a finite value.
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size() || !std::isfinite(value)) {
      throw InvalidInput("OSM XML: bad numeric attribute " + key + "=\"" + it->second + "\"");
    }
    return value;
  } catch (const InvalidInput&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidInput("OSM XML: bad numeric attribute " + key + "=\"" + it->second + "\"");
  }
}

std::int64_t parse_int_attr(const ElementTag& tag, const std::string& key) {
  const auto it = tag.attributes.find(key);
  if (it == tag.attributes.end()) {
    throw InvalidInput("OSM XML: <" + tag.name + "> missing attribute " + key);
  }
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) {
      throw InvalidInput("OSM XML: bad integer attribute " + key + "=\"" + it->second + "\"");
    }
    return value;
  } catch (const InvalidInput&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidInput("OSM XML: bad integer attribute " + key + "=\"" + it->second + "\"");
  }
}

}  // namespace

OsmData parse_osm_xml(std::istream& in) {
  XmlScanner scanner(in);
  OsmData data;

  enum class Scope { Top, Node, Way, SkippedElement };
  Scope scope = Scope::Top;
  std::string skipped_name;

  while (auto tag = scanner.next()) {
    if (scope == Scope::SkippedElement) {
      if (tag->closing && tag->name == skipped_name) scope = Scope::Top;
      continue;
    }
    if (tag->closing) {
      if (tag->name == "node" && scope == Scope::Node) scope = Scope::Top;
      else if (tag->name == "way" && scope == Scope::Way) scope = Scope::Top;
      else if (tag->name == "osm") break;
      continue;
    }

    if (tag->name == "node" && scope == Scope::Top) {
      OsmNode node;
      node.id = OsmNodeId(parse_int_attr(*tag, "id"));
      node.lat = parse_double_attr(*tag, "lat");
      node.lon = parse_double_attr(*tag, "lon");
      data.nodes.push_back(std::move(node));
      if (!tag->self_closing) scope = Scope::Node;
    } else if (tag->name == "way" && scope == Scope::Top) {
      OsmWay way;
      way.id = OsmWayId(parse_int_attr(*tag, "id"));
      data.ways.push_back(std::move(way));
      if (!tag->self_closing) scope = Scope::Way;
    } else if (tag->name == "nd" && scope == Scope::Way) {
      data.ways.back().node_refs.push_back(OsmNodeId(parse_int_attr(*tag, "ref")));
    } else if (tag->name == "tag" && (scope == Scope::Node || scope == Scope::Way)) {
      const auto k = tag->attributes.find("k");
      const auto v = tag->attributes.find("v");
      if (k == tag->attributes.end() || v == tag->attributes.end()) {
        throw InvalidInput("OSM XML: <tag> without k/v");
      }
      auto& tags = scope == Scope::Node ? data.nodes.back().tags : data.ways.back().tags;
      tags[k->second] = v->second;
    } else if (tag->name == "osm" || tag->self_closing) {
      // Root element or irrelevant leaf (e.g. <bounds .../>): ignore.
    } else {
      scope = Scope::SkippedElement;  // e.g. <relation> ... </relation>
      skipped_name = tag->name;
    }
  }
  return data;
}

OsmData load_osm_xml(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_osm_xml: cannot open " + path);
  return parse_osm_xml(in);
}

}  // namespace mts::osm
