// OSM tag semantics for road attributes.
//
// The attack cost models need per-segment speed limits (TIME weight),
// lane counts (LANES cost) and widths (WIDTH cost).  Real OSM data tags
// these inconsistently ("30 mph", "50", "3.5 m", missing entirely), so
// this module provides tolerant parsers plus per-highway-class defaults in
// the spirit of OSMnx's imputation.
#pragma once

#include <optional>
#include <string>

namespace mts::osm {

enum class HighwayClass {
  Motorway,
  Trunk,
  Primary,
  Secondary,
  Tertiary,
  Residential,
  Service,
  Unclassified,
};

/// Maps an OSM `highway=` value ("primary", "motorway_link", ...) to a
/// class; unknown values resolve to Unclassified, nullopt means the way is
/// not routable road (e.g. "footway").
std::optional<HighwayClass> parse_highway(const std::string& value);

const char* to_string(HighwayClass hw);

/// Per-class fallback attributes (US-calibrated).
struct HighwayDefaults {
  double speed_mps;   // speed limit
  int lanes_per_dir;  // lanes in one direction
};
HighwayDefaults highway_defaults(HighwayClass hw);

/// Parses `maxspeed=` values: "25 mph", "40", "50 km/h", "30mph".  Bare
/// numbers are km/h per the OSM convention.  Returns meters/second;
/// nullopt on unparsable input.
std::optional<double> parse_maxspeed(const std::string& value);

/// Parses `lanes=` (total across both directions unless oneway).
std::optional<int> parse_lanes(const std::string& value);

/// Parses `width=` values: "7.5", "7.5 m", "24'", "24 ft".  Returns meters.
std::optional<double> parse_width(const std::string& value);

enum class OnewayDirection { No, Forward, Backward };

/// Parses `oneway=` ("yes", "no", "true", "1", "-1", "reverse").
OnewayDirection parse_oneway(const std::string& value);

}  // namespace mts::osm
