#include "osm/road_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/error.hpp"
#include "core/units.hpp"
#include "graph/connectivity.hpp"

namespace mts::osm {

namespace {

/// Mutable construction state: plain vectors that are cheap to edit (edge
/// splits, SCC filtering) before the final immutable DiGraph is built.
struct BuilderNode {
  XY xy;
  OsmNodeId osm_id = OsmNodeId::invalid();
  NodeKind kind = NodeKind::Intersection;
};

struct BuilderEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  RoadSegment segment;
};

struct Builder {
  LocalProjection projection;
  std::vector<BuilderNode> nodes;
  std::vector<BuilderEdge> edges;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::int32_t> name_index;

  std::int32_t intern_name(const std::string& name) {
    const auto [it, inserted] = name_index.emplace(name, static_cast<std::int32_t>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  }
};

/// Attributes shared by every segment of one way, before per-direction
/// adjustment.
struct WayAttributes {
  HighwayClass highway = HighwayClass::Unclassified;
  double speed_mps = 1.0;
  int lanes_per_dir = 1;
  double width_per_dir = kLaneWidthMeters;
  OnewayDirection oneway = OnewayDirection::No;
  std::int32_t name_index = -1;
};

std::optional<WayAttributes> parse_way_attributes(const OsmWay& way, Builder& builder) {
  const std::string* highway_tag = way.tag("highway");
  if (highway_tag == nullptr) return std::nullopt;
  const auto highway = parse_highway(*highway_tag);
  if (!highway) return std::nullopt;

  WayAttributes attrs;
  attrs.highway = *highway;
  const HighwayDefaults defaults = highway_defaults(*highway);
  attrs.speed_mps = defaults.speed_mps;
  if (const std::string* raw = way.tag("maxspeed")) {
    if (const auto parsed = parse_maxspeed(*raw)) attrs.speed_mps = *parsed;
  }
  // OSM convention: roundabouts are one-way in the digitized direction
  // unless tagged otherwise.
  if (const std::string* junction = way.tag("junction")) {
    if (*junction == "roundabout" || *junction == "circular") {
      attrs.oneway = OnewayDirection::Forward;
    }
  }
  if (const std::string* raw = way.tag("oneway")) attrs.oneway = parse_oneway(*raw);

  // OSM `lanes`/`width` count both directions on two-way streets; the
  // attack cost of blocking one direction of travel uses its share.
  int total_lanes = defaults.lanes_per_dir * (attrs.oneway == OnewayDirection::No ? 2 : 1);
  if (const std::string* raw = way.tag("lanes")) {
    if (const auto parsed = parse_lanes(*raw)) total_lanes = *parsed;
  }
  double total_width = static_cast<double>(total_lanes) * kLaneWidthMeters;
  if (const std::string* raw = way.tag("width")) {
    if (const auto parsed = parse_width(*raw)) total_width = *parsed;
  }
  if (attrs.oneway == OnewayDirection::No) {
    attrs.lanes_per_dir = std::max(1, (total_lanes + 1) / 2);
    attrs.width_per_dir = std::max(kLaneWidthMeters * 0.5, total_width / 2.0);
  } else {
    attrs.lanes_per_dir = std::max(1, total_lanes);
    attrs.width_per_dir = std::max(kLaneWidthMeters * 0.5, total_width);
  }
  if (const std::string* raw = way.tag("name")) attrs.name_index = builder.intern_name(*raw);
  return attrs;
}

/// Keeps only nodes/edges of the largest SCC; compacts indices.
void restrict_to_largest_scc(Builder& builder) {
  DiGraph probe;
  for (const auto& node : builder.nodes) probe.add_node(node.xy.x, node.xy.y);
  for (const auto& edge : builder.edges) {
    probe.add_edge(NodeId(edge.from), NodeId(edge.to));
  }
  probe.finalize();
  const auto scc = strongly_connected_components(probe);
  if (scc.num_components <= 1) return;
  const auto keep = scc.largest();

  std::vector<std::uint32_t> remap(builder.nodes.size(), ~0u);
  std::vector<BuilderNode> kept_nodes;
  for (std::size_t i = 0; i < builder.nodes.size(); ++i) {
    if (scc.component[i] == keep) {
      remap[i] = static_cast<std::uint32_t>(kept_nodes.size());
      kept_nodes.push_back(builder.nodes[i]);
    }
  }
  std::vector<BuilderEdge> kept_edges;
  kept_edges.reserve(builder.edges.size());
  for (const auto& edge : builder.edges) {
    if (remap[edge.from] != ~0u && remap[edge.to] != ~0u) {
      kept_edges.push_back({remap[edge.from], remap[edge.to], edge.segment});
    }
  }
  builder.nodes = std::move(kept_nodes);
  builder.edges = std::move(kept_edges);
}

/// Finds the builder edge index of the reverse twin (to -> from on the
/// same way), or -1.
std::ptrdiff_t find_twin(const Builder& builder, std::size_t edge_idx) {
  const auto& e = builder.edges[edge_idx];
  for (std::size_t j = 0; j < builder.edges.size(); ++j) {
    if (j == edge_idx) continue;
    const auto& other = builder.edges[j];
    if (other.from == e.to && other.to == e.from && other.segment.way == e.segment.way) {
      return static_cast<std::ptrdiff_t>(j);
    }
  }
  return -1;
}

/// Splits builder edge `edge_idx` at parameter `t`, returning the new
/// middle node index.  The twin (if any) is split at the mirrored point.
std::uint32_t split_edge(Builder& builder, std::size_t edge_idx, double t, XY split_xy) {
  const auto mid = static_cast<std::uint32_t>(builder.nodes.size());
  builder.nodes.push_back({split_xy, OsmNodeId::invalid(), NodeKind::SplitPoint});

  const auto twin_idx = find_twin(builder, edge_idx);

  auto do_split = [&](std::size_t idx, double fraction) {
    BuilderEdge& edge = builder.edges[idx];
    const double total = edge.segment.length_m;
    BuilderEdge second = edge;            // mid -> old head
    second.from = mid;
    second.segment.length_m = total * (1.0 - fraction);
    edge.to = mid;                        // old tail -> mid (reuse slot)
    edge.segment.length_m = total * fraction;
    builder.edges.push_back(second);
  };

  do_split(edge_idx, t);
  if (twin_idx >= 0) do_split(static_cast<std::size_t>(twin_idx), 1.0 - t);
  return mid;
}

}  // namespace

RoadNetwork RoadNetwork::build(const OsmData& data, const BuildOptions& options) {
  require(options.endpoint_snap_fraction >= 0.0 && options.endpoint_snap_fraction < 0.5,
          "RoadNetwork::build: endpoint_snap_fraction must be in [0, 0.5)");

  // ---- Projection center.
  LatLon center;
  if (options.center) {
    center = *options.center;
  } else {
    require(!data.nodes.empty(), "RoadNetwork::build: no nodes");
    for (const auto& node : data.nodes) {
      center.lat += node.lat;
      center.lon += node.lon;
    }
    center.lat /= static_cast<double>(data.nodes.size());
    center.lon /= static_cast<double>(data.nodes.size());
  }

  Builder builder;
  builder.projection = LocalProjection(center.lat, center.lon);

  // ---- Create builder nodes for every OSM node referenced by a road way.
  const auto index = data.node_index();
  std::unordered_map<std::int64_t, std::uint32_t> graph_node_of;  // osm id -> builder idx
  std::vector<std::uint8_t> on_road(data.nodes.size(), 0);

  auto builder_node_for = [&](OsmNodeId osm_id) -> std::uint32_t {
    const auto found = graph_node_of.find(osm_id.value());
    if (found != graph_node_of.end()) return found->second;
    const auto it = index.find(osm_id);
    if (it == index.end()) {
      throw InvalidInput("RoadNetwork::build: way references missing node " +
                         std::to_string(osm_id.value()));
    }
    const OsmNode& osm_node = data.nodes[it->second];
    const auto idx = static_cast<std::uint32_t>(builder.nodes.size());
    builder.nodes.push_back(
        {builder.projection.to_xy(osm_node.lat, osm_node.lon), osm_id, NodeKind::Intersection});
    graph_node_of.emplace(osm_id.value(), idx);
    on_road[it->second] = 1;
    return idx;
  };

  // ---- Ways -> directed edges.
  for (const auto& way : data.ways) {
    const auto attrs = parse_way_attributes(way, builder);
    if (!attrs || way.node_refs.size() < 2) continue;

    for (std::size_t i = 0; i + 1 < way.node_refs.size(); ++i) {
      const OsmNodeId a_id = way.node_refs[i];
      const OsmNodeId b_id = way.node_refs[i + 1];
      const auto a_it = index.find(a_id);
      const auto b_it = index.find(b_id);
      if (a_it == index.end() || b_it == index.end()) {
        throw InvalidInput("RoadNetwork::build: way " + std::to_string(way.id.value()) +
                           " references a missing node");
      }
      const std::uint32_t a = builder_node_for(a_id);
      const std::uint32_t b = builder_node_for(b_id);
      if (a == b) continue;  // degenerate zero-length piece

      RoadSegment seg;
      seg.length_m = haversine_m(data.nodes[a_it->second].lat, data.nodes[a_it->second].lon,
                                 data.nodes[b_it->second].lat, data.nodes[b_it->second].lon);
      if (seg.length_m <= 0.0) seg.length_m = 0.1;  // coincident points: keep routable
      seg.speed_mps = attrs->speed_mps;
      seg.lanes = attrs->lanes_per_dir;
      seg.width_m = attrs->width_per_dir;
      seg.highway = attrs->highway;
      seg.way = way.id;
      seg.name_index = attrs->name_index;

      if (attrs->oneway != OnewayDirection::Backward) builder.edges.push_back({a, b, seg});
      if (attrs->oneway != OnewayDirection::Forward) builder.edges.push_back({b, a, seg});
    }
  }
  if (builder.edges.empty()) {
    throw InvalidInput("RoadNetwork::build: no routable roads in input");
  }

  if (options.keep_largest_scc) restrict_to_largest_scc(builder);

  // ---- Collect POIs: tagged nodes that did not become road nodes.
  struct PendingPoi {
    Poi poi;
  };
  std::vector<PendingPoi> pending;
  for (std::size_t i = 0; i < data.nodes.size(); ++i) {
    const auto& node = data.nodes[i];
    const std::string* amenity = node.tag("amenity");
    if (amenity == nullptr || on_road[i]) continue;
    Poi poi;
    poi.amenity = *amenity;
    if (const std::string* name = node.tag("name")) poi.name = *name;
    poi.lat = node.lat;
    poi.lon = node.lon;
    poi.xy = builder.projection.to_xy(node.lat, node.lon);
    pending.push_back({std::move(poi)});
  }

  RoadNetwork network;
  network.projection_ = builder.projection;

  // ---- Snap POIs (sequentially: later POIs see earlier splits).
  if (options.snap_pois) {
    for (auto& [poi] : pending) {
      // Nearest non-artificial segment.
      double best_distance = std::numeric_limits<double>::infinity();
      std::size_t best_edge = builder.edges.size();
      SegmentProjection best_proj;
      for (std::size_t eidx = 0; eidx < builder.edges.size(); ++eidx) {
        const auto& edge = builder.edges[eidx];
        if (edge.segment.artificial) continue;
        const auto proj = project_point_to_segment(poi.xy, builder.nodes[edge.from].xy,
                                                   builder.nodes[edge.to].xy);
        if (proj.distance < best_distance) {
          best_distance = proj.distance;
          best_edge = eidx;
          best_proj = proj;
        }
      }
      require(best_edge < builder.edges.size(), "RoadNetwork::build: no snap target");

      std::uint32_t access;
      if (best_proj.t <= options.endpoint_snap_fraction) {
        access = builder.edges[best_edge].from;
      } else if (best_proj.t >= 1.0 - options.endpoint_snap_fraction) {
        access = builder.edges[best_edge].to;
      } else {
        access = split_edge(builder, best_edge, best_proj.t, best_proj.closest);
      }

      // POI node + artificial connector both ways (paper: artificial road
      // segment, attribute marked).
      const auto poi_idx = static_cast<std::uint32_t>(builder.nodes.size());
      builder.nodes.push_back({poi.xy, OsmNodeId::invalid(), NodeKind::Poi});
      RoadSegment connector;
      connector.length_m = std::max(1.0, best_distance);
      connector.speed_mps = highway_defaults(HighwayClass::Service).speed_mps;
      connector.lanes = 1;
      connector.width_m = kLaneWidthMeters;
      connector.highway = HighwayClass::Service;
      connector.artificial = true;
      builder.edges.push_back({poi_idx, access, connector});
      builder.edges.push_back({access, poi_idx, connector});

      poi.node = NodeId(poi_idx);
      poi.access_node = NodeId(access);
      network.pois_.push_back(poi);
    }
  } else {
    for (auto& [poi] : pending) network.pois_.push_back(poi);
  }

  // ---- Freeze into the immutable representation.
  for (const auto& node : builder.nodes) {
    network.graph_.add_node(node.xy.x, node.xy.y);
    network.node_kinds_.push_back(node.kind);
    network.node_osm_ids_.push_back(node.osm_id);
  }
  network.segments_.reserve(builder.edges.size());
  for (const auto& edge : builder.edges) {
    network.graph_.add_edge(NodeId(edge.from), NodeId(edge.to));
    network.segments_.push_back(edge.segment);
  }
  network.graph_.finalize();
  network.names_ = std::move(builder.names);
  return network;
}

const std::string& RoadNetwork::segment_name(EdgeId e) const {
  static const std::string kEmpty;
  const auto idx = segments_[e.value()].name_index;
  return idx < 0 ? kEmpty : names_[static_cast<std::size_t>(idx)];
}

const Poi* RoadNetwork::find_poi(std::string_view name) const {
  for (const auto& poi : pois_) {
    if (poi.name == name) return &poi;
  }
  return nullptr;
}

std::vector<NodeId> RoadNetwork::intersection_nodes() const {
  std::vector<NodeId> out;
  for (NodeId n : graph_.nodes()) {
    if (node_kinds_[n.value()] == NodeKind::Intersection) out.push_back(n);
  }
  return out;
}

std::vector<double> RoadNetwork::edge_lengths() const {
  std::vector<double> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) out.push_back(seg.length_m);
  return out;
}

std::vector<double> RoadNetwork::edge_times() const {
  std::vector<double> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) out.push_back(seg.travel_time_s());
  return out;
}

}  // namespace mts::osm
