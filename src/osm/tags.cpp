#include "osm/tags.hpp"

#include <algorithm>
#include <cctype>

#include "core/units.hpp"

namespace mts::osm {

namespace {

std::string lower_trim(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    if (!std::isspace(static_cast<unsigned char>(ch))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
  }
  return out;
}

/// Parses the leading number of `text`; sets `rest` to the remainder.
std::optional<double> leading_number(const std::string& text, std::string* rest) {
  std::size_t pos = 0;
  try {
    const double value = std::stod(text, &pos);
    if (pos == 0) return std::nullopt;
    if (rest != nullptr) *rest = text.substr(pos);
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<HighwayClass> parse_highway(const std::string& value) {
  const std::string v = lower_trim(value);
  auto strip_link = [](const std::string& s) {
    const auto pos = s.rfind("_link");
    return pos != std::string::npos && pos == s.size() - 5 ? s.substr(0, pos) : s;
  };
  const std::string base = strip_link(v);
  if (base == "motorway") return HighwayClass::Motorway;
  if (base == "trunk") return HighwayClass::Trunk;
  if (base == "primary") return HighwayClass::Primary;
  if (base == "secondary") return HighwayClass::Secondary;
  if (base == "tertiary") return HighwayClass::Tertiary;
  if (base == "residential" || base == "living_street") return HighwayClass::Residential;
  if (base == "service") return HighwayClass::Service;
  if (base == "unclassified" || base == "road") return HighwayClass::Unclassified;
  // Non-drivable ways.
  if (base == "footway" || base == "cycleway" || base == "path" || base == "pedestrian" ||
      base == "steps" || base == "track" || base == "bridleway" || base == "corridor") {
    return std::nullopt;
  }
  return HighwayClass::Unclassified;
}

const char* to_string(HighwayClass hw) {
  switch (hw) {
    case HighwayClass::Motorway: return "motorway";
    case HighwayClass::Trunk: return "trunk";
    case HighwayClass::Primary: return "primary";
    case HighwayClass::Secondary: return "secondary";
    case HighwayClass::Tertiary: return "tertiary";
    case HighwayClass::Residential: return "residential";
    case HighwayClass::Service: return "service";
    case HighwayClass::Unclassified: return "unclassified";
  }
  return "unclassified";
}

HighwayDefaults highway_defaults(HighwayClass hw) {
  switch (hw) {
    case HighwayClass::Motorway: return {mph_to_mps(65.0), 4};
    case HighwayClass::Trunk: return {mph_to_mps(55.0), 3};
    case HighwayClass::Primary: return {mph_to_mps(40.0), 2};
    case HighwayClass::Secondary: return {mph_to_mps(35.0), 2};
    case HighwayClass::Tertiary: return {mph_to_mps(30.0), 1};
    case HighwayClass::Residential: return {mph_to_mps(25.0), 1};
    case HighwayClass::Service: return {mph_to_mps(15.0), 1};
    case HighwayClass::Unclassified: return {mph_to_mps(25.0), 1};
  }
  return {mph_to_mps(25.0), 1};
}

std::optional<double> parse_maxspeed(const std::string& value) {
  const std::string v = lower_trim(value);
  std::string rest;
  const auto number = leading_number(v, &rest);
  if (!number || *number < 0.0) return std::nullopt;
  if (rest == "mph") return mph_to_mps(*number);
  if (rest.empty() || rest == "km/h" || rest == "kmh" || rest == "kph") {
    return kmh_to_mps(*number);
  }
  return std::nullopt;
}

std::optional<int> parse_lanes(const std::string& value) {
  const std::string v = lower_trim(value);
  std::string rest;
  const auto number = leading_number(v, &rest);
  if (!number || !rest.empty()) return std::nullopt;
  const int lanes = static_cast<int>(*number);
  if (lanes < 1 || static_cast<double>(lanes) != *number) return std::nullopt;
  return lanes;
}

std::optional<double> parse_width(const std::string& value) {
  const std::string v = lower_trim(value);
  std::string rest;
  const auto number = leading_number(v, &rest);
  if (!number || *number <= 0.0) return std::nullopt;
  if (rest.empty() || rest == "m") return *number;
  if (rest == "'" || rest == "ft" || rest == "feet") return feet_to_meters(*number);
  return std::nullopt;
}

OnewayDirection parse_oneway(const std::string& value) {
  const std::string v = lower_trim(value);
  if (v == "yes" || v == "true" || v == "1") return OnewayDirection::Forward;
  if (v == "-1" || v == "reverse") return OnewayDirection::Backward;
  return OnewayDirection::No;
}

}  // namespace mts::osm
