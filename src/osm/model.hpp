// In-memory model of the OpenStreetMap subset this library consumes:
// nodes with coordinates + tags, and ways referencing node sequences.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/strong_id.hpp"

namespace mts::osm {

using TagMap = std::unordered_map<std::string, std::string>;

struct OsmNode {
  OsmNodeId id;
  double lat = 0.0;
  double lon = 0.0;
  TagMap tags;

  [[nodiscard]] const std::string* tag(const std::string& key) const {
    const auto it = tags.find(key);
    return it == tags.end() ? nullptr : &it->second;
  }
};

struct OsmWay {
  OsmWayId id;
  std::vector<OsmNodeId> node_refs;
  TagMap tags;

  [[nodiscard]] const std::string* tag(const std::string& key) const {
    const auto it = tags.find(key);
    return it == tags.end() ? nullptr : &it->second;
  }
};

struct OsmData {
  std::vector<OsmNode> nodes;
  std::vector<OsmWay> ways;

  /// Index of each node by OSM id (rebuilt on demand by callers that
  /// mutate `nodes`).
  [[nodiscard]] std::unordered_map<OsmNodeId, std::size_t> node_index() const {
    std::unordered_map<OsmNodeId, std::size_t> index;
    index.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i].id, i);
    return index;
  }
};

}  // namespace mts::osm
