// Dense two-phase primal simplex.
//
// LP-PathCover solves the LP relaxation of a weighted set cover: minimize
// c^T x subject to "each discovered constraint path contains at least one
// removed edge".  After constraint generation these LPs are small (tens of
// rows, hundreds of columns), so an exact dense tableau simplex is the
// right tool — no external solver dependency.
//
// Canonical problem handled here:
//     minimize   c^T x
//     subject to a_i^T x  (<= | == | >=)  b_i     for each row i
//                x >= 0
// Phase 1 drives artificial variables out of the basis; phase 2 optimizes
// the true objective.  Dantzig pricing with a Bland's-rule fallback after
// a stall threshold guarantees termination.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/budget.hpp"

namespace mts {

enum class Relation { LessEqual, Equal, GreaterEqual };

/// Numerical = the solve terminated but produced a non-finite objective or
/// solution vector (poisoned input, catastrophic cancellation); callers
/// treat it like IterationLimit and fall back (see lp/covering.cpp).
enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit, Numerical };

struct LpConstraint {
  // Sparse row: parallel index/value arrays.
  std::vector<std::size_t> indices;
  std::vector<double> values;
  Relation relation = Relation::GreaterEqual;
  double rhs = 0.0;
};

struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  // size num_vars; minimized
  std::vector<LpConstraint> constraints;

  /// Convenience: appends a constraint built from (index, value) pairs.
  void add_constraint(std::vector<std::size_t> indices, std::vector<double> values,
                      Relation relation, double rhs);
};

struct LpOptions {
  std::size_t max_iterations = 20000;
  /// Switch from Dantzig to Bland pricing after this many degenerate pivots.
  std::size_t bland_after_stalls = 64;
  double tolerance = 1e-9;
  /// Validate the tableau (basis is a unit sub-matrix, RHS non-negative,
  /// basic reduced costs zero) after every pivot, throwing
  /// InvariantViolation on corruption.  Always treated as true in
  /// MTS_ENABLE_DCHECKS builds (Debug / MTS_SANITIZE); opt-in elsewhere.
  bool check_invariants = false;
  /// Deterministic work budget charged one pivot at a time (nullptr =
  /// unlimited); exceeding it throws BudgetExhausted (core/budget.hpp).
  WorkBudget* budget = nullptr;
};

struct LpResult {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;  // size num_vars when status == Optimal
  std::size_t iterations = 0;
  /// Which simplex phase hit the iteration cap (0 = none, 1, or 2).  Lets
  /// fallback decisions and reports distinguish a phase-1 stall (couldn't
  /// even prove feasibility) from a phase-2 stall (feasible but unoptimized).
  int limit_phase = 0;
  /// Zero-progress pivots across both phases.
  std::size_t degenerate_pivots = 0;
  /// True when stall detection switched pricing from Dantzig to Bland's
  /// anti-cycling rule at any point during the solve.
  bool bland_engaged = false;
};

/// Solves `problem`; never throws on solvable-but-degenerate input, throws
/// PreconditionViolation on malformed input (index out of range, size
/// mismatches).
LpResult solve_lp(const LpProblem& problem, const LpOptions& options = {});

/// Human-readable status name (for logs and tests).
std::string to_string(LpStatus status);

}  // namespace mts
