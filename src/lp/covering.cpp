#include "lp/covering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mts {

namespace {

/// True if `picked` covers every set.
bool covers_all(const CoveringProblem& problem, const std::vector<std::uint8_t>& picked) {
  for (const auto& set : problem.sets) {
    bool covered = false;
    for (std::size_t j : set) {
      if (picked[j]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

constexpr double kNoSolution = std::numeric_limits<double>::infinity();

double total_cost(const CoveringProblem& problem, const std::vector<std::uint8_t>& picked) {
  double cost = 0.0;
  for (std::size_t j = 0; j < picked.size(); ++j) {
    if (picked[j]) cost += problem.costs[j];
  }
  return cost;
}

/// Drops elements that are not needed (reverse-delete), cheapest kept.
void prune(const CoveringProblem& problem, std::vector<std::uint8_t>& picked) {
  // Try removing elements in descending cost order; keep removal if the
  // cover stays valid.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < picked.size(); ++j) {
    if (picked[j]) order.push_back(j);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return problem.costs[a] > problem.costs[b]; });
  for (std::size_t j : order) {
    picked[j] = 0;
    if (!covers_all(problem, picked)) picked[j] = 1;
  }
}

std::vector<std::size_t> to_indices(const std::vector<std::uint8_t>& picked) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < picked.size(); ++j) {
    if (picked[j]) out.push_back(j);
  }
  return out;
}

}  // namespace

CoveringSolution solve_covering_lp(const CoveringProblem& problem, Rng& rng,
                                   const CoveringOptions& options) {
  CoveringSolution solution;
  for (const auto& set : problem.sets) {
    if (set.empty()) return solution;  // uncoverable constraint
  }
  if (problem.sets.empty()) {
    solution.feasible = true;
    return solution;
  }

  LpProblem lp;
  lp.num_vars = problem.costs.size();
  lp.objective = problem.costs;
  for (const auto& set : problem.sets) {
    std::vector<std::size_t> indices(set.begin(), set.end());
    std::vector<double> values(set.size(), 1.0);
    lp.add_constraint(std::move(indices), std::move(values), Relation::GreaterEqual, 1.0);
  }
  const LpResult lp_result = solve_lp(lp, options.lp);
  if (lp_result.status != LpStatus::Optimal) {
    // Degradation chain: a covering LP is always feasible and bounded once
    // every set is non-empty (x = 1 covers; costs > 0), so a non-Optimal
    // status means the solver gave up (iteration limit) or the tableau went
    // numerically bad.  Substitute the greedy cover — valid, just without
    // the LP's certified lower bound — and record why.
    CoveringSolution fallback = solve_covering_greedy(problem);
    fallback.fallback_used = true;
    fallback.fallback_reason = "lp " + to_string(lp_result.status);
    if (lp_result.status == LpStatus::IterationLimit) {
      fallback.fallback_reason += " (phase " + std::to_string(lp_result.limit_phase) + ", " +
                                  std::to_string(lp_result.iterations) + " iterations)";
    }
    fallback.bland_engaged = lp_result.bland_engaged;
    fallback.lp_iterations = lp_result.iterations;
    return fallback;
  }
  solution.lp_lower_bound = lp_result.objective;
  solution.lp_iterations = lp_result.iterations;
  solution.bland_engaged = lp_result.bland_engaged;

  const std::size_t n = problem.costs.size();
  std::vector<std::uint8_t> best(n, 0);
  double best_cost = kNoSolution;

  // Deterministic sweep: add elements in descending fractional value until
  // covered, then prune.
  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return lp_result.x[a] > lp_result.x[b]; });
    std::vector<std::uint8_t> picked(n, 0);
    for (std::size_t j : order) {
      if (covers_all(problem, picked)) break;
      if (lp_result.x[j] <= 0.0) {
        // LP support exhausted but not covered (possible after pruning by
        // tolerance): fall through and let the remaining zero-value
        // elements complete the cover in cost order.
      }
      picked[j] = 1;
    }
    if (covers_all(problem, picked)) {
      prune(problem, picked);
      best = picked;
      best_cost = total_cost(problem, picked);
    }
  }

  // Randomized rounding: include j with probability min(1, scale * x_j),
  // escalating scale until valid; keep the cheapest result.
  for (std::size_t attempt = 0; attempt < options.randomized_attempts; ++attempt) {
    std::vector<std::uint8_t> picked(n, 0);
    double scale = 1.0;
    for (int escalation = 0; escalation < 8; ++escalation) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!picked[j] && rng.chance(std::min(1.0, scale * lp_result.x[j]))) picked[j] = 1;
      }
      if (covers_all(problem, picked)) break;
      scale *= 2.0;
    }
    if (!covers_all(problem, picked)) continue;
    prune(problem, picked);
    const double cost = total_cost(problem, picked);
    if (cost < best_cost) {
      best = picked;
      best_cost = cost;
    }
  }

  if (best_cost == kNoSolution) {
    // Extremely unlikely fallback: take everything, then prune.
    std::vector<std::uint8_t> picked(n, 1);
    prune(problem, picked);
    best = picked;
    best_cost = total_cost(problem, picked);
  }

  solution.feasible = true;
  solution.chosen = to_indices(best);
  solution.cost = best_cost;
  return solution;
}

CoveringSolution solve_covering_greedy(const CoveringProblem& problem) {
  CoveringSolution solution;
  for (const auto& set : problem.sets) {
    if (set.empty()) return solution;
  }

  const std::size_t n = problem.costs.size();
  // element -> constraints it covers (inverted index).
  std::vector<std::vector<std::size_t>> covers(n);
  for (std::size_t i = 0; i < problem.sets.size(); ++i) {
    for (std::size_t j : problem.sets[i]) covers[j].push_back(i);
  }

  std::vector<std::uint8_t> satisfied(problem.sets.size(), 0);
  std::size_t remaining = problem.sets.size();
  std::vector<std::uint8_t> picked(n, 0);

  while (remaining > 0) {
    std::size_t best_j = n;
    double best_ratio = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (picked[j]) continue;
      std::size_t gain = 0;
      for (std::size_t i : covers[j]) gain += satisfied[i] ? 0 : 1;
      if (gain == 0) continue;
      const double ratio = static_cast<double>(gain) / problem.costs[j];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_j = j;
      }
    }
    require(best_j < n, "greedy cover: no progress despite non-empty sets");
    picked[best_j] = 1;
    for (std::size_t i : covers[best_j]) {
      if (!satisfied[i]) {
        satisfied[i] = 1;
        --remaining;
      }
    }
  }

  prune(problem, picked);
  solution.feasible = true;
  solution.chosen = to_indices(picked);
  solution.cost = total_cost(problem, picked);
  return solution;
}

namespace {

/// Branch-and-bound state: forced elements are in the cover, forbidden
/// ones excluded.  Sets already hit by a forced element drop out of the
/// LP subproblem.
struct BranchState {
  std::vector<std::uint8_t> forced;
  std::vector<std::uint8_t> forbidden;
  double forced_cost = 0.0;
};

/// Builds the reduced LP for the current branch; returns nullopt when a
/// set has no pickable element left (infeasible branch).
std::optional<LpResult> branch_lp(const CoveringProblem& problem, const BranchState& state,
                                  const LpOptions& lp_options) {
  LpProblem lp;
  lp.num_vars = problem.costs.size();
  lp.objective = problem.costs;
  for (const auto& set : problem.sets) {
    bool hit = false;
    std::vector<std::size_t> indices;
    for (std::size_t j : set) {
      if (state.forced[j]) {
        hit = true;
        break;
      }
      if (!state.forbidden[j]) indices.push_back(j);
    }
    if (hit) continue;
    if (indices.empty()) return std::nullopt;
    std::vector<double> values(indices.size(), 1.0);
    lp.add_constraint(std::move(indices), std::move(values), Relation::GreaterEqual, 1.0);
  }
  // Pin branched variables.
  for (std::size_t j = 0; j < problem.costs.size(); ++j) {
    if (state.forbidden[j]) lp.add_constraint({j}, {1.0}, Relation::Equal, 0.0);
  }
  auto result = solve_lp(lp, lp_options);
  if (result.status != LpStatus::Optimal) return std::nullopt;
  return result;
}

}  // namespace

ExactCoverSolution solve_covering_exact(const CoveringProblem& problem,
                                        const ExactCoverOptions& options) {
  ExactCoverSolution solution;
  for (const auto& set : problem.sets) {
    if (set.empty()) return solution;
  }
  const std::size_t n = problem.costs.size();
  if (problem.sets.empty()) {
    solution.feasible = true;
    solution.proven_optimal = true;
    return solution;
  }

  // Incumbent from the greedy heuristic.
  const CoveringSolution greedy = solve_covering_greedy(problem);
  require(greedy.feasible, "exact cover: greedy unexpectedly infeasible");
  solution.feasible = true;
  solution.chosen = greedy.chosen;
  solution.cost = greedy.cost;

  constexpr double kEps = 1e-7;
  bool exhausted_cleanly = true;

  // Depth-first branch and bound (explicit stack).
  std::vector<BranchState> stack;
  stack.push_back({std::vector<std::uint8_t>(n, 0), std::vector<std::uint8_t>(n, 0), 0.0});
  while (!stack.empty()) {
    if (solution.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    ++solution.nodes_explored;
    BranchState state = std::move(stack.back());
    stack.pop_back();

    const auto lp = branch_lp(problem, state, options.lp);
    if (!lp) continue;  // infeasible branch
    // Objective includes only free variables; forced cost adds on top.
    if (lp->objective + state.forced_cost >= solution.cost - kEps) continue;  // pruned

    // Integral? (forced vars were substituted out; check the LP vector.)
    std::size_t branch_var = n;
    double most_fractional = kEps;
    for (std::size_t j = 0; j < n; ++j) {
      if (state.forced[j] || state.forbidden[j]) continue;
      const double frac = std::min(lp->x[j], 1.0 - std::min(1.0, lp->x[j]));
      if (frac > most_fractional) {
        most_fractional = frac;
        branch_var = j;
      }
    }
    if (branch_var == n) {
      // Integral optimum for this branch: adopt as the new incumbent.
      std::vector<std::size_t> chosen;
      double cost = state.forced_cost;
      for (std::size_t j = 0; j < n; ++j) {
        if (state.forced[j] || lp->x[j] > 0.5) {
          chosen.push_back(j);
          if (!state.forced[j]) cost += problem.costs[j];
        }
      }
      if (cost < solution.cost - kEps) {
        solution.chosen = std::move(chosen);
        solution.cost = cost;
      }
      continue;
    }

    // Branch: forbid first (tends to prune faster), then force.
    BranchState forbid = state;
    forbid.forbidden[branch_var] = 1;
    stack.push_back(std::move(forbid));
    BranchState force = std::move(state);
    force.forced[branch_var] = 1;
    force.forced_cost += problem.costs[branch_var];
    stack.push_back(std::move(force));
  }

  solution.proven_optimal = exhausted_cleanly;
  // Normalize: ascending ids, exact cost from scratch.
  std::sort(solution.chosen.begin(), solution.chosen.end());
  solution.cost = 0.0;
  for (std::size_t j : solution.chosen) solution.cost += problem.costs[j];
  return solution;
}

}  // namespace mts
