#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/check.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "obs/phase.hpp"

namespace mts {

void LpProblem::add_constraint(std::vector<std::size_t> indices, std::vector<double> values,
                               Relation relation, double rhs) {
  require(indices.size() == values.size(), "add_constraint: index/value size mismatch");
  constraints.push_back({std::move(indices), std::move(values), relation, rhs});
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::Optimal: return "optimal";
    case LpStatus::Infeasible: return "infeasible";
    case LpStatus::Unbounded: return "unbounded";
    case LpStatus::IterationLimit: return "iteration-limit";
    case LpStatus::Numerical: return "numerical";
  }
  return "unknown";
}

namespace {

/// Dense tableau with an explicit objective row.  Rows 0..m-1 are
/// constraints; `obj` is the reduced-cost row; `rhs` the right-hand sides.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0), obj_(cols, 0.0), rhs_(rows, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& obj() { return obj_; }
  std::vector<double>& rhs() { return rhs_; }
  double& obj_value() { return obj_value_; }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Validates that `basis` names a legal basis for this tableau: indices
  /// in range and distinct, each basic column a unit column (1 in its own
  /// row, 0 elsewhere), basic reduced costs zero, and all RHS entries
  /// non-negative.  Throws InvariantViolation on the first failure.
  void check_invariants(const std::vector<std::size_t>& basis) const {
    constexpr double kTol = 1e-6;
    enforce_invariant(basis.size() == rows_, "simplex basis size != row count");
    std::vector<std::uint8_t> used(cols_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t b = basis[r];
      enforce_invariant(b < cols_, "simplex basis column out of range");
      enforce_invariant(!used[b], "simplex basis repeats column " + std::to_string(b));
      used[b] = 1;
      for (std::size_t r2 = 0; r2 < rows_; ++r2) {
        const double expected = r2 == r ? 1.0 : 0.0;
        enforce_invariant(std::abs(at(r2, b) - expected) <= kTol,
                          "simplex basic column " + std::to_string(b) +
                              " is not a unit column at row " + std::to_string(r2));
      }
      enforce_invariant(std::abs(obj_[b]) <= kTol,
                        "simplex basic column " + std::to_string(b) +
                            " has nonzero reduced cost");
      enforce_invariant(rhs_[r] >= -kTol * (1.0 + std::abs(rhs_[r])),
                        "simplex RHS negative at row " + std::to_string(r));
    }
  }

  /// Gauss-Jordan pivot on (pr, pc), including objective row.
  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    rhs_[pr] *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;  // cancel rounding residue exactly
      rhs_[r] -= factor * rhs_[pr];
    }
    const double obj_factor = obj_[pc];
    if (obj_factor != 0.0) {
      for (std::size_t c = 0; c < cols_; ++c) obj_[c] -= obj_factor * at(pr, c);
      obj_[pc] = 0.0;
      obj_value_ -= obj_factor * rhs_[pr];
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
  std::vector<double> obj_;
  std::vector<double> rhs_;
  double obj_value_ = 0.0;
};

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit };

/// Tableau validation runs when the caller opts in, and unconditionally in
/// MTS_ENABLE_DCHECKS builds.
bool invariant_checks_enabled(const LpOptions& options) {
#if defined(MTS_ENABLE_DCHECKS)
  static_cast<void>(options);
  return true;
#else
  return options.check_invariants;
#endif
}

/// Runs simplex iterations on `t` until optimality.  `allowed[c]` masks
/// columns permitted to enter the basis.  `basis[r]` tracks basic columns.
/// `degenerate` accumulates the number of zero-progress (stalled) pivots.
PhaseOutcome run_phase(Tableau& t, std::vector<std::size_t>& basis,
                       const std::vector<std::uint8_t>& allowed, const LpOptions& options,
                       std::size_t& iterations, std::size_t& degenerate, bool& bland_engaged) {
  const bool validate = invariant_checks_enabled(options);
  std::size_t stalls = 0;
  while (true) {
    if (iterations >= options.max_iterations) return PhaseOutcome::IterationLimit;
    switch (MTS_FAULT_ACTION("lp.pivot")) {
      case fault::Action::Throw:
        fault::throw_injected("lp.pivot", fault::Action::Throw);
      case fault::Action::Nan:
        // Poison one RHS entry; the solve still terminates (NaN comparisons
        // are all false) and either the post-solve finiteness validation
        // reports LpStatus::Numerical or, in MTS_ENABLE_DCHECKS builds,
        // check_invariants throws InvariantViolation first.
        if (!t.rhs().empty()) t.rhs()[0] = std::numeric_limits<double>::quiet_NaN();
        break;
      case fault::Action::Limit:
        return PhaseOutcome::IterationLimit;
      case fault::Action::None:
        break;
    }
    if (options.budget != nullptr) options.budget->charge_lp_pivots(1);

    const bool use_bland = stalls >= options.bland_after_stalls;
    if (use_bland) bland_engaged = true;
    std::size_t entering = t.cols();
    double best = -options.tolerance;
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (!allowed[c]) continue;
      const double reduced = t.obj()[c];
      if (use_bland) {
        if (reduced < -options.tolerance) {
          entering = c;
          break;
        }
      } else if (reduced < best) {
        best = reduced;
        entering = c;
      }
    }
    if (entering == t.cols()) return PhaseOutcome::Optimal;

    std::size_t leaving = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double coeff = t.at(r, entering);
      if (coeff <= options.tolerance) continue;
      const double ratio = t.rhs()[r] / coeff;
      if (ratio < best_ratio - options.tolerance ||
          (ratio < best_ratio + options.tolerance && leaving < t.rows() &&
           basis[r] < basis[leaving])) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == t.rows()) return PhaseOutcome::Unbounded;

    if (best_ratio < options.tolerance) {
      ++stalls;
      ++degenerate;
    } else {
      stalls = 0;
    }

    t.pivot(leaving, entering);
    basis[leaving] = entering;
    if (validate) t.check_invariants(basis);
    ++iterations;
  }
}

}  // namespace

namespace {

/// Flushes one solve's counters on every return path.
struct LpCounterFlush {
  const std::size_t& iterations;
  const std::size_t& degenerate;
  bool phase1 = false;

  ~LpCounterFlush() {
    static const obs::CounterId kSolves = obs::MetricsRegistry::instance().counter("lp.solves");
    static const obs::CounterId kPivots = obs::MetricsRegistry::instance().counter("lp.pivots");
    static const obs::CounterId kDegenerate =
        obs::MetricsRegistry::instance().counter("lp.degenerate_pivots");
    static const obs::CounterId kBuilds =
        obs::MetricsRegistry::instance().counter("lp.tableau_builds");
    static const obs::CounterId kPhase1 =
        obs::MetricsRegistry::instance().counter("lp.phase1_solves");
    static const obs::HistogramId kIterations =
        obs::MetricsRegistry::instance().histogram("lp.iterations_per_solve");
    obs::add(kSolves);
    obs::add(kPivots, iterations);
    obs::add(kDegenerate, degenerate);
    obs::add(kBuilds);
    if (phase1) obs::add(kPhase1);
    obs::observe(kIterations, static_cast<double>(iterations));
  }
};

}  // namespace

LpResult solve_lp(const LpProblem& problem, const LpOptions& options) {
  require(problem.objective.size() == problem.num_vars, "solve_lp: objective size mismatch");
  obs::ScopedPhase phase("lp");
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();

  // Column layout: [0, n) structural, then one slack/surplus per inequality
  // row, then one artificial per >=/== row.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const auto& con : problem.constraints) {
    // Normalization below flips rows with negative rhs, which can turn <=
    // into >= and vice versa; count after normalization.
    const bool flips = con.rhs < 0.0;
    Relation rel = con.relation;
    if (flips) {
      if (rel == Relation::LessEqual) rel = Relation::GreaterEqual;
      else if (rel == Relation::GreaterEqual) rel = Relation::LessEqual;
    }
    if (rel != Relation::Equal) ++num_slack;
    if (rel != Relation::LessEqual) ++num_artificial;
  }

  const std::size_t total_cols = n + num_slack + num_artificial;
  Tableau tableau(m, total_cols);
  std::vector<std::size_t> basis(m, total_cols);
  std::vector<std::uint8_t> is_artificial(total_cols, 0);

  std::size_t next_slack = n;
  std::size_t next_artificial = n + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& con = problem.constraints[r];
    const double sign = con.rhs < 0.0 ? -1.0 : 1.0;
    Relation rel = con.relation;
    if (sign < 0.0) {
      if (rel == Relation::LessEqual) rel = Relation::GreaterEqual;
      else if (rel == Relation::GreaterEqual) rel = Relation::LessEqual;
    }
    for (std::size_t k = 0; k < con.indices.size(); ++k) {
      require(con.indices[k] < n, "solve_lp: constraint index out of range");
      tableau.at(r, con.indices[k]) += sign * con.values[k];
    }
    tableau.rhs()[r] = sign * con.rhs;

    if (rel == Relation::LessEqual) {
      tableau.at(r, next_slack) = 1.0;
      basis[r] = next_slack;
      ++next_slack;
    } else if (rel == Relation::GreaterEqual) {
      tableau.at(r, next_slack) = -1.0;  // surplus
      ++next_slack;
      tableau.at(r, next_artificial) = 1.0;
      is_artificial[next_artificial] = 1;
      basis[r] = next_artificial;
      ++next_artificial;
    } else {
      tableau.at(r, next_artificial) = 1.0;
      is_artificial[next_artificial] = 1;
      basis[r] = next_artificial;
      ++next_artificial;
    }
  }

  LpResult result;
  std::size_t iterations = 0;
  std::size_t degenerate = 0;
  LpCounterFlush flush{iterations, degenerate};
  if (invariant_checks_enabled(options)) tableau.check_invariants(basis);

  // ---- Phase 1: minimize sum of artificials.
  if (num_artificial > 0) {
    flush.phase1 = true;
    for (std::size_t c = 0; c < total_cols; ++c) {
      tableau.obj()[c] = is_artificial[c] ? 1.0 : 0.0;
    }
    tableau.obj_value() = 0.0;
    // Price out the initial (artificial) basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      for (std::size_t c = 0; c < total_cols; ++c) tableau.obj()[c] -= tableau.at(r, c);
      tableau.obj_value() -= tableau.rhs()[r];
    }
    std::vector<std::uint8_t> allowed(total_cols, 1);
    const auto outcome =
        run_phase(tableau, basis, allowed, options, iterations, degenerate, result.bland_engaged);
    result.iterations = iterations;
    result.degenerate_pivots = degenerate;
    if (outcome == PhaseOutcome::IterationLimit) {
      result.status = LpStatus::IterationLimit;
      result.limit_phase = 1;
      return result;
    }
    // Phase-1 objective value = -obj_value() (obj_value accumulates -z).
    const double artificial_sum = -tableau.obj_value();
    if (artificial_sum > 1e-7) {
      result.status = LpStatus::Infeasible;
      return result;
    }
    // Drive any basic artificial (at value 0) out of the basis if possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(tableau.at(r, c)) > options.tolerance) {
          tableau.pivot(r, c);
          basis[r] = c;
          break;
        }
      }
      // A fully zero row is redundant; its artificial stays basic at 0 and
      // is simply barred from re-entering in phase 2.
    }
  }

  // ---- Phase 2: true objective.
  for (std::size_t c = 0; c < total_cols; ++c) {
    tableau.obj()[c] = c < n ? problem.objective[c] : 0.0;
  }
  tableau.obj_value() = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = basis[r];
    const double cost = b < n ? problem.objective[b] : 0.0;
    if (cost == 0.0) continue;
    for (std::size_t c = 0; c < total_cols; ++c) tableau.obj()[c] -= cost * tableau.at(r, c);
    tableau.obj_value() -= cost * tableau.rhs()[r];
  }
  std::vector<std::uint8_t> allowed(total_cols, 1);
  for (std::size_t c = 0; c < total_cols; ++c) {
    if (is_artificial[c]) allowed[c] = 0;
  }
  const auto outcome =
      run_phase(tableau, basis, allowed, options, iterations, degenerate, result.bland_engaged);
  result.iterations = iterations;
  result.degenerate_pivots = degenerate;
  switch (outcome) {
    case PhaseOutcome::IterationLimit:
      result.status = LpStatus::IterationLimit;
      result.limit_phase = 2;
      return result;
    case PhaseOutcome::Unbounded: result.status = LpStatus::Unbounded; return result;
    case PhaseOutcome::Optimal: break;
  }

  result.status = LpStatus::Optimal;
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) result.x[basis[r]] = tableau.rhs()[r];
  }
  result.objective = -tableau.obj_value();
  // Terminated-but-poisoned solves (NaN/inf anywhere in the answer) must not
  // masquerade as Optimal; callers fall back on Numerical.
  bool finite = std::isfinite(result.objective);
  for (const double v : result.x) finite = finite && std::isfinite(v);
  if (!finite) result.status = LpStatus::Numerical;
  return result;
}

}  // namespace mts
