// Weighted set-cover LP relaxation and rounding.
//
// PATHATTACK reduces Force Path Cut to weighted set cover: the universe is
// the set of discovered "constraint paths" (paths that would still beat
// p*), and each removable edge covers the paths containing it.  This module
// solves the LP relaxation exactly and rounds it to an integral cover,
// trying a deterministic descending-x sweep plus a few randomized samples
// and keeping the cheapest valid cover.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/simplex.hpp"

namespace mts {

class Rng;

struct CoveringProblem {
  /// cost[j] of picking element j (an edge), > 0.
  std::vector<double> costs;
  /// sets[i] lists the element indices that cover constraint i (the
  /// removable edges of path i).  Every set must be non-empty.
  std::vector<std::vector<std::size_t>> sets;
};

struct CoveringSolution {
  bool feasible = false;
  std::vector<std::size_t> chosen;  // element indices, ascending
  double cost = 0.0;
  double lp_lower_bound = 0.0;      // LP optimum: certified lower bound
  std::size_t lp_iterations = 0;
  /// True when the LP solve failed (iteration limit, numerical poisoning)
  /// and the greedy cover was substituted; lp_lower_bound is then 0 (no
  /// certified bound).  See DESIGN.md §10 (degradation chain).
  bool fallback_used = false;
  /// Human-readable reason when fallback_used ("lp iteration-limit
  /// (phase 2, 20000 iterations)", "lp numerical", ...).
  std::string fallback_reason;
  /// True when simplex stall detection engaged Bland's anti-cycling rule.
  bool bland_engaged = false;
};

struct CoveringOptions {
  /// Randomized-rounding attempts on top of the deterministic sweep.
  std::size_t randomized_attempts = 8;
  LpOptions lp;
};

/// Solves the LP relaxation of `problem` and rounds to an integral cover.
/// `rng` drives randomized rounding.  Infeasible only when some set is
/// empty (nothing can cover that constraint).
CoveringSolution solve_covering_lp(const CoveringProblem& problem, Rng& rng,
                                   const CoveringOptions& options = {});

/// Classical greedy weighted set cover (max newly-covered per unit cost);
/// used by GreedyPathCover.  Same feasibility semantics.
CoveringSolution solve_covering_greedy(const CoveringProblem& problem);

struct ExactCoverOptions {
  /// Cap on branch-and-bound nodes; instances past the cap return the
  /// incumbent with `proven_optimal = false`.
  std::size_t max_nodes = 200000;
  LpOptions lp;
};

struct ExactCoverSolution {
  bool feasible = false;
  bool proven_optimal = false;
  std::vector<std::size_t> chosen;
  double cost = 0.0;
  std::size_t nodes_explored = 0;
};

/// Exact minimum-cost cover by LP-based branch and bound (branch on the
/// most fractional element; LP relaxation bounds; greedy incumbent).
/// Intended for constraint-generation subproblems (tens of sets), where
/// it certifies global optimality of the Force Path Cut solution.
ExactCoverSolution solve_covering_exact(const CoveringProblem& problem,
                                        const ExactCoverOptions& options = {});

}  // namespace mts
