#include "obs/slowlog.hpp"

#include <cstdio>
#include <filesystem>

#include "core/error.hpp"

namespace mts::obs {

namespace {

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

SlowQueryLog::SlowQueryLog(const std::string& path) : path_(path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  MutexLock lock(mutex_);
  out_.open(p, std::ios::app);
  require(out_.good(), "slowlog: cannot open " + path);
}

void SlowQueryLog::append(const SlowLogEntry& entry) {
  std::string line = "{\"verb\":\"" + json_escape(entry.verb) + "\"";
  line += ",\"id\":" + std::to_string(entry.id);
  line += ",\"latency_ms\":" + number(entry.latency_s * 1e3);
  for (const auto& [key, value] : entry.fields) {
    line += ",\"" + json_escape(key) + "\":" + std::to_string(value);
  }
  if (!entry.error.empty()) line += ",\"error\":\"" + json_escape(entry.error) + "\"";
  line += "}\n";
  // One formatted line per write, flushed under the mutex: concurrent
  // workers never interleave bytes and a tail -f sees whole records.
  MutexLock lock(mutex_);
  out_ << line;
  out_.flush();
}

}  // namespace mts::obs
