// Export: flat metrics.json and Chrome trace JSON.
//
// write_chrome_trace emits a `trace_event`-format document directly
// loadable by chrome://tracing / Perfetto: one complete event ("ph":"X")
// per phase scope, timestamps in microseconds since the registry epoch,
// one tid per recording thread.
//
// write_metrics_json emits the flat machine-readable side-car the bench
// harness stores next to each table's JSON: run attribution (thread
// resolution, timing knob), every counter, histogram summaries with log2
// buckets, and the hierarchical phase rollup.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mts::obs {

/// Run attribution stamped into metrics.json so output files are
/// self-describing (which knobs produced them).  Filled by the caller —
/// obs sits below core and cannot read the thread pool itself.
struct RunInfo {
  std::size_t threads_requested = 0;  // 0 = auto (hardware concurrency)
  std::size_t threads_effective = 0;
  bool timing = true;  // mts::timing_enabled() at export time
};

void write_metrics_json(const MetricsSnapshot& snapshot, const RunInfo& run, std::ostream& out);
void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& out);

/// Convenience file writers (create parent directories; throw on I/O
/// failure via mts::require).
void save_metrics_json(const MetricsSnapshot& snapshot, const RunInfo& run,
                       const std::string& path);
void save_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path);

}  // namespace mts::obs
