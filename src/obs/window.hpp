// Rolling-window latency histogram for long-running services.
//
// The cumulative registry histograms answer "what happened since launch";
// a live daemon also needs "what is happening *now*".  A WindowedHistogram
// keeps a ring of per-interval slots, each a fixed-size log2-bucket
// histogram keyed by its interval index.  record() folds a sample into the
// current slot, lazily reclaiming slots whose interval has scrolled out of
// the window; snapshot() merges the still-live slots into one
// HistogramSnapshot plus the window's span and throughput, so rolling
// p50/p99/QPS come from the same quantile estimator the stats verb uses on
// the cumulative data.
//
// Memory/accuracy trade-off (DESIGN.md §13): slots * kHistogramBuckets
// counters total (the default 60 x 1 s window is ~16 KB), quantiles within
// one log bucket (a factor of 2), and the reported window snaps to whole
// intervals — a sample recorded 59.5 s ago is either in or out with its
// whole slot.
//
// Thread-safe behind one mutex: every caller mutates ring state (even
// record() rotates stale slots), so there is no lock-free fast path worth
// the complexity at per-request rates.  Callers supply the clock reading
// (seconds from any fixed origin, e.g. a server Stopwatch), which keeps
// this class deterministic under test and free of raw clock reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"
#include "obs/metrics.hpp"

namespace mts::obs {

/// Merged view of the live slots at one instant.
struct WindowSnapshot {
  std::uint64_t count = 0;    // samples still inside the window
  double seconds = 0.0;       // span covered: slots * slot_seconds
  double qps = 0.0;           // count / seconds
  double p50_s = 0.0;         // quantile estimates over the merged buckets
  double p99_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double sum_s = 0.0;
};

class WindowedHistogram {
 public:
  /// A window of `slots` intervals of `slot_seconds` each (e.g. 60 x 1 s).
  WindowedHistogram(double slot_seconds, std::size_t slots);

  /// Records `value_s` at time `now_s` (seconds from the caller's fixed
  /// origin; must be nondecreasing across calls for the window to mean
  /// anything — slots keyed in the past are simply merged where they land).
  void record(double now_s, double value_s);

  /// Merges every slot still inside the window ending at `now_s`.
  [[nodiscard]] WindowSnapshot snapshot(double now_s) const;

 private:
  struct Slot {
    std::int64_t key = -1;  // interval index floor(now/slot_seconds); -1 = empty
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // kHistogramBuckets entries
  };

  Slot& slot_for(std::int64_t key) MTS_REQUIRES(mutex_);

  const double slot_seconds_;
  mutable Mutex mutex_;
  std::vector<Slot> slots_ MTS_GUARDED_BY(mutex_);
};

}  // namespace mts::obs
