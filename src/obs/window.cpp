#include "obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace mts::obs {

WindowedHistogram::WindowedHistogram(double slot_seconds, std::size_t slots)
    : slot_seconds_(slot_seconds) {
  require(slot_seconds > 0.0, "WindowedHistogram: slot_seconds must be positive");
  require(slots >= 1, "WindowedHistogram: at least one slot");
  MutexLock lock(mutex_);
  slots_.resize(slots);
  for (Slot& slot : slots_) slot.buckets.assign(kHistogramBuckets, 0);
}

WindowedHistogram::Slot& WindowedHistogram::slot_for(std::int64_t key) {
  Slot& slot = slots_[static_cast<std::size_t>(key) % slots_.size()];
  if (slot.key != key) {
    // The ring position belongs to an interval that has scrolled out (or
    // was never used): reclaim it for the new interval.
    slot.key = key;
    slot.count = 0;
    slot.sum = 0.0;
    slot.min = 0.0;
    slot.max = 0.0;
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
  }
  return slot;
}

void WindowedHistogram::record(double now_s, double value_s) {
  const auto key = static_cast<std::int64_t>(std::floor(now_s / slot_seconds_));
  MutexLock lock(mutex_);
  Slot& slot = slot_for(std::max<std::int64_t>(key, 0));
  if (slot.count == 0) {
    slot.min = value_s;
    slot.max = value_s;
  } else {
    slot.min = std::min(slot.min, value_s);
    slot.max = std::max(slot.max, value_s);
  }
  ++slot.count;
  slot.sum += value_s;
  // Same log2 bucketing as the registry histograms, so the merged window
  // feeds the same HistogramSnapshot::quantile estimator.
  std::size_t b = 0;
  if (value_s >= kHistogramOrigin) {
    b = std::min(static_cast<std::size_t>(std::ilogb(value_s / kHistogramOrigin)) + 1,
                 kHistogramBuckets - 1);
  }
  ++slot.buckets[b];
}

WindowSnapshot WindowedHistogram::snapshot(double now_s) const {
  const auto current = static_cast<std::int64_t>(std::floor(now_s / slot_seconds_));
  const auto span = static_cast<std::int64_t>(slots_.size());
  HistogramSnapshot merged;
  merged.min = std::numeric_limits<double>::infinity();
  merged.max = -std::numeric_limits<double>::infinity();
  merged.buckets.assign(kHistogramBuckets, 0);
  {
    MutexLock lock(mutex_);
    for (const Slot& slot : slots_) {
      // Live slots cover intervals (current - span, current]; anything
      // older is stale ring residue awaiting reclamation.
      if (slot.key < 0 || slot.key > current || slot.key <= current - span) continue;
      merged.count += slot.count;
      merged.sum += slot.sum;
      if (slot.count > 0) {
        merged.min = std::min(merged.min, slot.min);
        merged.max = std::max(merged.max, slot.max);
      }
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) merged.buckets[b] += slot.buckets[b];
    }
  }
  WindowSnapshot snap;
  snap.seconds = slot_seconds_ * static_cast<double>(slots_.size());
  snap.count = merged.count;
  if (merged.count == 0) return snap;
  snap.qps = static_cast<double>(merged.count) / snap.seconds;
  snap.p50_s = merged.quantile(0.50);
  snap.p99_s = merged.quantile(0.99);
  snap.min_s = merged.min;
  snap.max_s = merged.max;
  snap.sum_s = merged.sum;
  return snap;
}

}  // namespace mts::obs
