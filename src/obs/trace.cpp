#include "obs/trace.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "core/error.hpp"

namespace mts::obs {

namespace {

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Phase names are C identifiers with dots/slashes in this codebase, but
/// escape defensively so the emitted JSON is valid for any name.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void open_for_write(std::ofstream& out, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  out.open(p);
  require(out.good(), "obs: cannot open " + path);
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, const RunInfo& run, std::ostream& out) {
  out << "{\"run\":{\"threads_requested\":" << run.threads_requested
      << ",\"threads_effective\":" << run.threads_effective
      << ",\"timing\":" << (run.timing ? "true" : "false") << "}";

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(counter.name) << "\":" << counter.value;
  }
  out << "}";

  out << ",\"histograms\":{";
  first = true;
  for (const auto& hist : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(hist.name) << "\":{\"count\":" << hist.count
        << ",\"sum\":" << number(hist.sum) << ",\"min\":" << number(hist.min)
        << ",\"max\":" << number(hist.max) << ",\"buckets\":[";
    // Sparse bucket encoding: [index, count] pairs for nonzero buckets.
    bool first_bucket = true;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << '[' << b << ',' << hist.buckets[b] << ']';
    }
    out << "]}";
  }
  out << "}";

  out << ",\"phases\":[";
  first = true;
  for (const auto& phase : snapshot.phases) {
    if (!first) out << ',';
    first = false;
    out << "{\"path\":\"" << json_escape(phase.path) << "\",\"count\":" << phase.count
        << ",\"seconds\":" << number(phase.seconds) << '}';
  }
  out << "]";

  out << ",\"trace_events_dropped\":" << snapshot.trace_events_dropped << "}";
}

void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& out) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\"" << json_escape(event.cat)
        << "\",\"ph\":\"X\",\"ts\":" << number(event.ts_s * 1e6)
        << ",\"dur\":" << number(event.dur_s * 1e6) << ",\"pid\":1,\"tid\":" << event.tid;
    // The args object appears only when annotations exist, so traces from
    // arg-free runs are byte-identical to the pre-span format.
    if (!event.args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ',';
        first_arg = false;
        out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
      }
      out << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

void save_metrics_json(const MetricsSnapshot& snapshot, const RunInfo& run,
                       const std::string& path) {
  std::ofstream out;
  open_for_write(out, path);
  write_metrics_json(snapshot, run, out);
  require(out.good(), "obs: write failed for " + path);
}

void save_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path) {
  std::ofstream out;
  open_for_write(out, path);
  write_chrome_trace(events, out);
  require(out.good(), "obs: write failed for " + path);
}

}  // namespace mts::obs
