#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/mutex.hpp"

namespace mts::obs {

namespace detail {

bool env_flag(const char* name) {
  // Cached per name: the obs knobs are read at most twice (metrics, trace)
  // and never change mid-process except through the programmatic overrides.
  static Mutex mutex;
  static std::map<std::string, bool> cache;
  MutexLock lock(mutex);
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  const char* raw = env_raw(name);
  const bool on = raw != nullptr && *raw != '\0' && !(raw[0] == '0' && raw[1] == '\0');
  cache.emplace(name, on);
  return on;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  detail::g_trace_override.store(on ? 1 : 0, std::memory_order_relaxed);
  // Tracing records through the metrics machinery; forcing it on while
  // metrics stay env-off would silently drop every event.
  if (on) set_metrics_enabled(true);
}

namespace {

using Clock = std::chrono::steady_clock;

/// Cap on buffered trace events per thread shard; beyond it events are
/// counted as dropped instead of buffered (a full-scale run can produce
/// millions of dijkstra scopes — the trace must not exhaust memory).
constexpr std::size_t kMaxTraceEventsPerShard = 1u << 20;

std::size_t bucket_of(double value) {
  if (!(value >= kHistogramOrigin)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value / kHistogramOrigin);
  const std::size_t b = static_cast<std::size_t>(exponent) + 1;
  return std::min(b, kHistogramBuckets - 1);
}

/// Single-writer accumulator cell: the owning thread is the only writer,
/// so relaxed load+store read-modify-writes are race-free; concurrent
/// snapshot readers see a consistent (if slightly stale) value.
template <typename T>
void accumulate(std::atomic<T>& cell, T delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

struct PhaseAccum {
  std::uint64_t count = 0;
  double seconds = 0.0;
};

/// Value range covered by bucket `b` (see bucket_of): bucket 0 is
/// [0, origin), the last bucket is open-ended (treated as one octave).
std::pair<double, double> bucket_bounds(std::size_t b) {
  if (b == 0) return {0.0, kHistogramOrigin};
  const double lo = kHistogramOrigin * std::ldexp(1.0, static_cast<int>(b) - 1);
  return {lo, lo * 2.0};
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "HistogramSnapshot::quantile: q out of [0, 1]");
  if (count == 0) return 0.0;
  if (count == 1) return min;
  // Fractional rank in [0, count-1], matching mts::percentile's convention.
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t below = 0;  // samples in buckets before the current one
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (rank < static_cast<double>(below) + in_bucket) {
      // Interpolate at the rank's position within this bucket's range.
      const auto [lo, hi] = bucket_bounds(b);
      const double frac = (rank - static_cast<double>(below)) / in_bucket;
      const double estimate = lo + frac * (hi - lo);
      return std::min(std::max(estimate, min), max);
    }
    below += buckets[b];
  }
  return max;  // rank == count-1 (q == 1) lands here
}

struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};

  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> histograms{};

  // Phases and trace are structurally mutable (map growth, vector append),
  // so they sit behind a shard-local mutex.  The owning thread is all but
  // alone on it: contention only happens against a concurrent snapshot.
  mutable Mutex mutex;
  std::unordered_map<std::string, PhaseAccum> phases MTS_GUARDED_BY(mutex);
  std::vector<TraceEvent> trace MTS_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> trace_dropped{0};

  std::uint32_t tid = 0;

  void zero() MTS_EXCLUDES(mutex) {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
    MutexLock lock(mutex);
    phases.clear();
    trace.clear();
    trace_dropped.store(0, std::memory_order_relaxed);
  }
};

class MetricsRegistry::Impl {
 public:
  // Guards registration tables, the shard list, and the epoch.  The Shard
  // objects the list owns have their own per-shard mutex; only the vector
  // (growth in local_shard) is protected here.
  mutable Mutex mutex;
  std::vector<std::string> counter_names MTS_GUARDED_BY(mutex);
  std::vector<std::string> histogram_names MTS_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<Shard>> shards MTS_GUARDED_BY(mutex);
  Clock::time_point epoch MTS_GUARDED_BY(mutex) = Clock::now();
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Thread-local shard cache.  reset() zeroes shards in place rather than
  // discarding them, so cached pointers stay valid for the process.
  static thread_local Shard* t_shard = nullptr;
  if (t_shard != nullptr) return *t_shard;
  MutexLock lock(impl_->mutex);
  auto shard = std::make_unique<Shard>();
  shard->tid = static_cast<std::uint32_t>(impl_->shards.size());
  t_shard = shard.get();
  impl_->shards.push_back(std::move(shard));
  return *t_shard;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(impl_->mutex);
  auto& names = impl_->counter_names;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return {static_cast<std::uint32_t>(i)};
  }
  require(names.size() < kMaxCounters, "MetricsRegistry: counter capacity exhausted");
  names.emplace_back(name);
  return {static_cast<std::uint32_t>(names.size() - 1)};
}

HistogramId MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(impl_->mutex);
  auto& names = impl_->histogram_names;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return {static_cast<std::uint32_t>(i)};
  }
  require(names.size() < kMaxHistograms, "MetricsRegistry: histogram capacity exhausted");
  names.emplace_back(name);
  return {static_cast<std::uint32_t>(names.size() - 1)};
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  accumulate(local_shard().counters[id.index], delta);
}

void MetricsRegistry::observe(HistogramId id, double value) {
  Shard::Hist& h = local_shard().histograms[id.index];
  accumulate(h.count, std::uint64_t{1});
  accumulate(h.sum, value);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  accumulate(h.buckets[bucket_of(value)], std::uint64_t{1});
}

void MetricsRegistry::record_phase(const std::string& path, double seconds) {
  Shard& shard = local_shard();
  MutexLock lock(shard.mutex);
  PhaseAccum& accum = shard.phases[path];
  ++accum.count;
  accum.seconds += seconds;
}

void MetricsRegistry::record_trace_event(const char* name, double ts_s, double dur_s) {
  Shard& shard = local_shard();
  MutexLock lock(shard.mutex);
  if (shard.trace.size() >= kMaxTraceEventsPerShard) {
    accumulate(shard.trace_dropped, std::uint64_t{1});
    return;
  }
  TraceEvent event;
  event.name = name;
  event.ts_s = ts_s;
  event.dur_s = dur_s;
  event.tid = shard.tid;
  shard.trace.push_back(std::move(event));
}

void MetricsRegistry::record_trace_event(TraceEvent event) {
  Shard& shard = local_shard();
  MutexLock lock(shard.mutex);
  if (shard.trace.size() >= kMaxTraceEventsPerShard) {
    accumulate(shard.trace_dropped, std::uint64_t{1});
    return;
  }
  event.tid = shard.tid;
  shard.trace.push_back(std::move(event));
}

double MetricsRegistry::seconds_since_epoch() const {
  // Latent race surfaced by the thread-safety annotations: epoch is written
  // by reset() under the registry mutex, so an unlocked read here could see
  // a torn time_point on a concurrent reset.  Take the lock (cold path:
  // only reached with metrics enabled).
  MutexLock lock(impl_->mutex);
  return std::chrono::duration<double>(Clock::now() - impl_->epoch).count();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(impl_->mutex);

  snap.counters.resize(impl_->counter_names.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    snap.counters[i].name = impl_->counter_names[i];
  }
  snap.histograms.resize(impl_->histogram_names.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    snap.histograms[i].name = impl_->histogram_names[i];
    snap.histograms[i].min = std::numeric_limits<double>::infinity();
    snap.histograms[i].max = -std::numeric_limits<double>::infinity();
    snap.histograms[i].buckets.assign(kHistogramBuckets, 0);
  }

  std::map<std::string, PhaseAccum> merged_phases;
  for (const auto& shard : impl_->shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const Shard::Hist& h = shard->histograms[i];
      HistogramSnapshot& out = snap.histograms[i];
      out.count += h.count.load(std::memory_order_relaxed);
      out.sum += h.sum.load(std::memory_order_relaxed);
      out.min = std::min(out.min, h.min.load(std::memory_order_relaxed));
      out.max = std::max(out.max, h.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.trace_events_dropped += shard->trace_dropped.load(std::memory_order_relaxed);
    MutexLock shard_lock(shard->mutex);
    // Per-path fold into an ordered std::map; visit order cannot change
    // the merged result.  mts-lint: allow(no-unordered-output)
    for (const auto& [path, accum] : shard->phases) {
      PhaseAccum& merged = merged_phases[path];
      merged.count += accum.count;
      merged.seconds += accum.seconds;
    }
  }

  for (auto& hist : snap.histograms) {
    if (hist.count == 0) {
      hist.min = 0.0;
      hist.max = 0.0;
    }
  }
  snap.phases.reserve(merged_phases.size());
  for (const auto& [path, accum] : merged_phases) {
    snap.phases.push_back({path, accum.count, accum.seconds});
  }
  // Counter/histogram name order is registration order; sort for stable,
  // reader-friendly output.
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) { return a.name < b.name; });
  std::sort(
      snap.histograms.begin(), snap.histograms.end(),
      [](const HistogramSnapshot& a, const HistogramSnapshot& b) { return a.name < b.name; });
  return snap;
}

std::vector<TraceEvent> MetricsRegistry::trace_events() const {
  std::vector<TraceEvent> events;
  MutexLock lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    MutexLock shard_lock(shard->mutex);
    events.insert(events.end(), shard->trace.begin(), shard->trace.end());
  }
  return events;
}

void MetricsRegistry::reset() {
  MutexLock lock(impl_->mutex);
  for (const auto& shard : impl_->shards) shard->zero();
  impl_->epoch = Clock::now();
}

}  // namespace mts::obs
