// Slow-query log: one JSONL line per over-threshold (or failed) request.
//
// A long-running daemon needs the outlier requests themselves, not just
// their histogram bucket: which verb, which client id, how much search
// work, and — on failure — which error taxonomy.  The log is append-only
// JSON-lines so operators can tail it live and post-process with standard
// tools; each append is a single flushed write behind a mutex, so lines
// from concurrent workers never interleave.
//
// Off by default: the server only constructs one when MTS_SLOWLOG (a
// millisecond threshold) is set, so default runs create no file and pay
// nothing.  Durations pass through mts::reported_seconds at the call site,
// keeping MTS_TIMING=0 runs byte-deterministic.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace mts::obs {

/// One logged request.  `fields` carries the per-request work counters as
/// ordered key/count pairs so the obs layer stays ignorant of who counts
/// what (the server fills them from its RequestTrace).
struct SlowLogEntry {
  std::string verb;
  std::uint64_t id = 0;
  double latency_s = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  std::string error;  // taxonomy string; empty on success
};

class SlowQueryLog {
 public:
  /// Opens `path` for appending; throws mts::Error when unwritable.
  explicit SlowQueryLog(const std::string& path);

  /// Serializes `entry` as one JSON object line and flushes it.
  void append(const SlowLogEntry& entry);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mutex mutex_;
  std::ofstream out_ MTS_GUARDED_BY(mutex_);
};

}  // namespace mts::obs
