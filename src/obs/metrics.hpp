// Instrumentation registry: named counters, histograms, and phase rollups.
//
// Design (see DESIGN.md "Observability"):
//   * Off by default.  Every hot-path helper first checks metrics_enabled(),
//     a relaxed atomic load, so an uninstrumented run pays one predictable
//     branch per site and nothing else.  MTS_METRICS=1 or MTS_TRACE=1 (or
//     the programmatic setters) turn recording on.
//   * Per-thread shards.  Each thread records into its own fixed-size block
//     of relaxed atomics, so counters and histograms are contention-free;
//     snapshot() aggregates across shards.  Shards are owned by the
//     registry and outlive their threads, so late snapshots see all work.
//   * Durations obey MTS_TIMING.  ScopedPhase (phase.hpp) and every
//     duration-valued observation route through mts::reported_seconds(), so
//     MTS_TIMING=0 zeroes all reported time while counts stay exact.
//
// Instrumentation sites hold ids in function-local statics:
//
//   static const obs::CounterId kPushed =
//       obs::MetricsRegistry::instance().counter("yen.candidates_pushed");
//   obs::add(kPushed, pushed);
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mts::obs {

namespace detail {
/// -1 = decide from the environment on first query; 0/1 = forced.
inline std::atomic<int> g_metrics_override{-1};
inline std::atomic<int> g_trace_override{-1};
bool env_flag(const char* name);
}  // namespace detail

/// True when counters/histograms/phases are recorded: MTS_METRICS=1,
/// MTS_TRACE=1 (tracing needs phase data), or set_metrics_enabled(true).
inline bool metrics_enabled() {
  const int forced = detail::g_metrics_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return detail::env_flag("MTS_METRICS") || detail::env_flag("MTS_TRACE");
}

/// True when phase scopes additionally emit Chrome trace events.
inline bool trace_enabled() {
  const int forced = detail::g_trace_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return detail::env_flag("MTS_TRACE");
}

/// Programmatic overrides (tests, CLI --trace).  Overrides win over the
/// environment until the process exits.
void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);

/// Shard capacity: registration beyond these limits is a precondition
/// violation (the metric catalog is finite and reviewed, not dynamic).
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxHistograms = 32;
/// Log2 histogram buckets: bucket b counts values in
/// [kHistogramOrigin * 2^(b-1), kHistogramOrigin * 2^b); bucket 0 is
/// everything below the origin, the last bucket absorbs overflow.
inline constexpr std::size_t kHistogramBuckets = 32;
inline constexpr double kHistogramOrigin = 1e-6;  // 1 us for duration values

struct CounterId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // kHistogramBuckets entries

  /// Quantile estimate from the log2 buckets: walks the cumulative counts
  /// to the bucket holding rank q*(count-1), then interpolates linearly
  /// inside that bucket's value range, clamped to the exact [min, max]
  /// observed.  The estimate is exact for single-valued histograms,
  /// nondecreasing in q, and within one bucket width (a factor of 2 at
  /// these log buckets) of the true sample quantile.  Returns 0 when the
  /// histogram is empty; requires q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
};

struct PhaseSnapshot {
  std::string path;  // "cell/attack/oracle", '/'-joined nesting
  std::uint64_t count = 0;
  double seconds = 0.0;  // already gated by MTS_TIMING at record time
};

/// One Chrome trace_event-compatible complete event ("ph":"X").
struct TraceEvent {
  std::string name;   // leaf phase name
  double ts_s = 0.0;  // seconds since registry epoch
  double dur_s = 0.0;
  std::uint32_t tid = 0;   // shard index, stable per thread
  std::string cat = "mts";  // event category; request spans use "mts.request"
  /// Ordered key=value annotations, emitted as the trace "args" object.
  /// Empty for phase events, so pre-span traces stay byte-identical.
  std::vector<std::pair<std::string, std::string>> args;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // name-sorted
  std::vector<HistogramSnapshot> histograms;  // name-sorted
  std::vector<PhaseSnapshot> phases;          // path-sorted
  std::uint64_t trace_events_dropped = 0;
};

class MetricsRegistry {
 public:
  /// Process-wide singleton (function-local static: constructed on first
  /// use, destroyed at normal process exit).
  static MetricsRegistry& instance();

  /// Registers (or looks up) a metric by name and returns its dense id.
  /// Idempotent; intended for function-local statics, not hot loops.
  CounterId counter(std::string_view name);
  HistogramId histogram(std::string_view name);

  /// Hot-path recording.  Caller is responsible for the enabled() check
  /// (the obs::add/obs::observe wrappers below do it).
  void add(CounterId id, std::uint64_t delta);
  void observe(HistogramId id, double value);

  /// Phase rollup + trace entry points for ScopedPhase.
  void record_phase(const std::string& path, double seconds);
  void record_trace_event(const char* name, double ts_s, double dur_s);

  /// Buffers a fully-formed event (request spans: custom cat + args).  The
  /// event's tid is overwritten with the recording thread's shard index;
  /// the same per-shard buffer cap applies.
  void record_trace_event(TraceEvent event);

  /// Seconds since the registry epoch (construction or last reset()).
  [[nodiscard]] double seconds_since_epoch() const;

  /// Aggregates every shard.  Safe to call concurrently with recording;
  /// values recorded while snapshotting may or may not be included.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Copies of all trace events, ordered by (tid, emission order).
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;

  /// Zeroes all counters/histograms, clears phases and trace buffers, and
  /// restarts the epoch.  For tests and per-run isolation in benches.
  void reset();

 private:
  struct Shard;
  class Impl;

  MetricsRegistry();
  ~MetricsRegistry();

  Shard& local_shard();

  std::unique_ptr<Impl> impl_;
};

/// Enabled-gated convenience wrappers used at instrumentation sites.
inline void add(CounterId id, std::uint64_t delta = 1) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().add(id, delta);
}

inline void observe(HistogramId id, double value) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().observe(id, value);
}

}  // namespace mts::obs
