// RAII phase timer: builds the hierarchical per-phase wall-clock breakdown
// and (under MTS_TRACE=1) the Chrome trace event stream.
//
// Each thread keeps a '/'-joined stack of active phase names; a scope's
// rollup key is its full path ("cell/attack/oracle/dijkstra"), so the
// snapshot shows where time goes at every nesting level.  Scopes opened on
// pool worker threads would start at a different root than the same work
// inlined on the calling thread, so task-granularity scopes use
// PhaseKind::Root to reset the path: attribution then never depends on
// which thread a task landed on.
//
// Durations pass through mts::reported_seconds(), so MTS_TIMING=0 zeroes
// every phase/trace duration while scope counts stay exact.  Destruction
// during exception unwind records the phase like any other exit.
#pragma once

#include <cstddef>
#include <string>

#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace mts::obs {

enum class PhaseKind {
  Nested,  // child of whatever phase is active on this thread
  Root,    // new logical root (task boundary): ignores the current stack
};

namespace detail {
/// Current '/'-joined phase path of this thread (grown/truncated in place;
/// no allocation in steady state).
inline thread_local std::string t_phase_path;
}  // namespace detail

class ScopedPhase {
 public:
  /// `name` must outlive the scope (string literals at call sites).
  explicit ScopedPhase(const char* name, PhaseKind kind = PhaseKind::Nested) {
    if (!metrics_enabled()) return;
    active_ = true;
    name_ = name;
    auto& path = detail::t_phase_path;
    if (kind == PhaseKind::Root) {
      saved_path_ = path;
      path.assign(name);
      rooted_ = true;
    } else {
      restore_size_ = path.size();
      if (!path.empty()) path.push_back('/');
      path.append(name);
    }
    start_s_ = MetricsRegistry::instance().seconds_since_epoch();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (!active_) return;
    auto& registry = MetricsRegistry::instance();
    const double end_s = registry.seconds_since_epoch();
    const double dur_s = reported_seconds(end_s - start_s_);
    auto& path = detail::t_phase_path;
    registry.record_phase(path, dur_s);
    if (trace_enabled()) {
      registry.record_trace_event(name_, reported_seconds(start_s_), dur_s);
    }
    if (rooted_) {
      path = saved_path_;
    } else {
      path.resize(restore_size_);
    }
  }

 private:
  const char* name_ = nullptr;
  std::string saved_path_;       // PhaseKind::Root only
  std::size_t restore_size_ = 0;  // PhaseKind::Nested only
  double start_s_ = 0.0;
  bool active_ = false;
  bool rooted_ = false;
};

}  // namespace mts::obs
