// Synthetic city generation.
//
// Produces OSM data (and, via osm::RoadNetwork, routable graphs) from a
// CitySpec.  Deterministic in (spec, seed).  The output goes through the
// exact same OSM-ingestion pipeline a real OpenStreetMap extract would.
#pragma once

#include <cstdint>

#include "citygen/spec.hpp"
#include "osm/model.hpp"
#include "osm/road_network.hpp"

namespace mts::citygen {

/// Generates the OSM representation (nodes, tagged ways, hospital POIs).
osm::OsmData generate_city_osm(const CitySpec& spec, std::uint64_t seed);

/// Generates and builds the routable network (largest SCC, POIs snapped).
osm::RoadNetwork generate_network(const CitySpec& spec, std::uint64_t seed);

/// Convenience: calibrated spec -> network.
osm::RoadNetwork generate_city(City city, double scale, std::uint64_t seed);

}  // namespace mts::citygen
