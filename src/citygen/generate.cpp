#include "citygen/generate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <string>

#include <optional>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "graph/spatial_index.hpp"
#include "osm/projection.hpp"

namespace mts::citygen {

namespace {

using osm::LocalProjection;
using osm::OsmData;
using osm::OsmNode;
using osm::OsmWay;

/// Street classes emitted by the generator, with their tag values.
struct StreetClass {
  const char* highway;
  const char* maxspeed;
  int total_lanes;  // both directions
};

constexpr StreetClass kResidential{"residential", "25 mph", 2};
constexpr StreetClass kArterial{"secondary", "35 mph", 4};
constexpr StreetClass kDiagonal{"primary", "40 mph", 4};
constexpr StreetClass kFreeway{"motorway", "65 mph", 8};
constexpr StreetClass kConnector{"tertiary", "30 mph", 2};

/// Per-street-line decisions shared by all its block faces.
struct LineAttrs {
  StreetClass street_class = kResidential;
  bool oneway = false;
  bool reversed = false;  // travel direction vs. increasing index
  std::string name;
  double width_total = 0.0;
};

struct GenPoint {
  double x = 0.0;
  double y = 0.0;
};

class CityBuilder {
 public:
  CityBuilder(const CitySpec& spec, std::uint64_t seed) : spec_(spec), rng_(seed) {}

  OsmData build() {
    for (std::size_t d = 0; d < spec_.districts.size(); ++d) generate_district(d);
    build_spatial_indexes();
    stitch_districts();
    for (int i = 0; i < spec_.diagonals; ++i) carve_avenue(kDiagonal, "Diagonal", i, 1);
    for (int i = 0; i < spec_.freeways; ++i) carve_avenue(kFreeway, "Freeway", i, 4);
    apply_rivers();
    place_hospitals();
    return finish();
  }

 private:
  // ---- district grids -----------------------------------------------------

  void generate_district(std::size_t d) {
    current_district_ = static_cast<int>(d);
    const DistrictSpec& district = spec_.districts[d];
    const double theta = district.rotation_deg * std::numbers::pi / 180.0;
    const double cos_t = std::cos(theta);
    const double sin_t = std::sin(theta);

    // Node lattice with jitter.
    std::vector<std::size_t> grid(static_cast<std::size_t>(district.rows) * district.cols);
    for (int r = 0; r < district.rows; ++r) {
      for (int c = 0; c < district.cols; ++c) {
        const double gx = c * district.block_w + rng_.normal(0.0, spec_.jitter_sigma);
        const double gy = r * district.block_h + rng_.normal(0.0, spec_.jitter_sigma);
        const double x = district.origin_x + gx * cos_t - gy * sin_t;
        const double y = district.origin_y + gx * sin_t + gy * cos_t;
        grid[static_cast<std::size_t>(r) * district.cols + c] = add_point({x, y});
      }
    }
    auto at = [&](int r, int c) { return grid[static_cast<std::size_t>(r) * district.cols + c]; };

    // Per-line attributes, then block faces.
    const auto row_lines = make_lines(d, district.rows, "St");
    const auto col_lines = make_lines(d, district.cols, "Ave");

    for (int r = 0; r < district.rows; ++r) {
      bool prev_removed = false;
      for (int c = 0; c + 1 < district.cols; ++c) {
        prev_removed = emit_face(row_lines[r], at(r, c), at(r, c + 1), prev_removed);
      }
    }
    for (int c = 0; c < district.cols; ++c) {
      bool prev_removed = false;
      for (int r = 0; r + 1 < district.rows; ++r) {
        prev_removed = emit_face(col_lines[c], at(r, c), at(r + 1, c), prev_removed);
      }
    }
  }

  std::vector<LineAttrs> make_lines(std::size_t district, int count, const char* suffix) {
    std::vector<LineAttrs> lines(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      LineAttrs& line = lines[static_cast<std::size_t>(i)];
      const bool arterial = spec_.arterial_every > 0 && i % spec_.arterial_every == 0;
      line.street_class = arterial ? kArterial : kResidential;
      line.oneway = rng_.chance(spec_.oneway_fraction);
      line.reversed = i % 2 == 1;  // downtown-style alternating directions
      line.name = spec_.name + " D" + std::to_string(district) + " " + std::to_string(i) +
                  (arterial ? std::string(" Main ") : std::string(" ")) + suffix;
      line.width_total =
          line.street_class.total_lanes * kLaneWidthMeters + rng_.uniform(-0.4, 1.2);
    }
    return lines;
  }

  /// Emits one block face unless removal strikes; returns whether it was
  /// removed so callers can thread the clustering state along the line.
  bool emit_face(const LineAttrs& line, std::size_t a, std::size_t b, bool prev_removed) {
    double removal = line.street_class.highway == kArterial.highway
                         ? spec_.street_removal_prob * 0.3
                         : spec_.street_removal_prob;
    if (prev_removed) removal = std::min(0.9, removal * spec_.removal_clustering);
    if (rng_.chance(removal)) return true;
    std::size_t from = a;
    std::size_t to = b;
    if (line.oneway && line.reversed) std::swap(from, to);
    add_way({from, to}, line.street_class, line.name, line.width_total, line.oneway);
    return false;
  }

  // ---- cross-district connectors ------------------------------------------

  void stitch_districts() {
    if (spec_.districts.size() < 2) return;
    int connector_id = 0;
    for (std::size_t a = 0; a < spec_.districts.size(); ++a) {
      for (std::size_t b = a + 1; b < spec_.districts.size(); ++b) {
        stitch_pair(a, b, connector_id);
      }
    }
  }

  void stitch_pair(std::size_t da, std::size_t db, int& connector_id) {
    const double block = spec_.districts[da].block_w;
    const double reach = 3.5 * block;

    struct Candidate {
      std::size_t a, b;
      double dist;
    };
    std::vector<Candidate> candidates;
    const PointGrid& grid_b = district_grids_[db];
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (district_of_[i] != static_cast<int>(da)) continue;
      for (std::uint32_t j : grid_b.within(points_[i].x, points_[i].y, reach)) {
        candidates.push_back({i, j, distance(points_[i], points_[j])});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) { return x.dist < y.dist; });

    std::vector<std::size_t> used;
    const std::size_t max_stitches =
        spec_.stitch_max_per_pair > 0
            ? static_cast<std::size_t>(spec_.stitch_max_per_pair)
            : std::max<std::size_t>(6, candidates.size() / 25);
    for (const auto& cand : candidates) {
      if (used.size() >= 2 * max_stitches) break;
      bool crowded = false;
      for (std::size_t u : used) {
        if (distance(points_[cand.a], points_[u]) < 1.5 * block ||
            distance(points_[cand.b], points_[u]) < 1.5 * block) {
          crowded = true;
          break;
        }
      }
      if (crowded) continue;
      add_way({cand.a, cand.b}, kConnector,
              spec_.name + " Connector " + std::to_string(connector_id++) + " Rd",
              kConnector.total_lanes * kLaneWidthMeters, /*oneway=*/false);
      used.push_back(cand.a);
      used.push_back(cand.b);
    }
  }

  // ---- diagonal avenues & freeways ----------------------------------------

  /// Cuts a straight corridor across the city, hopping between existing
  /// intersections every `stride` samples (stride > 1 = limited access).
  void carve_avenue(const StreetClass& street_class, const char* label, int index, int stride) {
    if (points_.empty()) return;
    const auto [lo, hi] = bounding_box();
    const double block = spec_.districts.front().block_w;

    // Random entry/exit on opposite borders (alternate axis by index).
    GenPoint start;
    GenPoint end;
    if (index % 2 == 0) {
      start = {lo.x, rng_.uniform(lo.y, hi.y)};
      end = {hi.x, rng_.uniform(lo.y, hi.y)};
    } else {
      start = {rng_.uniform(lo.x, hi.x), lo.y};
      end = {rng_.uniform(lo.x, hi.x), hi.y};
    }

    const double span = distance(start, end);
    const int samples = std::max(2, static_cast<int>(span / block));
    std::vector<std::size_t> hops;
    for (int s = 0; s <= samples; s += stride) {
      const double t = static_cast<double>(s) / samples;
      const GenPoint target{start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)};
      const std::size_t nearest = nearest_point(target);
      if (hops.empty() || hops.back() != nearest) hops.push_back(nearest);
    }

    const std::string name =
        spec_.name + " " + label + " " + std::to_string(index) + (stride > 1 ? "" : " Ave");
    const double width = street_class.total_lanes * kLaneWidthMeters;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      // Skip absurd hops (e.g. across an empty gap wider than the reach of
      // a straight avenue).
      if (distance(points_[hops[i]], points_[hops[i + 1]]) > 6.0 * block * stride) continue;
      add_way({hops[i], hops[i + 1]}, street_class, name, width, /*oneway=*/false);
    }
  }

  // ---- rivers ---------------------------------------------------------------

  /// Proper segment intersection (shared endpoints count as crossing —
  /// streets are never exactly river-aligned in practice).
  static bool segments_cross(GenPoint a, GenPoint b, GenPoint c, GenPoint d) {
    auto orient = [](GenPoint p, GenPoint q, GenPoint r) {
      const double v = (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
      return v > 0.0 ? 1 : v < 0.0 ? -1 : 0;
    };
    const int o1 = orient(a, b, c);
    const int o2 = orient(a, b, d);
    const int o3 = orient(c, d, a);
    const int o4 = orient(c, d, b);
    return o1 != o2 && o3 != o4;
  }

  /// Deletes every street crossing a river except those near its bridge
  /// points; bridges are spaced evenly along the river with some jitter.
  void apply_rivers() {
    if (spec_.rivers.empty() || points_.empty()) return;
    const auto [lo, hi] = bounding_box();
    const double block = spec_.districts.front().block_w;
    const double bridge_radius = 1.4 * block;

    for (const RiverSpec& river : spec_.rivers) {
      const GenPoint r1{lo.x + river.fx1 * (hi.x - lo.x), lo.y + river.fy1 * (hi.y - lo.y)};
      const GenPoint r2{lo.x + river.fx2 * (hi.x - lo.x), lo.y + river.fy2 * (hi.y - lo.y)};

      std::vector<GenPoint> bridge_points;
      const int bridges = std::max(1, river.bridges);
      for (int i = 0; i < bridges; ++i) {
        const double t = (i + 0.5) / bridges + rng_.uniform(-0.05, 0.05);
        bridge_points.push_back(
            {r1.x + t * (r2.x - r1.x), r1.y + t * (r2.y - r1.y)});
      }

      std::vector<PendingWay> kept;
      kept.reserve(ways_.size());
      for (auto& way : ways_) {
        const GenPoint a = points_[way.nodes.front()];
        const GenPoint b = points_[way.nodes.back()];
        if (!segments_cross(a, b, r1, r2)) {
          kept.push_back(std::move(way));
          continue;
        }
        const GenPoint mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
        bool near_bridge = false;
        for (const GenPoint& bp : bridge_points) {
          if (distance(mid, bp) <= bridge_radius) {
            near_bridge = true;
            break;
          }
        }
        if (near_bridge) kept.push_back(std::move(way));  // this street is a bridge
      }
      ways_ = std::move(kept);
    }
  }

  // ---- hospitals -----------------------------------------------------------

  void place_hospitals() {
    const auto [lo, hi] = bounding_box();
    for (const HospitalSpec& hospital : spec_.hospitals) {
      const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
      const double offset = rng_.uniform(25.0, 45.0);  // off-road, as in real OSM
      const GenPoint pos{lo.x + hospital.fx * (hi.x - lo.x) + offset * std::cos(angle),
                         lo.y + hospital.fy * (hi.y - lo.y) + offset * std::sin(angle)};
      hospitals_.push_back({hospital.name, pos});
    }
  }

  // ---- assembly ------------------------------------------------------------

  std::size_t add_point(GenPoint p) {
    points_.push_back(p);
    district_of_.push_back(current_district_);
    return points_.size() - 1;
  }

  void add_way(std::vector<std::size_t> node_indices, const StreetClass& street_class,
               std::string name, double width_total, bool oneway) {
    PendingWay way;
    way.nodes = std::move(node_indices);
    way.highway = street_class.highway;
    way.maxspeed = street_class.maxspeed;
    way.lanes = oneway ? std::max(1, street_class.total_lanes / 2) : street_class.total_lanes;
    way.width = oneway ? width_total / 2.0 : width_total;
    way.name = std::move(name);
    way.oneway = oneway;
    ways_.push_back(std::move(way));
  }

  std::pair<GenPoint, GenPoint> bounding_box() const {
    GenPoint lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
    GenPoint hi{-lo.x, -lo.y};
    for (const auto& p : points_) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    return {lo, hi};
  }

  /// Builds the per-district and global point indexes once all district
  /// nodes exist (stitching and avenues add ways, never nodes).
  void build_spatial_indexes() {
    const double cell = spec_.districts.front().block_w;
    std::vector<std::vector<IndexedPoint>> per_district(spec_.districts.size());
    std::vector<IndexedPoint> all;
    all.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const IndexedPoint p{points_[i].x, points_[i].y, static_cast<std::uint32_t>(i)};
      per_district[static_cast<std::size_t>(district_of_[i])].push_back(p);
      all.push_back(p);
    }
    district_grids_.clear();
    district_grids_.reserve(per_district.size());
    for (auto& pts : per_district) district_grids_.emplace_back(std::move(pts), cell);
    global_grid_.emplace(std::move(all), cell);
  }

  std::size_t nearest_point(GenPoint target) const {
    const auto hit = global_grid_->nearest(target.x, target.y);
    return hit ? static_cast<std::size_t>(*hit) : 0;
  }

  static double distance(GenPoint a, GenPoint b) {
    return std::hypot(a.x - b.x, a.y - b.y);
  }

  OsmData finish() {
    OsmData data;
    const LocalProjection projection(spec_.anchor_lat, spec_.anchor_lon);

    data.nodes.reserve(points_.size() + hospitals_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
      OsmNode node;
      node.id = OsmNodeId(static_cast<std::int64_t>(i) + 1);
      const auto ll = projection.to_latlon(points_[i].x, points_[i].y);
      node.lat = ll.lat;
      node.lon = ll.lon;
      data.nodes.push_back(std::move(node));
    }
    for (std::size_t i = 0; i < hospitals_.size(); ++i) {
      OsmNode node;
      node.id = OsmNodeId(static_cast<std::int64_t>(points_.size() + i) + 1);
      const auto ll = projection.to_latlon(hospitals_[i].second.x, hospitals_[i].second.y);
      node.lat = ll.lat;
      node.lon = ll.lon;
      node.tags["amenity"] = "hospital";
      node.tags["name"] = hospitals_[i].first;
      data.nodes.push_back(std::move(node));
    }

    data.ways.reserve(ways_.size());
    for (std::size_t i = 0; i < ways_.size(); ++i) {
      const PendingWay& pending = ways_[i];
      OsmWay way;
      way.id = OsmWayId(static_cast<std::int64_t>(i) + 1000000);
      for (std::size_t idx : pending.nodes) {
        way.node_refs.push_back(OsmNodeId(static_cast<std::int64_t>(idx) + 1));
      }
      way.tags["highway"] = pending.highway;
      way.tags["maxspeed"] = pending.maxspeed;
      way.tags["lanes"] = std::to_string(pending.lanes);
      char width_buf[32];
      std::snprintf(width_buf, sizeof width_buf, "%.1f", pending.width);
      way.tags["width"] = width_buf;
      way.tags["name"] = pending.name;
      if (pending.oneway) way.tags["oneway"] = "yes";
      data.ways.push_back(std::move(way));
    }
    return data;
  }

  struct PendingWay {
    std::vector<std::size_t> nodes;
    std::string highway;
    std::string maxspeed;
    int lanes = 1;
    double width = 3.35;
    std::string name;
    bool oneway = false;
  };

  const CitySpec& spec_;
  Rng rng_;
  std::vector<GenPoint> points_;
  std::vector<int> district_of_;
  int current_district_ = 0;
  std::vector<PendingWay> ways_;
  std::vector<std::pair<std::string, GenPoint>> hospitals_;
  std::vector<PointGrid> district_grids_;
  std::optional<PointGrid> global_grid_;
};

}  // namespace

OsmData generate_city_osm(const CitySpec& spec, std::uint64_t seed) {
  require(!spec.districts.empty(), "generate_city_osm: spec has no districts");
  CityBuilder builder(spec, seed);
  return builder.build();
}

osm::RoadNetwork generate_network(const CitySpec& spec, std::uint64_t seed) {
  const OsmData data = generate_city_osm(spec, seed);
  osm::BuildOptions options;
  options.center = osm::LatLon{spec.anchor_lat, spec.anchor_lon};
  return osm::RoadNetwork::build(data, options);
}

osm::RoadNetwork generate_city(City city, double scale, std::uint64_t seed) {
  return generate_network(city_spec(city, scale), seed);
}

}  // namespace mts::citygen
