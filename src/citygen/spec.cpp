#include "citygen/spec.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mts::citygen {

const char* to_string(City city) {
  switch (city) {
    case City::Boston: return "Boston";
    case City::SanFrancisco: return "San Francisco";
    case City::Chicago: return "Chicago";
    case City::LosAngeles: return "Los Angeles";
  }
  return "Unknown";
}

namespace {

/// Scales a base grid dimension so node counts grow ~linearly in `scale`.
int scaled(int base, double scale) {
  return std::max(4, static_cast<int>(std::lround(base * std::sqrt(scale))));
}

/// District origins are calibrated for scale 1; they must shrink/grow with
/// the grids they separate or scaled-down cities fall apart into islands.
double offset(double base, double scale) { return base * std::sqrt(scale); }

}  // namespace

CitySpec city_spec(City city, double scale) {
  require(scale > 0.0, "city_spec: scale must be positive");
  CitySpec spec;
  spec.city = city;
  spec.name = to_string(city);

  switch (city) {
    case City::Boston: {
      // Organic web: three small rotated grids, heavy jitter and removal,
      // radial "square" avenues.  Lowest latticeness, lowest degree (4.60).
      spec.anchor_lat = 42.3601;
      spec.anchor_lon = -71.0589;
      spec.districts = {
          {0.0, 0.0, scaled(19, scale), scaled(17, scale), 95.0, 105.0, 12.0},
          {offset(1780.0, scale), offset(350.0, scale), scaled(15, scale), scaled(14, scale),
           90.0, 100.0, -28.0},
          {offset(450.0, scale), offset(1950.0, scale), scaled(14, scale), scaled(15, scale),
           105.0, 95.0, 38.0},
      };
      spec.jitter_sigma = 22.0;
      spec.street_removal_prob = 0.27;  // redundancy-poor: few parallel routes
      spec.removal_clustering = 3.2;     // correlated gaps -> real barriers
      spec.oneway_fraction = 0.20;
      spec.stitch_max_per_pair = 2;      // scarce bridges between districts
      spec.arterial_every = 4;
      spec.diagonals = 4;
      // Charles-River-like barrier plus a Fort-Point-style channel: the
      // scarcity of crossings is what makes Boston's alternative routes
      // expensive (Table X).
      spec.rivers = {
          {-0.05, 0.58, 1.05, 0.70, 2},
          {0.58, -0.05, 0.72, 0.55, 2},
      };
      spec.hospitals = {
          {"Brigham and Women's Hospital", 0.22, 0.30},
          {"Massachusetts General Hospital", 0.42, 0.62},
          {"Boston Medical Center", 0.36, 0.18},
          {"Tufts Medical Center", 0.55, 0.45},
      };
      break;
    }
    case City::SanFrancisco: {
      // Two rotated grid systems meeting at a Market-Street-like seam.
      spec.anchor_lat = 37.7749;
      spec.anchor_lon = -122.4194;
      spec.districts = {
          {0.0, 0.0, scaled(22, scale), scaled(19, scale), 100.0, 90.0, 0.0},
          {offset(2050.0, scale), offset(-500.0, scale), scaled(16, scale), scaled(14, scale),
           110.0, 100.0, 45.0},
      };
      spec.jitter_sigma = 6.0;
      spec.street_removal_prob = 0.10;
      spec.oneway_fraction = 0.30;
      spec.arterial_every = 3;
      spec.diagonals = 1;
      spec.stitch_max_per_pair = 14;  // the seam is crossed block after block
      // No internal river: SF's water bounds the peninsula instead of
      // splitting it, so the Market-Street grid seam is the main
      // routing constraint.
      spec.hospitals = {
          {"UCSF Medical Center at Mission Bay", 0.68, 0.28},
          {"Zuckerberg San Francisco General Hospital", 0.55, 0.15},
          {"CPMC Van Ness Campus", 0.30, 0.60},
          {"Kaiser Permanente San Francisco", 0.20, 0.72},
      };
      break;
    }
    case City::Chicago: {
      // One near-perfect lattice plus the diagonal avenues (Milwaukee,
      // Ogden, ...).  Highest latticeness.
      spec.anchor_lat = 41.8781;
      spec.anchor_lon = -87.6298;
      spec.districts = {
          {0.0, 0.0, scaled(36, scale), scaled(36, scale), 100.0, 100.0, 0.0},
      };
      spec.jitter_sigma = 4.0;
      spec.street_removal_prob = 0.06;  // near-complete grid: alternatives abound
      spec.oneway_fraction = 0.42;
      spec.arterial_every = 3;
      spec.diagonals = 4;
      // The Chicago River is bridged roughly every block downtown, so it
      // barely constrains routing.
      spec.rivers = {
          {-0.05, 0.52, 1.05, 0.60, 9},
      };
      spec.hospitals = {
          {"Northwestern Memorial Hospital", 0.62, 0.58},
          {"Rush University Medical Center", 0.35, 0.48},
          {"University of Chicago Medical Center", 0.58, 0.15},
          {"Advocate Illinois Masonic Medical Center", 0.45, 0.82},
      };
      break;
    }
    case City::LosAngeles: {
      // Sprawl: four districts with slightly different orientations,
      // stitched by arterials and crossed by freeways.  Largest graph.
      spec.anchor_lat = 34.0522;
      spec.anchor_lon = -118.2437;
      spec.districts = {
          {0.0, 0.0, scaled(22, scale), scaled(24, scale), 110.0, 100.0, 0.0},
          {offset(2800.0, scale), offset(150.0, scale), scaled(20, scale), scaled(21, scale),
           105.0, 110.0, 8.0},
          {offset(150.0, scale), offset(2500.0, scale), scaled(19, scale), scaled(22, scale),
           100.0, 105.0, -6.0},
          {offset(2850.0, scale), offset(2600.0, scale), scaled(20, scale), scaled(20, scale),
           115.0, 100.0, 3.0},
      };
      spec.jitter_sigma = 8.0;
      spec.street_removal_prob = 0.25;
      spec.oneway_fraction = 0.28;
      spec.arterial_every = 5;
      spec.diagonals = 2;
      spec.freeways = 3;
      // LA-River-style channel with regular crossings.
      spec.rivers = {
          {0.62, -0.05, 0.74, 1.05, 5},
      };
      spec.hospitals = {
          {"LA Downtown Medical Center", 0.48, 0.52},
          {"Cedars-Sinai Medical Center", 0.15, 0.70},
          {"Ronald Reagan UCLA Medical Center", 0.08, 0.40},
          {"Keck Hospital of USC", 0.72, 0.35},
      };
      break;
    }
  }
  return spec;
}

CitySpec latticeness_spec(double organic, double scale) {
  require(organic >= 0.0 && organic <= 1.0, "latticeness_spec: organic must be in [0, 1]");
  CitySpec spec = city_spec(City::Chicago, scale);
  spec.name = "Synthetic(organic=" + std::to_string(organic) + ")";
  // Interpolate the knobs that distinguish Chicago (0) from Boston (1).
  spec.jitter_sigma = 2.5 + organic * (22.0 - 2.5);
  spec.street_removal_prob = 0.06 + organic * (0.27 - 0.06);
  spec.removal_clustering = 1.0 + organic * 2.2;
  // Bridges thin out as the city gets more organic (9 -> 2).
  spec.rivers = {{-0.05, 0.52, 1.05, 0.60,
                  static_cast<int>(std::lround(9.0 - organic * 7.0))}};
  // Rotate a sub-district progressively to break the global grid.
  if (spec.districts.size() == 1 && organic > 0.0) {
    DistrictSpec rotated = spec.districts[0];
    const int half_rows = std::max(4, rotated.rows / 2);
    const int half_cols = std::max(4, rotated.cols / 2);
    spec.districts[0].rows = half_rows;
    spec.districts[0].cols = spec.districts[0].cols;
    rotated.rows = rotated.rows - half_rows + 1;
    rotated.cols = half_cols;
    rotated.origin_x = 0.0;
    rotated.origin_y = half_rows * spec.districts[0].block_h + 120.0;
    rotated.rotation_deg = organic * 35.0;
    spec.districts.push_back(rotated);
  }
  return spec;
}

}  // namespace mts::citygen
