// Synthetic city specifications.
//
// The paper evaluates on OSM extracts of Boston, San Francisco, Chicago
// and Los Angeles.  Offline, we synthesize street networks whose *shape*
// matches each city's archetype: Chicago a near-perfect lattice with
// diagonal avenues, Boston an organic low-latticeness web, San Francisco
// two rotated grid systems (the Market Street divide), Los Angeles a
// multi-district sprawl stitched by freeways.  One-way share and street
// removal are tuned so average node degree lands in the paper's Table I
// range (4.6 - 5.6), and a single `organic` dial exposes latticeness for
// ablation sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mts::citygen {

enum class City { Boston, SanFrancisco, Chicago, LosAngeles };

const char* to_string(City city);

/// All four cities, in the paper's order.
inline constexpr City kAllCities[] = {City::Boston, City::SanFrancisco, City::Chicago,
                                      City::LosAngeles};

/// One rectangular grid district.
struct DistrictSpec {
  double origin_x = 0.0;  // meters, offset of the district's grid origin
  double origin_y = 0.0;
  int rows = 10;
  int cols = 10;
  double block_w = 100.0;  // meters
  double block_h = 100.0;
  double rotation_deg = 0.0;
};

struct HospitalSpec {
  std::string name;
  double fx = 0.5;  // fractional position inside the city bounding box
  double fy = 0.5;
};

/// A water barrier crossed only at a few bridges.  Rivers are what make
/// organic cities' alternative routes expensive (Boston's Charles River,
/// SF's bay shore): any detour must reach the next bridge.  Endpoints are
/// fractions of the generated city's bounding box.
struct RiverSpec {
  double fx1 = 0.0;
  double fy1 = 0.5;
  double fx2 = 1.0;
  double fy2 = 0.5;
  int bridges = 3;
};

struct CitySpec {
  City city = City::Boston;
  std::string name;
  double anchor_lat = 0.0;
  double anchor_lon = 0.0;
  std::vector<DistrictSpec> districts;
  /// Gaussian positional noise applied to every intersection (meters).
  double jitter_sigma = 3.0;
  /// Probability a residential block face is deleted (arterials use 30%).
  double street_removal_prob = 0.15;
  /// Removal clustering: multiplier applied to the removal probability of
  /// the face following a removed face on the same street line.  > 1
  /// produces correlated gaps — contiguous barriers that kill parallel
  /// alternatives the way organic cities do (capped at 0.9 per face).
  double removal_clustering = 1.0;
  /// Probability a street line is one-way (direction alternates by index).
  double oneway_fraction = 0.3;
  /// Every k-th row/column is an arterial (faster, more lanes).
  int arterial_every = 5;
  /// Number of long diagonal avenues cut through the city.
  int diagonals = 2;
  /// Number of freeways (motorway class, sparse access); LA only by default.
  int freeways = 0;
  /// Cap on connector streets between each district pair (0 = automatic,
  /// proportional to the shared border).  Small values model scarce
  /// crossings (Boston's bridges); large values a heavily-crossed seam
  /// (SF's Market Street).
  int stitch_max_per_pair = 0;
  /// Water barriers; streets crossing a river are deleted except near its
  /// bridge points.
  std::vector<RiverSpec> rivers;
  std::vector<HospitalSpec> hospitals;
};

/// The calibrated spec for `city`, scaled so node count grows linearly
/// with `scale` (scale 1 = a few thousand intersections; ~10 approaches
/// the paper's full-size graphs).
CitySpec city_spec(City city, double scale = 1.0);

/// A tunable-latticeness spec for ablation sweeps: `organic` in [0, 1]
/// interpolates from a perfect Chicago-like grid (0) to a heavily
/// perturbed Boston-like web (1).  Node count follows `scale` as above.
CitySpec latticeness_spec(double organic, double scale = 1.0);

}  // namespace mts::citygen
