#include "viz/geojson.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace mts::viz {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

std::string coordinate(const osm::RoadNetwork& network, NodeId n) {
  const auto ll = network.projection().to_latlon(network.graph().x(n), network.graph().y(n));
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%.7f,%.7f]", ll.lon, ll.lat);
  return buf;
}

}  // namespace

std::string render_attack_geojson(const osm::RoadNetwork& network, const Path& p_star,
                                  const std::vector<EdgeId>& removed_edges, NodeId source,
                                  NodeId target, const GeoJsonOptions& options) {
  const auto& g = network.graph();
  std::vector<std::uint8_t> role(g.num_edges(), 0);  // 0 road, 1 p*, 2 removed
  for (EdgeId e : p_star.edges) role[e.value()] = 1;
  for (EdgeId e : removed_edges) role[e.value()] = 2;

  std::ostringstream out;
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  auto separator = [&] {
    if (!first) out << ',';
    first = false;
  };

  static const char* kRoleNames[] = {"road", "p_star", "removed"};
  for (EdgeId e : g.edges()) {
    if (role[e.value()] == 0 && !options.roads) continue;
    separator();
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":["
        << coordinate(network, g.edge_from(e)) << ',' << coordinate(network, g.edge_to(e))
        << "]},\"properties\":{\"role\":\"" << kRoleNames[role[e.value()]] << '"';
    if (options.attributes) {
      const auto& seg = network.segment(e);
      out << ",\"highway\":\"" << osm::to_string(seg.highway) << "\",\"lanes\":" << seg.lanes
          << ",\"length_m\":" << seg.length_m << ",\"artificial\":"
          << (seg.artificial ? "true" : "false");
      const auto& name = network.segment_name(e);
      if (!name.empty()) out << ",\"name\":\"" << json_escape(name) << '"';
    }
    out << "}}";
  }

  const NodeId endpoints[] = {source, target};
  const char* endpoint_roles[] = {"source", "target"};
  for (int i = 0; i < 2; ++i) {
    separator();
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\",\"coordinates\":"
        << coordinate(network, endpoints[i]) << "},\"properties\":{\"role\":\""
        << endpoint_roles[i] << "\"}}";
  }
  out << "]}";
  return out.str();
}

void save_attack_geojson(const std::string& path, const osm::RoadNetwork& network,
                         const Path& p_star, const std::vector<EdgeId>& removed_edges,
                         NodeId source, NodeId target, const GeoJsonOptions& options) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "save_attack_geojson: cannot open " + path);
  out << render_attack_geojson(network, p_star, removed_edges, source, target, options);
}

}  // namespace mts::viz
