// GeoJSON export of networks and attacks.
//
// SVG figures match the paper; GeoJSON makes the same data loadable in
// real GIS tooling (QGIS, kepler.gl, geojson.io) with WGS84 coordinates
// recovered through the network's projection.
#pragma once

#include <string>
#include <vector>

#include "graph/path.hpp"
#include "osm/road_network.hpp"

namespace mts::viz {

using mts::EdgeId;
using mts::NodeId;
using mts::Path;

struct GeoJsonOptions {
  /// Skip plain (non-highlighted) road segments to keep files small.
  bool roads = true;
  /// Include per-segment attributes (highway class, name, lanes).
  bool attributes = true;
};

/// FeatureCollection with one LineString per road segment (property
/// "role": "road" | "p_star" | "removed") and Point features for the
/// source ("role": "source") and target ("role": "target").
std::string render_attack_geojson(const osm::RoadNetwork& network, const Path& p_star,
                                  const std::vector<EdgeId>& removed_edges, NodeId source,
                                  NodeId target, const GeoJsonOptions& options = {});

/// Writes the GeoJSON to `path` (creating parent directories).
void save_attack_geojson(const std::string& path, const osm::RoadNetwork& network,
                         const Path& p_star, const std::vector<EdgeId>& removed_edges,
                         NodeId source, NodeId target, const GeoJsonOptions& options = {});

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& raw);

}  // namespace mts::viz
