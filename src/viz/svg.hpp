// SVG rendering of attack experiments (paper Figures 1-4).
//
// Reproduces the figures' visual language: grey street network, blue
// chosen alternative route p*, red removed road segments, blue source dot,
// yellow hospital dot.
#pragma once

#include <string>
#include <vector>

#include "graph/path.hpp"
#include "osm/road_network.hpp"

namespace mts::viz {

using mts::EdgeId;
using mts::NodeId;
using mts::Path;

struct RenderOptions {
  double width_px = 1200.0;
  double margin_px = 24.0;
  std::string background = "#ffffff";
  std::string road_color = "#c9c9c9";
  std::string p_star_color = "#1f5fd7";
  std::string removed_color = "#d7261f";
  std::string source_color = "#1f5fd7";
  std::string target_color = "#f2c414";
  double road_width = 1.0;
  double p_star_width = 3.5;
  double removed_width = 4.0;
  double endpoint_radius = 9.0;
  std::string title;
};

/// Renders the network with an attack overlay to an SVG string.
std::string render_attack_svg(const osm::RoadNetwork& network, const Path& p_star,
                              const std::vector<EdgeId>& removed_edges, NodeId source,
                              NodeId target, const RenderOptions& options = {});

/// Writes the SVG to `path` (creating parent directories).
void save_attack_svg(const std::string& path, const osm::RoadNetwork& network,
                     const Path& p_star, const std::vector<EdgeId>& removed_edges,
                     NodeId source, NodeId target, const RenderOptions& options = {});

}  // namespace mts::viz
