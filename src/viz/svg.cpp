#include "viz/svg.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/error.hpp"

namespace mts::viz {

namespace {

struct Bounds {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  void include(double x, double y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
  }
  [[nodiscard]] double width() const { return std::max(1.0, max_x - min_x); }
  [[nodiscard]] double height() const { return std::max(1.0, max_y - min_y); }
};

class SvgWriter {
 public:
  SvgWriter(Bounds bounds, const RenderOptions& options)
      : bounds_(bounds),
        options_(options),
        scale_((options.width_px - 2 * options.margin_px) / bounds.width()),
        height_px_(bounds.height() * scale_ + 2 * options.margin_px) {}

  void open() {
    out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
         << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options_.width_px
         << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << options_.width_px << " "
         << height_px_ << "\">\n"
         << "<rect width=\"100%\" height=\"100%\" fill=\"" << options_.background << "\"/>\n";
    if (!options_.title.empty()) {
      out_ << "<text x=\"" << options_.margin_px << "\" y=\"" << options_.margin_px * 0.8
           << "\" font-family=\"sans-serif\" font-size=\"16\" fill=\"#333\">" << options_.title
           << "</text>\n";
    }
  }

  void line(double x1, double y1, double x2, double y2, const std::string& color,
            double stroke_width) {
    out_ << "<line x1=\"" << px(x1) << "\" y1=\"" << py(y1) << "\" x2=\"" << px(x2)
         << "\" y2=\"" << py(y2) << "\" stroke=\"" << color << "\" stroke-width=\""
         << stroke_width << "\" stroke-linecap=\"round\"/>\n";
  }

  void circle(double x, double y, double radius, const std::string& fill) {
    out_ << "<circle cx=\"" << px(x) << "\" cy=\"" << py(y) << "\" r=\"" << radius
         << "\" fill=\"" << fill << "\" stroke=\"#333\" stroke-width=\"1.5\"/>\n";
  }

  std::string close() {
    out_ << "</svg>\n";
    return out_.str();
  }

 private:
  // SVG y grows downward; city y grows northward.
  [[nodiscard]] double px(double x) const {
    return options_.margin_px + (x - bounds_.min_x) * scale_;
  }
  [[nodiscard]] double py(double y) const {
    return height_px_ - options_.margin_px - (y - bounds_.min_y) * scale_;
  }

  Bounds bounds_;
  const RenderOptions& options_;
  double scale_;
  double height_px_;
  std::ostringstream out_;
};

}  // namespace

std::string render_attack_svg(const osm::RoadNetwork& network, const Path& p_star,
                              const std::vector<EdgeId>& removed_edges, NodeId source,
                              NodeId target, const RenderOptions& options) {
  const auto& g = network.graph();
  Bounds bounds;
  for (NodeId n : g.nodes()) bounds.include(g.x(n), g.y(n));

  SvgWriter svg(bounds, options);
  svg.open();

  std::vector<std::uint8_t> highlighted(g.num_edges(), 0);
  for (EdgeId e : p_star.edges) highlighted[e.value()] = 1;
  for (EdgeId e : removed_edges) highlighted[e.value()] = 2;

  auto draw_edges = [&](std::uint8_t layer, const std::string& color, double width) {
    for (EdgeId e : g.edges()) {
      if (highlighted[e.value()] != layer) continue;
      const NodeId u = g.edge_from(e);
      const NodeId v = g.edge_to(e);
      svg.line(g.x(u), g.y(u), g.x(v), g.y(v), color, width);
    }
  };
  draw_edges(0, options.road_color, options.road_width);
  draw_edges(1, options.p_star_color, options.p_star_width);
  draw_edges(2, options.removed_color, options.removed_width);

  svg.circle(g.x(source), g.y(source), options.endpoint_radius, options.source_color);
  svg.circle(g.x(target), g.y(target), options.endpoint_radius, options.target_color);
  return svg.close();
}

void save_attack_svg(const std::string& path, const osm::RoadNetwork& network,
                     const Path& p_star, const std::vector<EdgeId>& removed_edges,
                     NodeId source, NodeId target, const RenderOptions& options) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "save_attack_svg: cannot open " + path);
  out << render_attack_svg(network, p_star, removed_edges, source, target, options);
}

}  // namespace mts::viz
