// Deterministic load generator for the routed daemon.
//
// Synthesizes a reproducible request stream (fixed seed => byte-identical
// requests, independent of timing or connection count), replays it over N
// concurrent connections with a bounded in-flight window per connection,
// and reports latency percentiles and throughput.  Latency values pass
// through reported_seconds(), so MTS_TIMING=0 zeroes every duration in the
// report while counts stay exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace mts::net {

/// Which request types the stream contains.  Mixed is the service smoke:
/// mostly routes, some k-alternative queries, occasional attacks.
enum class Mix : std::uint8_t { Route, Kalt, Attack, Table, Mixed };

const char* to_string(Mix mix);

/// Parses "route" | "kalt" | "attack" | "table" | "mixed"; throws
/// InvalidInput naming the offending token otherwise.
Mix parse_mix(std::string_view token);

struct LoadgenOptions {
  std::uint64_t requests = 1000;
  std::size_t connections = 4;
  std::size_t window = 16;  // max in-flight requests per connection
  std::uint64_t seed = 7;
  Mix mix = Mix::Route;
  std::uint32_t kalt_k = 4;       // k for kalt requests
  std::uint32_t attack_rank = 8;  // forced path rank for attack requests
  std::uint32_t table_dim = 4;    // sources/targets per table request
  WeightKind weight = WeightKind::Time;
  /// Overload-aware client behavior (both default off, so a replay with an
  /// unarmed server sends byte-identical wire traffic to the pre-overload
  /// client).  `max_reconnects` lets a connection that dies mid-load dial
  /// back in — capped exponential backoff with deterministic jitter (see
  /// reconnect_backoff_s) — and re-send its unanswered requests.
  /// `retry_limit` re-sends a request up to that many times when the
  /// server answers `overloaded` or `deadline-exceeded` (every other error
  /// taxonomy is terminal).
  std::size_t max_reconnects = 0;
  std::uint32_t retry_limit = 0;
  /// When non-empty, every raw response line is written here sorted by
  /// request id, one per line — an A/B parity artifact: two runs against
  /// the same snapshot and stream (same seed/mix/requests) must produce
  /// byte-identical dumps regardless of server config (ci.sh diffs
  /// MTS_CH=1 vs MTS_CH=0 this way).  Retried requests record only their
  /// terminal response.
  std::string dump_path;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;  // responses received (ok + errors)
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;   // structured `err` responses (terminal only)
  std::uint64_t dropped = 0;  // sent but never answered (connection died)
  std::uint64_t retried = 0;     // re-sends after overloaded/deadline-exceeded
  std::uint64_t reconnects = 0;  // successful mid-load reconnections
  std::uint64_t failed_connections = 0;
  /// True when any connection died or any request was dropped: the latency
  /// percentiles below then summarize only the requests that completed —
  /// a partial window, not the full offered load.
  bool partial = false;
  std::string first_failure;  // taxonomy of the first connection failure
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
};

/// Backoff before successful-reconnect attempt `attempt` (1-based) on
/// `connection`: capped exponential (10 ms doubling to 640 ms) scaled by
/// deterministic jitter in [0.5, 1.0] drawn from an RNG stream derived
/// from (seed, connection, attempt).  Pure — same inputs, same delay on
/// every machine — so a replay with reconnects is still reproducible.
double reconnect_backoff_s(std::uint64_t seed, std::size_t connection, std::size_t attempt);

/// The deterministic request stream: request i has id i+1, endpoints drawn
/// from mts::Rng seeded by `options.seed` alone.  Identical inputs produce
/// an identical vector on every machine and run.
std::vector<Request> synthesize_requests(const LoadgenOptions& options, std::size_t num_nodes);

/// One-shot client round trip on a dedicated connection: sends `request`
/// and blocks for its response line.  Throws Error when the daemon is
/// unreachable or hangs up before answering.  Used by `mts stats` and the
/// loadgen post-run server snapshot.
Response request_once(const std::string& host, std::uint16_t port, const Request& request);

/// Connects to a running routed daemon, replays the synthesized stream,
/// and blocks until every request is answered or its connection dies.  A
/// connection dying mid-load (e.g. the daemon draining on SIGTERM) is not
/// an exception — it surfaces as dropped > 0 plus first_failure, so the
/// caller decides whether a partial replay is a failure.  Throws Error
/// only when the daemon is unreachable up front.
LoadReport run_loadgen(const std::string& host, std::uint16_t port,
                       const LoadgenOptions& options);

}  // namespace mts::net
