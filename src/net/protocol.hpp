// The routed wire protocol: line-delimited text requests and responses.
//
// One request per line, space-separated tokens, every request carrying a
// client-chosen id echoed in its response so pipelined requests may be
// answered out of order:
//
//   ping   <id>
//   graph  <id>
//   stats  <id>
//   route  <id> <src> <dst> [time|length]
//   kalt   <id> <src> <dst> <k> [time|length]
//   table  <id> <src,src,...> <dst,dst,...> [time|length]
//   attack <id> <src> <dst> <rank> <algorithm> [time|length]
//
// Every verb accepts one optional final `deadline=<ms>` token (after the
// weight, when both appear): the client's per-request deadline in
// milliseconds, overriding the server's MTS_DEADLINE_MS default.  A request
// that cannot finish in time answers `err <id> deadline-exceeded: ...`.
//
// Responses:
//
//   ok  <id> pong
//   ok  <id> graph nodes=N edges=M pois=P
//   ok  <id> stats <key=value ...>   (sorted keys; see DESIGN.md §13)
//   ok  <id> route found=F dist=D hops=H
//   ok  <id> kalt paths=N best=B worst=W
//   ok  <id> table rows=R cols=C vals=<v,v,...>   (row-major, %.9g each)
//   ok  <id> attack status=S removed=N cost=C
//   err <id> <category>: <message>
//
// Parsing is strict in the CLI-validation style: every numeric token must
// be fully consumed, ids/nodes fit their integer types, unknown verbs and
// trailing junk are rejected with the exact offending token, and the error
// category on the wire is the quarantine taxonomy of PR 5
// (core/error.hpp), so a client can tell a budget exhaustion from a fault
// injection from malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "attack/algorithms.hpp"

namespace mts::net {

/// Which weight vector a query runs under (paper: TIME and LENGTH).
enum class WeightKind : std::uint8_t { Time, Length };

const char* to_string(WeightKind kind);

enum class Verb : std::uint8_t { Ping, Graph, Stats, Route, Kalt, Table, Attack };

const char* to_string(Verb verb);

/// Protocol caps: a request beyond these is rejected at parse time, before
/// any search runs (they bound per-request work independently of budgets).
inline constexpr std::uint32_t kMaxAlternatives = 64;
inline constexpr std::uint32_t kMaxPathRank = 512;
/// Side cap for `table`: at most 8x8 distances per request, so the largest
/// table costs about as much as a handful of route queries.
inline constexpr std::uint32_t kMaxTableDim = 8;
/// Cap on the per-request `deadline=` token (one hour): a deadline this far
/// out is indistinguishable from no deadline, and the cap keeps the value
/// safely additive to any clock reading.
inline constexpr std::uint32_t kMaxDeadlineMs = 3'600'000;

/// One parsed request line.
struct Request {
  Verb verb = Verb::Ping;
  std::uint64_t id = 0;
  std::uint32_t source = 0;  // route/kalt/attack
  std::uint32_t target = 0;  // route/kalt/attack
  std::uint32_t k = 0;       // kalt: number of alternatives, in [1, kMaxAlternatives]
  std::uint32_t rank = 0;    // attack: forced path rank, in [1, kMaxPathRank]
  attack::Algorithm algorithm = attack::Algorithm::GreedyPathCover;  // attack
  WeightKind weight = WeightKind::Time;
  std::uint32_t deadline_ms = 0;  // optional `deadline=` token; 0 = none
  std::vector<std::uint32_t> sources;  // table: 1..kMaxTableDim row nodes
  std::vector<std::uint32_t> targets;  // table: 1..kMaxTableDim column nodes

  friend bool operator==(const Request& a, const Request& b) {
    return a.verb == b.verb && a.id == b.id && a.source == b.source && a.target == b.target &&
           a.k == b.k && a.rank == b.rank && a.algorithm == b.algorithm && a.weight == b.weight &&
           a.deadline_ms == b.deadline_ms && a.sources == b.sources && a.targets == b.targets;
  }
};

/// One response line.  Payload fields are ordered key=value pairs so
/// serialization is deterministic and clients can read values generically.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::string verb;   // ok responses: "pong", "graph", "route", "kalt", "attack"
  std::string error;  // err responses: "<category>: <message>"
  std::vector<std::pair<std::string, std::string>> fields;

  /// Value of `key` in fields, or "" when absent.
  [[nodiscard]] std::string field(std::string_view key) const;
};

/// Parses one request line.  Throws InvalidInput naming the offending
/// token on any violation; never accepts a line it cannot round-trip.
Request parse_request(std::string_view line);

/// Canonical wire form of `request` (no terminator; the transport appends
/// '\n').  parse_request(serialize_request(r)) == r for every valid r.
std::string serialize_request(const Request& request);

/// Parses one response line (the loadgen side).  Throws InvalidInput on
/// malformed input.
Response parse_response(std::string_view line);

/// Wire form of `response` (no terminator).
std::string serialize_response(const Response& response);

/// Formats a double for the wire exactly like the JSON reports ("%.9g"),
/// so responses are byte-deterministic across platforms that agree on
/// printf semantics.
std::string format_wire_double(double value);

}  // namespace mts::net
