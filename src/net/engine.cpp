#include "net/engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "attack/algorithms.hpp"
#include "attack/problem.hpp"
#include "attack/verify.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "graph/dijkstra.hpp"
#include "graph/path.hpp"
#include "graph/yen.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

Response ok_response(std::uint64_t id, const char* verb) {
  Response response;
  response.id = id;
  response.ok = true;
  response.verb = verb;
  return response;
}

bool stats_relevant(const std::string& name) {
  return name.rfind("routed.", 0) == 0 || name.rfind("dijkstra.", 0) == 0 ||
         name.rfind("yen.", 0) == 0 || name.rfind("ch.", 0) == 0 || name.rfind("cch.", 0) == 0;
}

}  // namespace

void append_registry_stats(Response& response) {
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  for (const auto& counter : snapshot.counters) {
    if (!stats_relevant(counter.name)) continue;
    response.fields.emplace_back(counter.name, std::to_string(counter.value));
  }
  for (const auto& hist : snapshot.histograms) {
    if (!stats_relevant(hist.name)) continue;
    response.fields.emplace_back(hist.name + ".count", std::to_string(hist.count));
    response.fields.emplace_back(hist.name + ".p50", format_wire_double(hist.quantile(0.50)));
    response.fields.emplace_back(hist.name + ".p99", format_wire_double(hist.quantile(0.99)));
  }
  // One global key sort across everything accumulated so far (including
  // any server.*/window.* fields the caller added first): the stats wire
  // format promises sorted keys regardless of which layer contributed.
  std::sort(response.fields.begin(), response.fields.end());
}

QueryEngine::QueryEngine(const Snapshot& snapshot, const WorkBudget& budget_template)
    : snapshot_(&snapshot), budget_template_(budget_template) {}

Response QueryEngine::handle(const Request& request, RequestTrace* trace,
                             const Stopwatch* deadline_clock, double deadline_s) {
  try {
    // Value site: Stall emulates a slow handler (the worker sleeps, the
    // request then completes normally); everything else escalates.
    switch (const fault::Action action = MTS_FAULT_ACTION("routed.request")) {
      case fault::Action::None:
        break;
      case fault::Action::Stall:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault::kStallMillis));
        break;
      default:
        fault::throw_injected("routed.request", action);
    }
    WorkBudget budget = budget_template_;
    if (deadline_clock != nullptr) budget.arm_deadline(deadline_clock, deadline_s);
    return dispatch(request, budget, trace);
  } catch (...) {
    Response response;
    response.id = request.id;
    response.ok = false;
    response.error = current_exception_taxonomy();
    return response;
  }
}

Response QueryEngine::dispatch(const Request& request, WorkBudget& budget, RequestTrace* trace) {
  switch (request.verb) {
    case Verb::Ping:
      return ok_response(request.id, "pong");
    case Verb::Graph: {
      Response response = ok_response(request.id, "graph");
      response.fields.emplace_back("nodes", std::to_string(snapshot_->num_nodes()));
      response.fields.emplace_back("edges", std::to_string(snapshot_->num_edges()));
      response.fields.emplace_back("pois", std::to_string(snapshot_->num_pois()));
      return response;
    }
    case Verb::Stats: {
      // The engine answers with the registry slice it can see; the server
      // intercepts this verb before the queue to add its own always-on
      // server.* / window.* fields (net/server.cpp).
      Response response = ok_response(request.id, "stats");
      append_registry_stats(response);
      return response;
    }
    case Verb::Route:
      return route(request, budget, trace);
    case Verb::Kalt:
      return alternatives(request, budget, trace);
    case Verb::Table:
      return table(request, budget, trace);
    case Verb::Attack:
      return attack(request, budget, trace);
  }
  throw InvalidInput("unhandled request verb");
}

const ChAssets* QueryEngine::ch_for(const Request& request) const {
  return snapshot_->ch(request.weight == WeightKind::Time);
}

ChTableQuery& QueryEngine::table_query_for(const Request& request, const ChAssets& assets) {
  std::unique_ptr<ChTableQuery>& slot =
      request.weight == WeightKind::Time ? time_table_ : length_table_;
  if (slot == nullptr) slot = std::make_unique<ChTableQuery>(assets.ch);
  return *slot;
}

void QueryEngine::check_endpoints(const Request& request) const {
  const std::size_t num_nodes = snapshot_->num_nodes();
  if (request.source >= num_nodes) {
    throw InvalidInput("source node " + std::to_string(request.source) +
                       " out of range (graph has " + std::to_string(num_nodes) + " nodes)");
  }
  if (request.target >= num_nodes) {
    throw InvalidInput("target node " + std::to_string(request.target) +
                       " out of range (graph has " + std::to_string(num_nodes) + " nodes)");
  }
}

Response QueryEngine::route(const Request& request, WorkBudget& budget, RequestTrace* trace) {
  check_endpoints(request);
  const NodeId source(request.source);
  const NodeId target(request.target);
  const auto& weights = snapshot_->weights(request.weight == WeightKind::Time);

  Response response = ok_response(request.id, "route");
  if (source == target) {
    response.fields.emplace_back("found", "1");
    response.fields.emplace_back("dist", "0");
    response.fields.emplace_back("hops", "0");
    return response;
  }

  std::optional<Path> path;
  if (const ChAssets* assets = ch_for(request); assets != nullptr) {
    // CH serves the query; the unpacked path's length is re-summed in
    // forward edge order below so the wire distance is byte-identical to
    // the Dijkstra fallback's (which accumulates along the same path).
    // The CH's work unit (settled nodes) charges the same budget counter
    // a Dijkstra's settled nodes would.
    auto result = assets->ch.query(source, target, ch_workspace_, trace);
    if (budget.limited()) budget.charge_edges_scanned(result.nodes_settled);
    path = std::move(result.path);
    if (path) path->length = path_length(path->edges, weights);
  } else {
    DijkstraOptions options;
    options.target = target;
    if (budget.limited()) options.budget = &budget;
    options.trace = trace;
    workspace_.begin(snapshot_->num_nodes());
    dijkstra(workspace_, snapshot_->graph(), weights, source, options);
    path = extract_path(snapshot_->graph(), workspace_, source, target);
  }

  response.fields.emplace_back("found", path ? "1" : "0");
  response.fields.emplace_back("dist", format_wire_double(path ? path->length : kInfiniteDistance));
  response.fields.emplace_back("hops", std::to_string(path ? path->edges.size() : 0));
  return response;
}

Response QueryEngine::alternatives(const Request& request, WorkBudget& budget,
                                   RequestTrace* trace) {
  check_endpoints(request);
  if (request.source == request.target) {
    throw InvalidInput("kalt requires distinct endpoints, got node " +
                       std::to_string(request.source) + " twice");
  }
  const auto& weights = snapshot_->weights(request.weight == WeightKind::Time);

  YenOptions options;
  if (budget.limited()) options.budget = &budget;
  options.trace = trace;

  // With CH assets the two full Dijkstras Yen would open with (the reverse
  // bound tree and the rank-1 path) collapse into one PHAST pass and one
  // bidirectional CH query; the spur searches then run goal-bounded
  // against the PHAST distances exactly as they would against the reverse
  // tree (DESIGN.md §14).
  Path first;
  if (const ChAssets* assets = ch_for(request); assets != nullptr) {
    auto result = assets->ch.query(NodeId(request.source), NodeId(request.target), ch_workspace_,
                                   trace);
    if (budget.limited()) budget.charge_edges_scanned(result.nodes_settled);
    if (result.path) {
      first = std::move(*result.path);
      first.length = path_length(first.edges, weights);
      assets->ch.bounds_to_target(NodeId(request.target), ch_workspace_, reverse_bounds_, trace);
      options.reverse_bounds = &reverse_bounds_;
      options.first_path = &first;
    } else {
      Response response = ok_response(request.id, "kalt");
      response.fields.emplace_back("paths", "0");
      response.fields.emplace_back("best", format_wire_double(0.0));
      response.fields.emplace_back("worst", format_wire_double(0.0));
      return response;
    }
  }
  const std::vector<Path> paths =
      yen_ksp(snapshot_->graph(), weights, NodeId(request.source), NodeId(request.target),
              request.k, options);

  Response response = ok_response(request.id, "kalt");
  response.fields.emplace_back("paths", std::to_string(paths.size()));
  response.fields.emplace_back("best",
                               format_wire_double(paths.empty() ? 0.0 : paths.front().length));
  response.fields.emplace_back("worst",
                               format_wire_double(paths.empty() ? 0.0 : paths.back().length));
  return response;
}

Response QueryEngine::table(const Request& request, WorkBudget& budget, RequestTrace* trace) {
  const std::size_t num_nodes = snapshot_->num_nodes();
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  sources.reserve(request.sources.size());
  targets.reserve(request.targets.size());
  for (std::uint32_t s : request.sources) {
    if (s >= num_nodes) {
      throw InvalidInput("table source node " + std::to_string(s) + " out of range (graph has " +
                         std::to_string(num_nodes) + " nodes)");
    }
    sources.emplace_back(s);
  }
  for (std::uint32_t t : request.targets) {
    if (t >= num_nodes) {
      throw InvalidInput("table target node " + std::to_string(t) + " out of range (graph has " +
                         std::to_string(num_nodes) + " nodes)");
    }
    targets.emplace_back(t);
  }
  const auto& weights = snapshot_->weights(request.weight == WeightKind::Time);

  std::vector<double> values;
  if (const ChAssets* assets = ch_for(request); assets != nullptr) {
    values = table_query_for(request, *assets).table(sources, targets, trace);
  } else {
    // Fallback: one full Dijkstra per source row.  Same distances (both
    // sides are exact); the bucket path just does orders of magnitude less
    // work per row.
    values.reserve(sources.size() * targets.size());
    DijkstraOptions options;
    if (budget.limited()) options.budget = &budget;
    options.trace = trace;
    for (NodeId source : sources) {
      workspace_.begin(num_nodes);
      dijkstra(workspace_, snapshot_->graph(), weights, source, options);
      for (NodeId target : targets) {
        values.push_back(workspace_.reached(target) ? workspace_.dist(target)
                                                    : kInfiniteDistance);
      }
    }
  }

  std::string joined;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += format_wire_double(values[i]);
  }
  Response response = ok_response(request.id, "table");
  response.fields.emplace_back("rows", std::to_string(sources.size()));
  response.fields.emplace_back("cols", std::to_string(targets.size()));
  response.fields.emplace_back("vals", std::move(joined));
  return response;
}

Response QueryEngine::attack(const Request& request, WorkBudget& budget, RequestTrace* trace) {
  check_endpoints(request);
  if (request.source == request.target) {
    throw InvalidInput("attack requires distinct endpoints, got node " +
                       std::to_string(request.source) + " twice");
  }
  const auto& weights = snapshot_->weights(request.weight == WeightKind::Time);

  YenOptions yen_options;
  if (budget.limited()) yen_options.budget = &budget;
  yen_options.trace = trace;
  Path first;  // must outlive yen_ksp when CH provides the rank-1 path
  if (const ChAssets* assets = ch_for(request); assets != nullptr) {
    auto result = assets->ch.query(NodeId(request.source), NodeId(request.target), ch_workspace_,
                                   trace);
    if (budget.limited()) budget.charge_edges_scanned(result.nodes_settled);
    if (result.path) {
      first = std::move(*result.path);
      first.length = path_length(first.edges, weights);
      assets->ch.bounds_to_target(NodeId(request.target), ch_workspace_, reverse_bounds_, trace);
      yen_options.reverse_bounds = &reverse_bounds_;
      yen_options.first_path = &first;
    }
    // No path at all: plain yen_ksp below returns empty and the
    // rank-unavailable branch answers, same as the Dijkstra mode.
  }
  std::vector<Path> ranked = yen_ksp(snapshot_->graph(), weights, NodeId(request.source),
                                     NodeId(request.target), request.rank, yen_options);

  Response response = ok_response(request.id, "attack");
  if (ranked.size() < request.rank) {
    // Fewer simple paths exist than the requested rank: nothing to force.
    response.fields.emplace_back("status", "rank-unavailable");
    response.fields.emplace_back("removed", "0");
    response.fields.emplace_back("cost", "0");
    return response;
  }

  attack::ForcePathCutProblem problem;
  problem.graph = &snapshot_->graph();
  problem.weights = weights;
  problem.costs = snapshot_->uniform_costs();
  problem.ch = ch_for(request);  // oracle + verifier serve distances off it
  problem.source = NodeId(request.source);
  problem.target = NodeId(request.target);
  problem.p_star = std::move(ranked.back());
  ranked.pop_back();
  problem.seed_paths = std::move(ranked);

  attack::AttackOptions attack_options;
  attack_options.rng_seed = request.id;  // deterministic per request
  attack_options.work_budget = budget;   // carries the work already charged by Yen
  attack_options.trace = trace;
  const attack::AttackResult result = run_attack(request.algorithm, problem, attack_options);

  if (result.status == attack::AttackStatus::Success) {
    const attack::VerifyReport report = verify_attack(problem, result.removed_edges);
    if (!report.ok) {
      throw InvariantViolation("attack verification failed: " + report.reason);
    }
  }

  response.fields.emplace_back("status", attack::to_string(result.status));
  response.fields.emplace_back("removed", std::to_string(result.num_removed()));
  response.fields.emplace_back("cost", format_wire_double(result.total_cost));
  return response;
}

}  // namespace mts::net
