#include "net/loadgen.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <iterator>
#include <map>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

obs::CounterId sent_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.requests_sent");
  return id;
}

obs::CounterId ok_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.responses_ok");
  return id;
}

obs::CounterId error_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.responses_error");
  return id;
}

obs::HistogramId latency_histogram() {
  static const obs::HistogramId id =
      obs::MetricsRegistry::instance().histogram("loadgen.request_latency_s");
  return id;
}

/// Per-connection replay state and results.
struct ConnectionRun {
  std::vector<const Request*> assigned;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_s;  // raw seconds, gated at report time
  std::string failure;              // taxonomy when the connection died
  bool keep_responses = false;      // --dump: record raw response lines
  std::vector<std::pair<std::uint64_t, std::string>> responses;
};

/// Number of nodes served by the daemon, via a `graph` request on a
/// dedicated control connection.
std::size_t query_num_nodes(const std::string& host, std::uint16_t port) {
  Request probe;
  probe.verb = Verb::Graph;
  probe.id = 0;
  const Response response = request_once(host, port, probe);
  if (!response.ok) throw Error("loadgen: graph probe failed: " + response.error);
  const std::string nodes = response.field("nodes");
  require(!nodes.empty(), "loadgen: graph response missing nodes=");
  return static_cast<std::size_t>(std::stoull(nodes));
}

void replay_connection(const std::string& host, std::uint16_t port, std::size_t window,
                       ConnectionRun& run) {
  try {
    const Socket socket = connect_to(host, port);
    const Stopwatch watch;
    LineFramer framer;
    std::vector<char> buffer(8192);
    std::string line;
    std::map<std::uint64_t, double> in_flight_start_s;
    std::size_t next = 0;
    std::uint64_t completed = 0;

    while (completed < run.assigned.size()) {
      // Top up the window, batching the burst into one write.
      std::string burst;
      while (next < run.assigned.size() && in_flight_start_s.size() < window) {
        const Request& request = *run.assigned[next];
        burst += serialize_request(request);
        burst += '\n';
        in_flight_start_s.emplace(request.id, watch.seconds());
        ++next;
        ++run.sent;
      }
      if (!burst.empty()) {
        socket.write_all(burst);
        obs::add(sent_counter(),
                 static_cast<std::uint64_t>(std::count(burst.begin(), burst.end(), '\n')));
      }

      const std::size_t received = socket.read_some(buffer.data(), buffer.size());
      if (received == 0) {
        run.failure = "error: daemon closed the connection mid-load";
        return;  // the remaining in-flight requests count as dropped
      }
      framer.feed(std::string_view(buffer.data(), received));
      while (framer.next_line(line)) {
        const Response response = parse_response(line);
        if (run.keep_responses) run.responses.emplace_back(response.id, line);
        const auto started = in_flight_start_s.find(response.id);
        require(started != in_flight_start_s.end(),
                "loadgen: response id " + std::to_string(response.id) + " was never sent");
        const double latency_s = watch.seconds() - started->second;
        in_flight_start_s.erase(started);
        run.latencies_s.push_back(latency_s);
        obs::observe(latency_histogram(), reported_seconds(latency_s));
        if (response.ok) {
          ++run.ok;
          obs::add(ok_counter());
        } else {
          ++run.errors;
          obs::add(error_counter());
        }
        ++completed;
      }
    }
  } catch (...) {
    run.failure = current_exception_taxonomy();
  }
}

}  // namespace

const char* to_string(Mix mix) {
  switch (mix) {
    case Mix::Route: return "route";
    case Mix::Kalt: return "kalt";
    case Mix::Attack: return "attack";
    case Mix::Table: return "table";
    case Mix::Mixed: return "mixed";
  }
  return "?";
}

Mix parse_mix(std::string_view token) {
  if (token == "route") return Mix::Route;
  if (token == "kalt") return Mix::Kalt;
  if (token == "attack") return Mix::Attack;
  if (token == "table") return Mix::Table;
  if (token == "mixed") return Mix::Mixed;
  throw InvalidInput("unknown mix '" + std::string(token) + "' (route|kalt|attack|table|mixed)");
}

Response request_once(const std::string& host, std::uint16_t port, const Request& request) {
  const Socket socket = connect_to(host, port);
  socket.write_all(serialize_request(request) + "\n");
  LineFramer framer;
  std::vector<char> buffer(4096);
  std::string line;
  for (;;) {
    const std::size_t received = socket.read_some(buffer.data(), buffer.size());
    if (received == 0) throw Error("request_once: daemon closed the connection");
    framer.feed(std::string_view(buffer.data(), received));
    if (framer.next_line(line)) break;
  }
  return parse_response(line);
}

std::vector<Request> synthesize_requests(const LoadgenOptions& options, std::size_t num_nodes) {
  require(num_nodes >= 2, "synthesize_requests: graph must have >= 2 nodes");
  std::vector<Request> requests;
  requests.reserve(options.requests);
  Rng rng(derive_seed(options.seed, {0x6c67656eULL}));  // "lgen" stream
  for (std::uint64_t i = 0; i < options.requests; ++i) {
    Request request;
    request.id = i + 1;
    request.weight = options.weight;
    request.source = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    do {
      request.target = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    } while (request.target == request.source);
    Mix kind = options.mix;
    if (kind == Mix::Mixed) {
      // Service-shaped blend: mostly routes, some alternatives, rare attacks.
      const double draw = rng.uniform();
      kind = draw < 0.80 ? Mix::Route : (draw < 0.95 ? Mix::Kalt : Mix::Attack);
    }
    switch (kind) {
      case Mix::Route:
        request.verb = Verb::Route;
        break;
      case Mix::Kalt:
        request.verb = Verb::Kalt;
        request.k = options.kalt_k;
        break;
      case Mix::Attack:
        request.verb = Verb::Attack;
        request.rank = options.attack_rank;
        request.algorithm = attack::Algorithm::GreedyPathCover;
        break;
      case Mix::Table: {
        // The shared source/target draws above become the first row/column
        // node, keeping every pre-table mix's stream byte-identical.
        request.verb = Verb::Table;
        const std::uint32_t dim = std::min(options.table_dim, kMaxTableDim);
        request.sources.push_back(request.source);
        request.targets.push_back(request.target);
        for (std::uint32_t j = 1; j < dim; ++j) {
          request.sources.push_back(static_cast<std::uint32_t>(rng.uniform_index(num_nodes)));
        }
        for (std::uint32_t j = 1; j < dim; ++j) {
          request.targets.push_back(static_cast<std::uint32_t>(rng.uniform_index(num_nodes)));
        }
        break;
      }
      case Mix::Mixed:
        throw InvariantViolation("mixed kind must have been resolved");
    }
    requests.push_back(request);
  }
  return requests;
}

LoadReport run_loadgen(const std::string& host, std::uint16_t port,
                       const LoadgenOptions& options) {
  require(options.connections >= 1, "loadgen: connections must be >= 1");
  require(options.window >= 1, "loadgen: window must be >= 1");
  const std::size_t num_nodes = query_num_nodes(host, port);
  const std::vector<Request> requests = synthesize_requests(options, num_nodes);

  std::vector<ConnectionRun> runs(options.connections);
  for (ConnectionRun& run : runs) run.keep_responses = !options.dump_path.empty();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    runs[i % runs.size()].assigned.push_back(&requests[i]);
  }

  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(runs.size());
  for (ConnectionRun& run : runs) {
    threads.emplace_back(
        [&host, port, &options, &run] { replay_connection(host, port, options.window, run); });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_s = wall.seconds();

  LoadReport report;
  std::vector<double> latencies;
  for (const ConnectionRun& run : runs) {
    report.sent += run.sent;
    report.ok += run.ok;
    report.errors += run.errors;
    latencies.insert(latencies.end(), run.latencies_s.begin(), run.latencies_s.end());
    if (!run.failure.empty()) {
      ++report.failed_connections;
      if (report.first_failure.empty()) report.first_failure = run.failure;
    }
  }
  report.completed = report.ok + report.errors;
  report.dropped = report.sent - report.completed;

  if (!options.dump_path.empty()) {
    // Sorted by id, the dump is independent of connection interleaving, so
    // equal-stream runs diff cleanly byte for byte.
    std::vector<std::pair<std::uint64_t, std::string>> lines;
    for (ConnectionRun& run : runs) {
      lines.insert(lines.end(), std::make_move_iterator(run.responses.begin()),
                   std::make_move_iterator(run.responses.end()));
    }
    std::sort(lines.begin(), lines.end());
    std::ofstream out(options.dump_path);
    require(out.good(), "loadgen: cannot open dump file " + options.dump_path);
    for (const auto& [id, text] : lines) out << text << '\n';
    require(out.good(), "loadgen: failed writing dump file " + options.dump_path);
  }
  report.wall_s = reported_seconds(wall_s);
  report.qps =
      reported_seconds(wall_s > 0.0 ? static_cast<double>(report.completed) / wall_s : 0.0);
  // Percentiles come from the shared mts::percentile (interpolating, the
  // same estimator the table stats use), not a private cut — it requires a
  // non-empty sample, so the all-dropped case is guarded explicitly.
  report.p50_s = reported_seconds(latencies.empty() ? 0.0 : percentile(latencies, 0.50));
  report.p99_s = reported_seconds(latencies.empty() ? 0.0 : percentile(latencies, 0.99));
  report.max_s =
      reported_seconds(latencies.empty() ? 0.0 : *std::max_element(latencies.begin(),
                                                                   latencies.end()));
  double sum = 0.0;
  for (const double latency : latencies) sum += latency;
  report.mean_s = reported_seconds(
      latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size()));
  return report;
}

}  // namespace mts::net
