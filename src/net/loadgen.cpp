#include "net/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <fstream>
#include <iterator>
#include <map>
#include <string_view>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

obs::CounterId sent_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.requests_sent");
  return id;
}

obs::CounterId ok_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.responses_ok");
  return id;
}

obs::CounterId error_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("loadgen.responses_error");
  return id;
}

obs::HistogramId latency_histogram() {
  static const obs::HistogramId id =
      obs::MetricsRegistry::instance().histogram("loadgen.request_latency_s");
  return id;
}

/// Per-connection replay state and results.
struct ConnectionRun {
  std::vector<const Request*> assigned;
  std::size_t connection_index = 0;  // jitter-stream key for reconnect backoff
  std::uint64_t sent = 0;            // unique requests put on the wire
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t retried = 0;     // re-sends after retryable err responses
  std::uint64_t reconnects = 0;  // successful reconnections
  std::vector<double> latencies_s;  // raw seconds, gated at report time
  std::string failure;              // taxonomy when the connection died
  bool keep_responses = false;      // --dump: record raw response lines
  std::vector<std::pair<std::uint64_t, std::string>> responses;
};

bool retryable_error(const Response& response) {
  const std::string_view error = response.error;
  return !response.ok && (error.substr(0, 10) == "overloaded" ||
                          error.substr(0, 17) == "deadline-exceeded");
}

/// Number of nodes served by the daemon, via a `graph` request on a
/// dedicated control connection.
std::size_t query_num_nodes(const std::string& host, std::uint16_t port) {
  Request probe;
  probe.verb = Verb::Graph;
  probe.id = 0;
  const Response response = request_once(host, port, probe);
  if (!response.ok) throw Error("loadgen: graph probe failed: " + response.error);
  const std::string nodes = response.field("nodes");
  require(!nodes.empty(), "loadgen: graph response missing nodes=");
  return static_cast<std::size_t>(std::stoull(nodes));
}

void replay_connection(const std::string& host, std::uint16_t port,
                       const LoadgenOptions& options, ConnectionRun& run) {
  // Per-request replay state: a request is either done, in flight on the
  // current socket, or waiting in `ready` for a (re-)send.
  struct Slot {
    const Request* request = nullptr;
    std::uint32_t retries_left = 0;
    bool sent_once = false;
  };
  std::vector<Slot> slots(run.assigned.size());
  std::map<std::uint64_t, std::size_t> id_to_slot;
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < run.assigned.size(); ++i) {
    slots[i].request = run.assigned[i];
    slots[i].retries_left = options.retry_limit;
    id_to_slot.emplace(run.assigned[i]->id, i);
    ready.push_back(i);
  }

  try {
    Socket socket = connect_to(host, port);
    const Stopwatch watch;
    LineFramer framer;
    std::vector<char> buffer(8192);
    std::string line;
    std::map<std::uint64_t, double> in_flight_start_s;
    std::size_t reconnects_used = 0;
    std::uint64_t completed = 0;

    // Connection death (EOF or a failed write): give up, or — with a
    // reconnect budget — back off deterministically, dial back in, and
    // queue every unanswered in-flight request for re-send ahead of the
    // unsent tail (ascending id, so replays stay reproducible).
    const auto try_reconnect = [&]() -> bool {
      if (reconnects_used >= options.max_reconnects) return false;
      ++reconnects_used;
      const double backoff_s =
          reconnect_backoff_s(options.seed, run.connection_index, reconnects_used);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      socket = connect_to(host, port);  // throws when the daemon is gone for good
      framer = LineFramer();            // drop any partial line from the dead socket
      for (auto it = in_flight_start_s.rbegin(); it != in_flight_start_s.rend(); ++it) {
        ready.push_front(id_to_slot.at(it->first));
      }
      in_flight_start_s.clear();
      ++run.reconnects;
      return true;
    };

    while (completed < slots.size()) {
      // Top up the window, batching the burst into one write.
      std::string burst;
      std::uint64_t burst_lines = 0;
      while (!ready.empty() && in_flight_start_s.size() < options.window) {
        Slot& slot = slots[ready.front()];
        ready.pop_front();
        burst += serialize_request(*slot.request);
        burst += '\n';
        ++burst_lines;
        in_flight_start_s.emplace(slot.request->id, watch.seconds());
        if (!slot.sent_once) {
          slot.sent_once = true;
          ++run.sent;
        }
      }
      if (!burst.empty()) {
        try {
          socket.write_all(burst);
        } catch (const std::exception&) {
          if (!try_reconnect()) {
            run.failure = "error: daemon closed the connection mid-load";
            return;  // the remaining in-flight requests count as dropped
          }
          continue;
        }
        obs::add(sent_counter(), burst_lines);
      }

      std::size_t received = 0;
      try {
        received = socket.read_some(buffer.data(), buffer.size());
      } catch (const std::exception&) {
        received = 0;  // a reset (evicted slow client) dies like a clean EOF
      }
      if (received == 0) {
        if (!try_reconnect()) {
          run.failure = "error: daemon closed the connection mid-load";
          return;
        }
        continue;
      }
      framer.feed(std::string_view(buffer.data(), received));
      while (framer.next_line(line)) {
        const Response response = parse_response(line);
        const auto started = in_flight_start_s.find(response.id);
        require(started != in_flight_start_s.end(),
                "loadgen: response id " + std::to_string(response.id) + " was never sent");
        const double latency_s = watch.seconds() - started->second;
        in_flight_start_s.erase(started);
        Slot& slot = slots[id_to_slot.at(response.id)];
        if (retryable_error(response) && slot.retries_left > 0) {
          // Shed or expired: the server asked us to back off, so the retry
          // joins the back of the line instead of pushing in front.
          --slot.retries_left;
          ++run.retried;
          ready.push_back(id_to_slot.at(response.id));
          continue;
        }
        if (run.keep_responses) run.responses.emplace_back(response.id, line);
        // Latency of the terminal answer, measured from its own (re-)send.
        run.latencies_s.push_back(latency_s);
        obs::observe(latency_histogram(), reported_seconds(latency_s));
        if (response.ok) {
          ++run.ok;
          obs::add(ok_counter());
        } else {
          ++run.errors;
          obs::add(error_counter());
        }
        ++completed;
      }
    }
  } catch (...) {
    run.failure = current_exception_taxonomy();
  }
}

}  // namespace

const char* to_string(Mix mix) {
  switch (mix) {
    case Mix::Route: return "route";
    case Mix::Kalt: return "kalt";
    case Mix::Attack: return "attack";
    case Mix::Table: return "table";
    case Mix::Mixed: return "mixed";
  }
  return "?";
}

Mix parse_mix(std::string_view token) {
  if (token == "route") return Mix::Route;
  if (token == "kalt") return Mix::Kalt;
  if (token == "attack") return Mix::Attack;
  if (token == "table") return Mix::Table;
  if (token == "mixed") return Mix::Mixed;
  throw InvalidInput("unknown mix '" + std::string(token) + "' (route|kalt|attack|table|mixed)");
}

double reconnect_backoff_s(std::uint64_t seed, std::size_t connection, std::size_t attempt) {
  constexpr double kBase_s = 0.010;
  constexpr double kCap_s = 0.640;
  const std::size_t doublings = attempt > 0 ? std::min<std::size_t>(attempt - 1, 6) : 0;
  const double exp_s = std::min(kCap_s, kBase_s * static_cast<double>(std::uint64_t{1} << doublings));
  // A private stream per (seed, connection, attempt): jitter decorrelates
  // reconnect herds without any shared RNG state across threads.
  Rng rng(derive_seed(seed, {0x62636b6fULL, connection, attempt}));  // "bcko"
  return exp_s * (0.5 + 0.5 * rng.uniform());
}

Response request_once(const std::string& host, std::uint16_t port, const Request& request) {
  const Socket socket = connect_to(host, port);
  socket.write_all(serialize_request(request) + "\n");
  LineFramer framer;
  std::vector<char> buffer(4096);
  std::string line;
  for (;;) {
    const std::size_t received = socket.read_some(buffer.data(), buffer.size());
    if (received == 0) throw Error("request_once: daemon closed the connection");
    framer.feed(std::string_view(buffer.data(), received));
    if (framer.next_line(line)) break;
  }
  return parse_response(line);
}

std::vector<Request> synthesize_requests(const LoadgenOptions& options, std::size_t num_nodes) {
  require(num_nodes >= 2, "synthesize_requests: graph must have >= 2 nodes");
  std::vector<Request> requests;
  requests.reserve(options.requests);
  Rng rng(derive_seed(options.seed, {0x6c67656eULL}));  // "lgen" stream
  for (std::uint64_t i = 0; i < options.requests; ++i) {
    Request request;
    request.id = i + 1;
    request.weight = options.weight;
    request.source = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    do {
      request.target = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    } while (request.target == request.source);
    Mix kind = options.mix;
    if (kind == Mix::Mixed) {
      // Service-shaped blend: mostly routes, some alternatives, rare attacks.
      const double draw = rng.uniform();
      kind = draw < 0.80 ? Mix::Route : (draw < 0.95 ? Mix::Kalt : Mix::Attack);
    }
    switch (kind) {
      case Mix::Route:
        request.verb = Verb::Route;
        break;
      case Mix::Kalt:
        request.verb = Verb::Kalt;
        request.k = options.kalt_k;
        break;
      case Mix::Attack:
        request.verb = Verb::Attack;
        request.rank = options.attack_rank;
        request.algorithm = attack::Algorithm::GreedyPathCover;
        break;
      case Mix::Table: {
        // The shared source/target draws above become the first row/column
        // node, keeping every pre-table mix's stream byte-identical.
        request.verb = Verb::Table;
        const std::uint32_t dim = std::min(options.table_dim, kMaxTableDim);
        request.sources.push_back(request.source);
        request.targets.push_back(request.target);
        for (std::uint32_t j = 1; j < dim; ++j) {
          request.sources.push_back(static_cast<std::uint32_t>(rng.uniform_index(num_nodes)));
        }
        for (std::uint32_t j = 1; j < dim; ++j) {
          request.targets.push_back(static_cast<std::uint32_t>(rng.uniform_index(num_nodes)));
        }
        break;
      }
      case Mix::Mixed:
        throw InvariantViolation("mixed kind must have been resolved");
    }
    requests.push_back(request);
  }
  return requests;
}

LoadReport run_loadgen(const std::string& host, std::uint16_t port,
                       const LoadgenOptions& options) {
  require(options.connections >= 1, "loadgen: connections must be >= 1");
  require(options.window >= 1, "loadgen: window must be >= 1");
  const std::size_t num_nodes = query_num_nodes(host, port);
  const std::vector<Request> requests = synthesize_requests(options, num_nodes);

  std::vector<ConnectionRun> runs(options.connections);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].connection_index = i;
    runs[i].keep_responses = !options.dump_path.empty();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    runs[i % runs.size()].assigned.push_back(&requests[i]);
  }

  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(runs.size());
  for (ConnectionRun& run : runs) {
    threads.emplace_back(
        [&host, port, &options, &run] { replay_connection(host, port, options, run); });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_s = wall.seconds();

  LoadReport report;
  std::vector<double> latencies;
  for (const ConnectionRun& run : runs) {
    report.sent += run.sent;
    report.ok += run.ok;
    report.errors += run.errors;
    report.retried += run.retried;
    report.reconnects += run.reconnects;
    latencies.insert(latencies.end(), run.latencies_s.begin(), run.latencies_s.end());
    if (!run.failure.empty()) {
      ++report.failed_connections;
      if (report.first_failure.empty()) report.first_failure = run.failure;
    }
  }
  report.completed = report.ok + report.errors;
  report.dropped = report.sent - report.completed;
  report.partial = report.dropped > 0 || report.failed_connections > 0;

  if (!options.dump_path.empty()) {
    // Sorted by id, the dump is independent of connection interleaving, so
    // equal-stream runs diff cleanly byte for byte.
    std::vector<std::pair<std::uint64_t, std::string>> lines;
    for (ConnectionRun& run : runs) {
      lines.insert(lines.end(), std::make_move_iterator(run.responses.begin()),
                   std::make_move_iterator(run.responses.end()));
    }
    std::sort(lines.begin(), lines.end());
    std::ofstream out(options.dump_path);
    require(out.good(), "loadgen: cannot open dump file " + options.dump_path);
    for (const auto& [id, text] : lines) out << text << '\n';
    require(out.good(), "loadgen: failed writing dump file " + options.dump_path);
  }
  report.wall_s = reported_seconds(wall_s);
  report.qps =
      reported_seconds(wall_s > 0.0 ? static_cast<double>(report.completed) / wall_s : 0.0);
  // Percentiles come from the shared mts::percentile (interpolating, the
  // same estimator the table stats use), not a private cut — it requires a
  // non-empty sample, so the all-dropped case is guarded explicitly.
  report.p50_s = reported_seconds(latencies.empty() ? 0.0 : percentile(latencies, 0.50));
  report.p99_s = reported_seconds(latencies.empty() ? 0.0 : percentile(latencies, 0.99));
  report.max_s =
      reported_seconds(latencies.empty() ? 0.0 : *std::max_element(latencies.begin(),
                                                                   latencies.end()));
  double sum = 0.0;
  for (const double latency : latencies) sum += latency;
  report.mean_s = reported_seconds(
      latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size()));
  return report;
}

}  // namespace mts::net
