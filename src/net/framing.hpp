// Line framing for the routed wire protocol.
//
// The protocol is one request or response per '\n'-terminated line.  TCP
// delivers byte streams, not lines, so the reader side accumulates chunks
// in a LineFramer and pops complete lines as they form.  The framer is
// where torn lines (a request split across reads), pipelined bursts (many
// requests in one read), and oversized garbage are normalized before the
// parser ever sees a byte.
//
// Lines are treated as opaque byte strings: the framer passes through any
// content (including invalid UTF-8 and NUL bytes) unchanged and leaves
// token validation to net/protocol.  A trailing '\r' is stripped so
// clients may speak either '\n' or '\r\n'.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace mts::net {

/// Default cap on a single line, chosen far above any legitimate request
/// or response (the longest is a kalt response listing path lengths).
inline constexpr std::size_t kMaxLineBytes = 4096;

/// Incremental splitter of a byte stream into '\n'-terminated lines.
/// Not thread-safe: one framer per connection direction.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = kMaxLineBytes);

  /// Appends raw bytes from the stream.  Throws InvalidInput once the
  /// unterminated tail exceeds the line cap (an attacker streaming an
  /// endless line must not grow the buffer unboundedly); the framer is
  /// unusable afterwards and the connection should be dropped.
  void feed(std::string_view bytes);

  /// Pops the next complete line (terminator and any trailing '\r'
  /// removed) into `line`.  Returns false when no full line is buffered.
  bool next_line(std::string& line);

  /// Bytes of the current unterminated tail (a torn line in flight).
  [[nodiscard]] std::size_t partial_bytes() const { return buffer_.size() - consumed_; }

  [[nodiscard]] std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already returned as lines
};

}  // namespace mts::net
