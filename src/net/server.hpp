// The routed daemon: one immutable Snapshot, N queue workers, a line
// protocol over loopback TCP.
//
// Process shape (DESIGN.md §12): the accept loop and one reader thread per
// connection parse request lines and enqueue them on a core::TaskQueue;
// each queue worker owns a private QueryEngine, so all mutable search
// state is per-worker and the Snapshot is the only shared data (read-only
// by contract).  Responses carry the request id, so pipelined requests may
// complete out of order; each connection serializes its socket writes
// under a per-connection mutex.
//
// Shutdown is a drain, not an abort: request_stop() (or the external stop
// flag flipping) closes the listener, half-closes every connection's read
// side so its reader wakes with EOF, waits for every already-parsed
// request to be answered and written, then joins the queue.  In-flight
// requests are never dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/budget.hpp"
#include "core/mutex.hpp"
#include "core/thread_pool.hpp"
#include "net/framing.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"

namespace mts::net {

class QueryEngine;

struct RoutedOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
  std::size_t threads = 0;  // queue workers; 0 = mts::num_threads()
  std::size_t max_line_bytes = kMaxLineBytes;
  /// Per-request work caps, copied into every request (all-zero =
  /// unlimited).  Exhaustion produces an `err ... budget-exhausted:`
  /// response, never a dead worker.
  WorkBudget request_budget;
};

struct RoutedStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t protocol_errors = 0;
};

class RoutedServer {
 public:
  /// `snapshot` must outlive the server.
  RoutedServer(const Snapshot& snapshot, RoutedOptions options);

  /// Drains and joins if serve() was not allowed to finish its own drain.
  ~RoutedServer();

  RoutedServer(const RoutedServer&) = delete;
  RoutedServer& operator=(const RoutedServer&) = delete;

  /// Binds the listener and spawns the queue workers.  After start()
  /// returns, port() is the bound port and clients may connect.
  void start();

  [[nodiscard]] std::uint16_t port() const;

  /// Runs the accept loop until request_stop() is called or the optional
  /// external flag (e.g. a signal handler's) becomes true, then drains:
  /// every request parsed before the drain began is answered.  Returns
  /// after the drain completes.
  void serve(const std::atomic<bool>* external_stop = nullptr);

  /// Thread-safe, idempotent stop signal; serve() notices within its
  /// accept timeout (200 ms).
  void request_stop() { stop_.store(true); }

  [[nodiscard]] RoutedStats stats() const;

 private:
  struct Connection {
    Socket socket;
    Mutex mutex;  // serializes socket writes; guards pending
    CondVar drained;
    std::uint64_t pending MTS_GUARDED_BY(mutex) = 0;  // parsed, not yet written
  };

  void reader_loop(const std::shared_ptr<Connection>& connection);
  void handle_line(const std::shared_ptr<Connection>& connection, const std::string& line);
  void write_response(Connection& connection, const std::string& wire_line);

  const Snapshot* snapshot_;
  RoutedOptions options_;
  Listener listener_;
  std::unique_ptr<TaskQueue> queue_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;  // one per queue worker
  std::atomic<bool> stop_{false};
  bool drained_ = false;  // serve()/dtor only (single-threaded use)

  Mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_ MTS_GUARDED_BY(connections_mutex_);
  std::vector<std::thread> readers_ MTS_GUARDED_BY(connections_mutex_);

  std::atomic<std::uint64_t> connections_count_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace mts::net
