// The routed daemon: one immutable Snapshot, N queue workers, a line
// protocol over loopback TCP.
//
// Process shape (DESIGN.md §12): the accept loop and one reader thread per
// connection parse request lines and enqueue them on a core::TaskQueue;
// each queue worker owns a private QueryEngine, so all mutable search
// state is per-worker and the Snapshot is the only shared data (read-only
// by contract).  Responses carry the request id, so pipelined requests may
// complete out of order.  Workers never touch the socket: they append the
// serialized response to a bounded per-connection write queue drained by a
// dedicated writer thread, so a client that stops reading can only stall
// its own writer, never a worker (DESIGN.md §15).
//
// Overload is a first-class input (DESIGN.md §15): admission control sheds
// requests with `err <id> overloaded` when the global queue or the
// connection's inflight count is at its cap (expensive verbs first),
// per-request deadlines — queue wait included — answer `err <id>
// deadline-exceeded`, and a client that cannot drain its responses within
// the write timeout (or whose unsent backlog exceeds the byte cap) is
// disconnected and counted.  Every knob defaults off, and with all knobs
// off the wire behavior is byte-identical to the pre-overload server.
//
// Shutdown is a drain, not an abort: request_stop() (or the external stop
// flag flipping) closes the listener, half-closes every connection's read
// side so its reader wakes with EOF, waits for every already-parsed
// request to be answered and written (or its connection declared dead),
// then joins the queue.  In-flight requests are never dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/budget.hpp"
#include "core/mutex.hpp"
#include "core/request_trace.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "obs/slowlog.hpp"
#include "obs/window.hpp"

namespace mts::net {

class QueryEngine;

struct RoutedOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
  std::size_t threads = 0;  // queue workers; 0 = mts::num_threads()
  std::size_t max_line_bytes = kMaxLineBytes;
  /// Per-request work caps, copied into every request (all-zero =
  /// unlimited).  Exhaustion produces an `err ... budget-exhausted:`
  /// response, never a dead worker.
  WorkBudget request_budget;
  /// Rolling latency window served by the `stats` verb: `window_slots`
  /// intervals of `window_slot_s` seconds (defaults: last 60 s at 1 s
  /// resolution; see obs/window.hpp for the memory/accuracy trade-off).
  double window_slot_s = 1.0;
  std::size_t window_slots = 60;
  /// Slow-query log: requests at or over the threshold — or failing with
  /// any error taxonomy — append one JSONL line to `slowlog_path`.
  /// 0 (the default) disables the log entirely; the CLI wires this to
  /// MTS_SLOWLOG (milliseconds).
  double slowlog_threshold_s = 0.0;
  std::string slowlog_path = "routed_slowlog.jsonl";
  /// Overload knobs (DESIGN.md §15); the CLI wires them to MTS_MAX_INFLIGHT,
  /// MTS_MAX_QUEUE, MTS_DEADLINE_MS, MTS_WRITE_TIMEOUT_MS.  All default
  /// off, preserving pre-overload behavior byte for byte.
  std::size_t max_inflight = 0;  ///< per-connection parsed-unanswered cap; 0 = unbounded
  std::size_t max_queue = 0;     ///< queued+executing cap across connections; 0 = unbounded
  double deadline_s = 0.0;       ///< default per-request deadline; 0 = none
  double write_timeout_s = 0.0;  ///< per-response send timeout; 0 = blocking writes
  /// Always-on memory backstop: one connection may hold at most this many
  /// bytes of queued-but-unsent responses before it is disconnected as a
  /// slow client.  Generous by default — a well-behaved pipelining client
  /// never comes close — but never unbounded.
  std::size_t max_write_queue_bytes = std::size_t{4} << 20;
};

struct RoutedStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t shed = 0;                     ///< admission-control rejections
  std::uint64_t deadline_exceeded = 0;        ///< expired while queued or mid-search
  std::uint64_t slow_client_disconnects = 0;  ///< evicted for not draining responses
  std::uint64_t queue_depth = 0;              ///< gauge: queued+executing right now
};

class RoutedServer {
 public:
  /// `snapshot` must outlive the server.
  RoutedServer(const Snapshot& snapshot, RoutedOptions options);

  /// Drains and joins if serve() was not allowed to finish its own drain.
  ~RoutedServer();

  RoutedServer(const RoutedServer&) = delete;
  RoutedServer& operator=(const RoutedServer&) = delete;

  /// Binds the listener and spawns the queue workers.  After start()
  /// returns, port() is the bound port and clients may connect.
  void start();

  [[nodiscard]] std::uint16_t port() const;

  /// Runs the accept loop until request_stop() is called or the optional
  /// external flag (e.g. a signal handler's) becomes true, then drains:
  /// every request parsed before the drain began is answered.  Returns
  /// after the drain completes.
  void serve(const std::atomic<bool>* external_stop = nullptr);

  /// Thread-safe, idempotent stop signal; serve() notices within its
  /// accept timeout (200 ms).
  void request_stop() { stop_.store(true); }

  [[nodiscard]] RoutedStats stats() const;

  /// Rolling-window latency view at this instant (the window.* slice of
  /// the stats verb).  Thread-safe.
  [[nodiscard]] obs::WindowSnapshot window_snapshot() const;

  /// The full `ok <id> stats ...` response: always-on server.* totals,
  /// window.* rolling percentiles, and the registry's routed./dijkstra./
  /// yen. slice, one global sorted key order.  Served inline by the reader
  /// thread (never queued), so it answers even when every worker is busy.
  [[nodiscard]] Response build_stats_response(std::uint64_t id) const;

  /// Admission decision for one request given the instantaneous queue
  /// depth (queued + executing): with a cap, expensive verbs (attack,
  /// table) shed at half the cap, all search verbs (route, kalt too) at
  /// the cap; control verbs (ping, graph, stats) always pass the policy
  /// (the TaskQueue's own bound still backstops them).  Pure — exposed for
  /// unit tests; `max_queue == 0` never sheds.
  [[nodiscard]] static bool should_shed(Verb verb, std::size_t depth, std::size_t max_queue);

 private:
  struct Connection {
    Socket socket;
    Mutex mutex;  // guards every field below; only the writer thread sends
    CondVar writer_wake;  // writer waits: queue non-empty || exit || dead
    CondVar drained;      // reader waits: pending == 0 && (queue empty || dead)
    std::deque<std::string> write_queue MTS_GUARDED_BY(mutex);  // serialized responses
    std::size_t write_queue_bytes MTS_GUARDED_BY(mutex) = 0;
    std::uint64_t pending MTS_GUARDED_BY(mutex) = 0;  // parsed, not yet answered
    bool writer_exit MTS_GUARDED_BY(mutex) = false;  // reader: flush then return
    bool dead MTS_GUARDED_BY(mutex) = false;  // slow client evicted; drop writes
    std::thread writer;  // started at accept, joined by the reader's teardown
  };

  void reader_loop(const std::shared_ptr<Connection>& connection);
  void writer_loop(const std::shared_ptr<Connection>& connection);
  void handle_line(const std::shared_ptr<Connection>& connection, const std::string& line);
  /// Appends one serialized response to the connection's write queue (or
  /// evicts the connection when the byte cap would be exceeded) and, when
  /// `finishes_pending`, retires one pending request.  The only producer
  /// side of the writer protocol.
  void deliver_response(Connection& connection, std::string wire_line, bool finishes_pending);
  /// Sheds one admitted-then-rejected request with `err <id> overloaded`.
  void shed_request(Connection& connection, const Request& request, const char* reason,
                    bool finishes_pending);
  /// Marks a connection dead: discards its unsent backlog and shuts the
  /// socket down both ways so the reader (EOF) and the peer both notice.
  void evict_slow_client(Connection& connection) MTS_REQUIRES(connection.mutex);
  /// Post-response bookkeeping for one request: slow-query log append and
  /// request-span trace event, both no-ops when their knob is off.
  void record_outcome(const Request& request, const Response& response,
                      const RequestTrace& trace, double latency_s, double span_start_s);

  const Snapshot* snapshot_;
  RoutedOptions options_;
  /// Time origin for the rolling window and latency measurement: one
  /// steady clock for the server's whole life (raw seconds, internal
  /// decisions only; durations pass reported_seconds() before output).
  Stopwatch clock_;
  obs::WindowedHistogram window_;
  std::unique_ptr<obs::SlowQueryLog> slowlog_;  // null when disabled
  Listener listener_;
  std::unique_ptr<TaskQueue> queue_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;  // one per queue worker
  std::atomic<bool> stop_{false};
  bool drained_ = false;  // serve()/dtor only (single-threaded use)

  Mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_ MTS_GUARDED_BY(connections_mutex_);
  std::vector<std::thread> readers_ MTS_GUARDED_BY(connections_mutex_);

  std::atomic<std::uint64_t> connections_count_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> slow_client_disconnects_{0};
  /// Requests submitted to the queue and not yet finished (queued +
  /// executing); the admission policy's load signal and the
  /// routed.queue_depth gauge.
  std::atomic<std::uint64_t> queue_depth_{0};
};

}  // namespace mts::net
