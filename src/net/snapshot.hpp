// The immutable city snapshot a routed daemon serves from.
//
// This is the OSRM process-shape split the ROADMAP calls for: ALL graph
// bytes — network, weight vectors, cost vectors — are loaded once, owned
// here, and only ever read afterwards.  Per-request state (search
// workspaces, scratch heaps, budgets) lives in net::QueryEngine, one
// instance per worker, so N workers share zero mutable graph bytes.
//
// Thread-sharing contract: after load() returns, a const Snapshot may be
// read concurrently from any number of threads for its whole lifetime
// (the same contract attack::ForcePathCutProblem documents for its graph
// and spans).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/models.hpp"
#include "osm/road_network.hpp"

namespace mts::net {

class Snapshot {
 public:
  /// Builds from an already-constructed network (tests, in-process use)
  /// and precomputes every per-edge vector a query can ask for.
  explicit Snapshot(osm::RoadNetwork network);

  /// Loads an OSM XML file.  Throws InvalidInput on unreadable or
  /// roadless input.
  static Snapshot load(const std::string& osm_path);

  [[nodiscard]] const osm::RoadNetwork& network() const { return network_; }
  [[nodiscard]] const DiGraph& graph() const { return network_.graph(); }

  /// Per-edge weight vector for a protocol weight kind.
  [[nodiscard]] const std::vector<double>& weights(bool time) const {
    return time ? time_weights_ : length_weights_;
  }
  /// Attack removal costs (uniform: 1 per directed segment).
  [[nodiscard]] const std::vector<double>& uniform_costs() const { return uniform_costs_; }

  [[nodiscard]] std::size_t num_nodes() const { return network_.graph().num_nodes(); }
  [[nodiscard]] std::size_t num_edges() const { return network_.graph().num_edges(); }
  [[nodiscard]] std::size_t num_pois() const { return network_.pois().size(); }

 private:
  osm::RoadNetwork network_;
  std::vector<double> time_weights_;
  std::vector<double> length_weights_;
  std::vector<double> uniform_costs_;
};

}  // namespace mts::net
