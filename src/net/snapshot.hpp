// The immutable city snapshot a routed daemon serves from.
//
// This is the OSRM process-shape split the ROADMAP calls for: ALL graph
// bytes — network, weight vectors, cost vectors — are loaded once, owned
// here, and only ever read afterwards.  Per-request state (search
// workspaces, scratch heaps, budgets) lives in net::QueryEngine, one
// instance per worker, so N workers share zero mutable graph bytes.
//
// Thread-sharing contract: after load() returns, a const Snapshot may be
// read concurrently from any number of threads for its whole lifetime
// (the same contract attack::ForcePathCutProblem documents for its graph
// and spans).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/models.hpp"
#include "graph/ch_assets.hpp"
#include "osm/road_network.hpp"

namespace mts::net {

class Snapshot {
 public:
  /// Builds from an already-constructed network (tests, in-process use)
  /// and precomputes every per-edge vector a query can ask for.
  explicit Snapshot(osm::RoadNetwork network);

  /// Loads an OSM XML file.  Throws InvalidInput on unreadable or
  /// roadless input.
  static Snapshot load(const std::string& osm_path);

  [[nodiscard]] const osm::RoadNetwork& network() const { return network_; }
  [[nodiscard]] const DiGraph& graph() const { return network_.graph(); }

  /// Per-edge weight vector for a protocol weight kind.
  [[nodiscard]] const std::vector<double>& weights(bool time) const {
    return time ? time_weights_ : length_weights_;
  }
  /// Attack removal costs (uniform: 1 per directed segment).
  [[nodiscard]] const std::vector<double>& uniform_costs() const { return uniform_costs_; }

  /// CH/CCH bundle for a weight kind, built once at load and shared
  /// read-only by every worker's QueryEngine (per-request mutable state —
  /// workspaces, CchMetric — lives engine-side).  nullptr when MTS_CH=0:
  /// every consumer must keep a plain Dijkstra/Yen path that produces the
  /// same answers (DESIGN.md §14).
  [[nodiscard]] const ChAssets* ch(bool time) const {
    return (time ? time_ch_ : length_ch_).get();
  }

  [[nodiscard]] std::size_t num_nodes() const { return network_.graph().num_nodes(); }
  [[nodiscard]] std::size_t num_edges() const { return network_.graph().num_edges(); }
  [[nodiscard]] std::size_t num_pois() const { return network_.pois().size(); }

 private:
  osm::RoadNetwork network_;
  std::vector<double> time_weights_;
  std::vector<double> length_weights_;
  std::vector<double> uniform_costs_;
  std::unique_ptr<ChAssets> time_ch_;
  std::unique_ptr<ChAssets> length_ch_;
};

}  // namespace mts::net
