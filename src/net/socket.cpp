#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace mts::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw InvalidInput("not an IPv4 literal: '" + host + "'");
  }
  return address;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::size_t Socket::read_some(char* buffer, std::size_t capacity) const {
  require(valid(), "Socket::read_some on an invalid socket");
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    // A reset peer is an orderly end of conversation for a line protocol:
    // report EOF and let the caller finish its drain.
    if (errno == ECONNRESET) return 0;
    throw_errno("recv");
  }
}

void Socket::write_all(std::string_view data) const {
  require(valid(), "Socket::write_all on an invalid socket");
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

bool Socket::write_all_for(std::string_view data, int timeout_ms) const {
  if (timeout_ms <= 0) {
    write_all(data);
    return true;
  }
  require(valid(), "Socket::write_all_for on an invalid socket");
  Stopwatch elapsed;
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) throw_errno("send");
    // Kernel buffer full: wait for drain within the remaining budget.
    const double remaining_ms = timeout_ms - elapsed.seconds() * 1000.0;
    if (remaining_ms <= 0.0) return false;
    pollfd poll_entry{};
    poll_entry.fd = fd_;
    poll_entry.events = POLLOUT;
    const int ready = ::poll(&poll_entry, 1, static_cast<int>(remaining_ms) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0 && elapsed.seconds() * 1000.0 >= timeout_ms) return false;
    // POLLERR/POLLHUP (or a spurious wake): loop and let send() report it.
  }
  return true;
}

void Socket::shutdown_read() const {
  if (valid()) ::shutdown(fd_, SHUT_RD);  // best effort: peer may be gone already
}

void Socket::shutdown_both() const {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);  // best effort, like shutdown_read
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind(const std::string& host, std::uint16_t port, int backlog) {
  const sockaddr_in address = make_address(host, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket");
  const int enable = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(socket.fd(), backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    throw_errno("getsockname");
  }
  Listener listener;
  listener.socket_ = std::move(socket);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept_for(int timeout_ms) const {
  require(valid(), "Listener::accept_for on a closed listener");
  pollfd poll_entry{};
  poll_entry.fd = socket_.fd();
  poll_entry.events = POLLIN;
  const int ready = ::poll(&poll_entry, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;  // signal: let the caller re-check its flag
    throw_errno("poll");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;  // transient (peer gone between poll and accept)
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
  return Socket(fd);
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  const sockaddr_in address = make_address(host, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket");
  for (;;) {
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const int enable = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
  return socket;
}

}  // namespace mts::net
