#include "net/protocol.hpp"

#include <cstdio>
#include <limits>

#include "core/error.hpp"

namespace mts::net {

namespace {

/// Splits on single spaces.  Empty tokens (leading/trailing/double spaces)
/// are rejected by the numeric/verb parsers below, so a sloppy client gets
/// a precise error instead of a silently re-tokenized line.
std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

std::uint64_t parse_u64(std::string_view token, const char* what, std::uint64_t max_value) {
  if (token.empty()) throw InvalidInput(std::string(what) + ": empty token");
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      throw InvalidInput(std::string(what) + " expects a non-negative integer, got '" +
                         std::string(token) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw InvalidInput(std::string(what) + " overflows: '" + std::string(token) + "'");
    }
    value = value * 10 + digit;
  }
  if (value > max_value) {
    throw InvalidInput(std::string(what) + " out of range (max " + std::to_string(max_value) +
                       "): '" + std::string(token) + "'");
  }
  return value;
}

WeightKind parse_weight_kind(std::string_view token) {
  if (token == "time") return WeightKind::Time;
  if (token == "length") return WeightKind::Length;
  throw InvalidInput("unknown weight '" + std::string(token) + "' (time|length)");
}

/// Wire spelling of an algorithm (attack::to_string uses CamelCase display
/// names; the protocol wants the CLI's lowercase hyphenated tokens).
const char* algorithm_token(attack::Algorithm algorithm) {
  switch (algorithm) {
    case attack::Algorithm::LpPathCover: return "lp-pathcover";
    case attack::Algorithm::GreedyPathCover: return "greedy-pathcover";
    case attack::Algorithm::GreedyEdge: return "greedy-edge";
    case attack::Algorithm::GreedyEig: return "greedy-eig";
  }
  return "?";
}

attack::Algorithm parse_algorithm_token(std::string_view token) {
  if (token == "lp-pathcover") return attack::Algorithm::LpPathCover;
  if (token == "greedy-pathcover") return attack::Algorithm::GreedyPathCover;
  if (token == "greedy-edge") return attack::Algorithm::GreedyEdge;
  if (token == "greedy-eig") return attack::Algorithm::GreedyEig;
  throw InvalidInput("unknown algorithm '" + std::string(token) +
                     "' (lp-pathcover|greedy-pathcover|greedy-edge|greedy-eig)");
}

constexpr std::string_view kDeadlineKey = "deadline=";

/// Consumes the optional trailing weight and `deadline=<ms>` tokens (in
/// that order); anything after them is junk.
void finish_request(Request& request, const std::vector<std::string_view>& tokens,
                    std::size_t next) {
  if (next < tokens.size() && tokens[next].substr(0, kDeadlineKey.size()) != kDeadlineKey) {
    request.weight = parse_weight_kind(tokens[next]);
    ++next;
  }
  if (next < tokens.size() && tokens[next].substr(0, kDeadlineKey.size()) == kDeadlineKey) {
    const std::string_view value = tokens[next].substr(kDeadlineKey.size());
    request.deadline_ms =
        static_cast<std::uint32_t>(parse_u64(value, "deadline", kMaxDeadlineMs));
    if (request.deadline_ms == 0) throw InvalidInput("deadline must be >= 1 ms");
    ++next;
  }
  if (next < tokens.size()) {
    throw InvalidInput("trailing token '" + std::string(tokens[next]) + "' after " +
                       std::string(to_string(request.verb)) + " request");
  }
}

constexpr std::uint64_t kMaxNode = std::numeric_limits<std::uint32_t>::max();

/// Parses a table side: comma-separated node ids, 1..kMaxTableDim entries.
/// Empty entries ("1,,2", trailing comma) are rejected by parse_u64.
std::vector<std::uint32_t> parse_node_list(std::string_view token, const char* what) {
  std::vector<std::uint32_t> nodes;
  std::size_t start = 0;
  while (start <= token.size()) {
    const std::size_t comma = token.find(',', start);
    const std::string_view item =
        comma == std::string_view::npos ? token.substr(start) : token.substr(start, comma - start);
    nodes.push_back(static_cast<std::uint32_t>(parse_u64(item, what, kMaxNode)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (nodes.size() > kMaxTableDim) {
    throw InvalidInput(std::string(what) + " list has " + std::to_string(nodes.size()) +
                       " nodes (max " + std::to_string(kMaxTableDim) + ")");
  }
  return nodes;
}

std::string join_node_list(const std::vector<std::uint32_t>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(nodes[i]);
  }
  return out;
}

}  // namespace

const char* to_string(WeightKind kind) {
  return kind == WeightKind::Time ? "time" : "length";
}

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::Ping: return "ping";
    case Verb::Graph: return "graph";
    case Verb::Stats: return "stats";
    case Verb::Route: return "route";
    case Verb::Kalt: return "kalt";
    case Verb::Table: return "table";
    case Verb::Attack: return "attack";
  }
  return "?";
}

std::string Response::field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return "";
}

Request parse_request(std::string_view line) {
  const auto tokens = split_tokens(line);
  if (tokens.empty() || tokens[0].empty()) throw InvalidInput("empty request line");
  Request request;
  const std::string_view verb = tokens[0];
  if (tokens.size() < 2) throw InvalidInput("request '" + std::string(verb) + "' missing id");
  request.id = parse_u64(tokens[1], "id", std::numeric_limits<std::uint64_t>::max());

  auto need = [&](std::size_t count, const char* shape) {
    if (tokens.size() < count) {
      throw InvalidInput("request '" + std::string(verb) + "' expects " + shape);
    }
  };
  auto node = [&](std::size_t index, const char* what) {
    return static_cast<std::uint32_t>(parse_u64(tokens[index], what, kMaxNode));
  };

  if (verb == "ping") {
    request.verb = Verb::Ping;
    finish_request(request, tokens, 2);
  } else if (verb == "graph") {
    request.verb = Verb::Graph;
    finish_request(request, tokens, 2);
  } else if (verb == "stats") {
    request.verb = Verb::Stats;
    finish_request(request, tokens, 2);
  } else if (verb == "route") {
    request.verb = Verb::Route;
    need(4, "<id> <src> <dst> [time|length]");
    request.source = node(2, "src");
    request.target = node(3, "dst");
    finish_request(request, tokens, 4);
  } else if (verb == "kalt") {
    request.verb = Verb::Kalt;
    need(5, "<id> <src> <dst> <k> [time|length]");
    request.source = node(2, "src");
    request.target = node(3, "dst");
    request.k = static_cast<std::uint32_t>(parse_u64(tokens[4], "k", kMaxAlternatives));
    if (request.k == 0) throw InvalidInput("k must be >= 1");
    finish_request(request, tokens, 5);
  } else if (verb == "table") {
    request.verb = Verb::Table;
    need(4, "<id> <src,src,...> <dst,dst,...> [time|length]");
    request.sources = parse_node_list(tokens[2], "src");
    request.targets = parse_node_list(tokens[3], "dst");
    finish_request(request, tokens, 4);
  } else if (verb == "attack") {
    request.verb = Verb::Attack;
    need(6, "<id> <src> <dst> <rank> <algorithm> [time|length]");
    request.source = node(2, "src");
    request.target = node(3, "dst");
    request.rank = static_cast<std::uint32_t>(parse_u64(tokens[4], "rank", kMaxPathRank));
    if (request.rank == 0) throw InvalidInput("rank must be >= 1");
    request.algorithm = parse_algorithm_token(tokens[5]);
    finish_request(request, tokens, 6);
  } else {
    throw InvalidInput("unknown verb '" + std::string(verb) +
                       "' (ping|graph|stats|route|kalt|table|attack)");
  }
  return request;
}

std::string serialize_request(const Request& request) {
  std::string line = to_string(request.verb);
  line += ' ';
  line += std::to_string(request.id);
  switch (request.verb) {
    case Verb::Ping:
    case Verb::Graph:
    case Verb::Stats:
      break;
    case Verb::Route:
      line += ' ' + std::to_string(request.source) + ' ' + std::to_string(request.target);
      break;
    case Verb::Kalt:
      line += ' ' + std::to_string(request.source) + ' ' + std::to_string(request.target) +
              ' ' + std::to_string(request.k);
      break;
    case Verb::Table:
      line += ' ' + join_node_list(request.sources) + ' ' + join_node_list(request.targets);
      break;
    case Verb::Attack:
      line += ' ' + std::to_string(request.source) + ' ' + std::to_string(request.target) +
              ' ' + std::to_string(request.rank);
      line += ' ';
      line += algorithm_token(request.algorithm);
      break;
  }
  if (request.weight != WeightKind::Time) {
    line += ' ';
    line += to_string(request.weight);
  }
  if (request.deadline_ms != 0) {
    line += " deadline=";
    line += std::to_string(request.deadline_ms);
  }
  return line;
}

Response parse_response(std::string_view line) {
  Response response;
  const auto tokens = split_tokens(line);
  if (tokens.size() < 2 || tokens[0].empty()) throw InvalidInput("malformed response line");
  if (tokens[0] != "ok" && tokens[0] != "err") {
    throw InvalidInput("response must start with ok|err, got '" + std::string(tokens[0]) + "'");
  }
  response.ok = tokens[0] == "ok";
  response.id = parse_u64(tokens[1], "id", std::numeric_limits<std::uint64_t>::max());
  if (!response.ok) {
    // Everything after the id is the taxonomy message, spaces included.
    const std::size_t prefix = line.find(' ', line.find(' ') + 1);
    response.error = prefix == std::string_view::npos ? "" : std::string(line.substr(prefix + 1));
    if (response.error.empty()) throw InvalidInput("err response missing message");
    return response;
  }
  if (tokens.size() < 3 || tokens[2].empty()) throw InvalidInput("ok response missing verb");
  response.verb = std::string(tokens[2]);
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw InvalidInput("malformed response field '" + std::string(tokens[i]) + "'");
    }
    response.fields.emplace_back(std::string(tokens[i].substr(0, eq)),
                                 std::string(tokens[i].substr(eq + 1)));
  }
  return response;
}

std::string serialize_response(const Response& response) {
  std::string line = response.ok ? "ok" : "err";
  line += ' ';
  line += std::to_string(response.id);
  if (!response.ok) {
    line += ' ';
    line += response.error.empty() ? std::string("error") : response.error;
    // The transport is line-framed: a newline inside an error message would
    // desynchronize the stream, so flatten any that slipped in.
    for (char& c : line) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    return line;
  }
  line += ' ';
  line += response.verb;
  for (const auto& [key, value] : response.fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  return line;
}

std::string format_wire_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace mts::net
