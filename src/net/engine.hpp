// Per-worker query engine: the mutable half of the routed process shape.
//
// A QueryEngine owns everything one worker thread needs to answer a
// request — reusable epoch-stamped search workspaces and per-request
// work-budget copies — while all graph bytes stay in the shared immutable
// net::Snapshot.  One engine per worker, never shared: handle() may be
// called from exactly one thread at a time.
//
// Every request failure is converted into a structured `err` response
// carrying the PR 5 quarantine taxonomy ("budget-exhausted: ...",
// "fault-injected: ...", "invalid-input: ..."), so a request can never
// crash the daemon or poison another worker.
#pragma once

#include <cstdint>

#include "core/budget.hpp"
#include "graph/search_space.hpp"
#include "net/protocol.hpp"
#include "net/snapshot.hpp"

namespace mts::net {

class QueryEngine {
 public:
  /// `snapshot` must outlive the engine; `budget_template` is copied into
  /// every request (all-zero caps = unlimited).
  QueryEngine(const Snapshot& snapshot, const WorkBudget& budget_template);

  /// Answers one request.  Never throws: failures become `err` responses
  /// tagged with the error taxonomy.  The `routed.request` fault point
  /// fires here (once per request hit) when armed.
  Response handle(const Request& request);

 private:
  Response dispatch(const Request& request, WorkBudget& budget);
  Response route(const Request& request, WorkBudget& budget);
  Response alternatives(const Request& request, WorkBudget& budget);
  Response attack(const Request& request, WorkBudget& budget);
  void check_endpoints(const Request& request) const;

  const Snapshot* snapshot_;
  WorkBudget budget_template_;
  SearchSpace workspace_;  // reused across route queries, one per engine
};

}  // namespace mts::net
