// Per-worker query engine: the mutable half of the routed process shape.
//
// A QueryEngine owns everything one worker thread needs to answer a
// request — reusable epoch-stamped search workspaces and per-request
// work-budget copies — while all graph bytes stay in the shared immutable
// net::Snapshot.  One engine per worker, never shared: handle() may be
// called from exactly one thread at a time.
//
// Every request failure is converted into a structured `err` response
// carrying the PR 5 quarantine taxonomy ("budget-exhausted: ...",
// "fault-injected: ...", "invalid-input: ..."), so a request can never
// crash the daemon or poison another worker.
#pragma once

#include <cstdint>
#include <memory>

#include "core/budget.hpp"
#include "core/request_trace.hpp"
#include "graph/ch_table.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/search_space.hpp"
#include "net/protocol.hpp"
#include "net/snapshot.hpp"

namespace mts::net {

class QueryEngine {
 public:
  /// `snapshot` must outlive the engine; `budget_template` is copied into
  /// every request (all-zero caps = unlimited).
  QueryEngine(const Snapshot& snapshot, const WorkBudget& budget_template);

  /// Answers one request.  Never throws: failures become `err` responses
  /// tagged with the error taxonomy.  The `routed.request` fault point
  /// fires here (once per request hit) when armed.  When `trace` is
  /// non-null it accumulates this request's work counters — including the
  /// work performed before a failure — for spans and the slow-query log.
  /// A non-null `deadline_clock` arms a wall-clock deadline at absolute
  /// instant `deadline_s` on that clock (the server's lifetime Stopwatch):
  /// the request's budget copy then answers `err ... deadline-exceeded:`
  /// once the work runs past it (DESIGN.md §15).
  Response handle(const Request& request, RequestTrace* trace = nullptr,
                  const Stopwatch* deadline_clock = nullptr, double deadline_s = 0.0);

 private:
  Response dispatch(const Request& request, WorkBudget& budget, RequestTrace* trace);
  Response route(const Request& request, WorkBudget& budget, RequestTrace* trace);
  Response alternatives(const Request& request, WorkBudget& budget, RequestTrace* trace);
  Response table(const Request& request, WorkBudget& budget, RequestTrace* trace);
  Response attack(const Request& request, WorkBudget& budget, RequestTrace* trace);
  void check_endpoints(const Request& request) const;
  /// The snapshot's CH bundle for the request's weight kind (nullptr when
  /// MTS_CH=0 — callers fall back to the Dijkstra/Yen paths).
  [[nodiscard]] const ChAssets* ch_for(const Request& request) const;
  /// Per-engine many-to-many machinery for a weight kind, created on the
  /// first table request (buckets are sized to the graph; most engines
  /// never see a table).
  ChTableQuery& table_query_for(const Request& request, const ChAssets& assets);

  const Snapshot* snapshot_;
  WorkBudget budget_template_;
  SearchSpace workspace_;  // reused across route queries, one per engine
  ChSearchSpace ch_workspace_;     // CH query/PHAST scratch, one per engine
  SearchSpace reverse_bounds_;     // kalt: PHAST distances-to-target
  std::unique_ptr<ChTableQuery> time_table_;
  std::unique_ptr<ChTableQuery> length_table_;
};

/// Appends the registry's `routed.*` / `dijkstra.*` / `yen.*` / `ch.*` /
/// `cch.*` slice to a
/// stats response: every matching counter as `name=value` and every
/// matching histogram as `name.count` / `name.p50` / `name.p99` (quantile
/// estimates over the log buckets).  Key order follows the registry's
/// name-sorted snapshot, so responses are deterministic; values are all
/// zero until MTS_METRICS/MTS_TRACE (or --obs) turns recording on.
void append_registry_stats(Response& response);

}  // namespace mts::net
