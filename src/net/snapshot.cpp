#include "net/snapshot.hpp"

#include <utility>

#include "obs/phase.hpp"
#include "osm/xml.hpp"

namespace mts::net {

Snapshot::Snapshot(osm::RoadNetwork network)
    : network_(std::move(network)),
      time_weights_(attack::make_weights(network_, attack::WeightType::Time)),
      length_weights_(attack::make_weights(network_, attack::WeightType::Length)),
      uniform_costs_(attack::make_costs(network_, attack::CostType::Uniform)) {
  // The CH preprocessing pays for itself after a handful of requests; the
  // daemon does it once here, before the listener opens, so no request
  // ever observes a half-built hierarchy.
  if (ch_enabled()) {
    obs::ScopedPhase phase("ch_build");
    time_ch_ = std::make_unique<ChAssets>(ChAssets::build(network_.graph(), time_weights_));
    length_ch_ = std::make_unique<ChAssets>(ChAssets::build(network_.graph(), length_weights_));
  }
}

Snapshot Snapshot::load(const std::string& osm_path) {
  return Snapshot(osm::RoadNetwork::build(osm::load_osm_xml(osm_path)));
}

}  // namespace mts::net
