#include "net/snapshot.hpp"

#include <utility>

#include "osm/xml.hpp"

namespace mts::net {

Snapshot::Snapshot(osm::RoadNetwork network)
    : network_(std::move(network)),
      time_weights_(attack::make_weights(network_, attack::WeightType::Time)),
      length_weights_(attack::make_weights(network_, attack::WeightType::Length)),
      uniform_costs_(attack::make_costs(network_, attack::CostType::Uniform)) {}

Snapshot Snapshot::load(const std::string& osm_path) {
  return Snapshot(osm::RoadNetwork::build(osm::load_osm_xml(osm_path)));
}

}  // namespace mts::net
