// Minimal RAII wrappers over POSIX TCP sockets (loopback service use).
//
// The routed daemon and loadgen client need exactly four operations: bind+
// accept with a poll timeout (so the accept loop can observe a shutdown
// flag), connect, blocking read, and full write.  These wrappers own the
// file descriptors, retry EINTR, and suppress SIGPIPE on writes; every
// hard failure surfaces as mts::Error with errno context instead of a raw
// return code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mts::net {

/// Movable owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Blocking read of up to `capacity` bytes.  Returns 0 on orderly EOF;
  /// throws Error on hard failure.  Retries EINTR.
  std::size_t read_some(char* buffer, std::size_t capacity) const;

  /// Writes all of `data` (looping over short writes, EINTR-safe,
  /// SIGPIPE-suppressed).  Throws Error when the peer is gone.
  void write_all(std::string_view data) const;

  /// Like write_all, but gives the peer at most `timeout_ms` of cumulative
  /// not-draining time: non-blocking sends interleaved with POLLOUT waits.
  /// Returns false when the timeout expires mid-write (the peer is a slow
  /// client; some prefix of `data` may have been sent), true on completion.
  /// `timeout_ms <= 0` degrades to plain blocking write_all.  Throws Error
  /// on hard socket failure, like write_all.
  [[nodiscard]] bool write_all_for(std::string_view data, int timeout_ms) const;

  /// Half-closes the read side: a peer blocked in read_some() on this fd
  /// wakes with EOF.  Used to interrupt reader threads at shutdown.
  void shutdown_read() const;

  /// Shuts down both directions: our reader wakes with EOF and the peer
  /// sees the connection end.  Used to evict slow clients without closing
  /// the fd out from under threads still holding it.
  void shutdown_both() const;

  /// Full close (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to `host` (an IPv4 literal, normally
/// 127.0.0.1).  Port 0 binds an ephemeral port; port() reports the choice.
class Listener {
 public:
  static Listener bind(const std::string& host, std::uint16_t port, int backlog = 64);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return socket_.valid(); }

  /// Waits up to `timeout_ms` for a connection.  Returns the accepted
  /// socket, or nullopt on timeout (and on transient accept errors, so a
  /// flaky client cannot kill the accept loop).  Throws Error only when
  /// the listener itself is broken.
  std::optional<Socket> accept_for(int timeout_ms) const;

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to host:port (IPv4 literal).  Throws Error on failure.
Socket connect_to(const std::string& host, std::uint16_t port);

}  // namespace mts::net
