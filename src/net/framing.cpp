#include "net/framing.hpp"

#include "core/error.hpp"

namespace mts::net {

LineFramer::LineFramer(std::size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {
  require(max_line_bytes_ >= 2, "LineFramer: max_line_bytes must be >= 2");
}

void LineFramer::feed(std::string_view bytes) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state feeds are an append plus an occasional O(n) shift.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
  // An unterminated tail beyond the cap can never become a valid line; fail
  // now instead of buffering an attacker-controlled endless line.
  if (buffer_.find('\n', consumed_) == std::string::npos &&
      partial_bytes() > max_line_bytes_) {
    throw InvalidInput("oversized frame: " + std::to_string(partial_bytes()) +
                       " bytes without a line terminator (cap " +
                       std::to_string(max_line_bytes_) + ")");
  }
}

bool LineFramer::next_line(std::string& line) {
  const std::size_t newline = buffer_.find('\n', consumed_);
  if (newline == std::string::npos) return false;
  std::size_t end = newline;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  const std::size_t length = end - consumed_;
  if (length > max_line_bytes_) {
    consumed_ = newline + 1;  // drop the line, keep the stream parsable
    throw InvalidInput("oversized frame: line of " + std::to_string(length) +
                       " bytes (cap " + std::to_string(max_line_bytes_) + ")");
  }
  line.assign(buffer_, consumed_, length);
  consumed_ = newline + 1;
  return true;
}

}  // namespace mts::net
