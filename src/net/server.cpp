#include "net/server.hpp"

#include <chrono>
#include <exception>
#include <string_view>
#include <utility>

#include "core/error.hpp"
#include "core/fault.hpp"
#include "core/timer.hpp"
#include "net/engine.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

obs::CounterId requests_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.requests");
  return id;
}

obs::CounterId ok_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.responses_ok");
  return id;
}

obs::CounterId error_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.responses_error");
  return id;
}

obs::CounterId connections_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.connections");
  return id;
}

obs::CounterId protocol_errors_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.protocol_errors");
  return id;
}

obs::HistogramId latency_histogram() {
  static const obs::HistogramId id =
      obs::MetricsRegistry::instance().histogram("routed.request_latency_s");
  return id;
}

// The overload counters below are registered lazily inside their accessor,
// so a run where the machinery never fires keeps them out of metrics
// snapshots entirely (bench_gate byte-identity, like fault.injected).

obs::CounterId shed_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.shed");
  return id;
}

obs::CounterId deadline_exceeded_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.deadline_exceeded");
  return id;
}

obs::CounterId slow_client_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.slow_client_disconnects");
  return id;
}

constexpr std::string_view kDeadlineTaxonomy = "deadline-exceeded";

bool is_deadline_error(const Response& response) {
  return !response.ok &&
         std::string_view(response.error).substr(0, kDeadlineTaxonomy.size()) ==
             kDeadlineTaxonomy;
}

}  // namespace

RoutedServer::RoutedServer(const Snapshot& snapshot, RoutedOptions options)
    : snapshot_(&snapshot),
      options_(std::move(options)),
      window_(options_.window_slot_s, options_.window_slots) {
  if (options_.slowlog_threshold_s > 0.0) {
    slowlog_ = std::make_unique<obs::SlowQueryLog>(options_.slowlog_path);
  }
}

RoutedServer::~RoutedServer() {
  if (queue_ && !drained_) {
    request_stop();
    serve(nullptr);  // listener already stopped accepting; runs the drain
  }
}

void RoutedServer::start() {
  require(!queue_, "RoutedServer::start called twice");
  const std::size_t workers = options_.threads != 0 ? options_.threads : mts::num_threads();
  listener_ = Listener::bind(options_.host, options_.port);
  engines_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    engines_.push_back(std::make_unique<QueryEngine>(*snapshot_, options_.request_budget));
  }
  // The TaskQueue bound backstops the admission policy: racing readers can
  // overshoot the atomic depth check by at most one each, and the bound
  // turns that overshoot into a definite QueueFull answer instead of
  // backlog growth.
  queue_ = std::make_unique<TaskQueue>(workers, options_.max_queue);
}

std::uint16_t RoutedServer::port() const {
  require(listener_.valid(), "RoutedServer::port before start()");
  return listener_.port();
}

void RoutedServer::serve(const std::atomic<bool>* external_stop) {
  require(queue_ != nullptr, "RoutedServer::serve before start()");
  while (!stop_.load() && !(external_stop != nullptr && external_stop->load())) {
    std::optional<Socket> accepted = listener_.accept_for(200);
    if (!accepted) continue;
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connection->writer = std::thread([this, connection] { writer_loop(connection); });
    connections_count_.fetch_add(1);
    obs::add(connections_counter());
    MutexLock lock(connections_mutex_);
    connections_.push_back(connection);
    readers_.emplace_back([this, connection] { reader_loop(connection); });
  }

  // Drain: stop accepting, wake every reader, let each wait for its own
  // pending responses, then retire the queue.
  stop_.store(true);
  listener_.close();
  std::vector<std::thread> readers;
  {
    MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      // The connection mutex orders this against the reader's own close():
      // a reader that already hit EOF may be closing the fd right now.
      MutexLock connection_lock(connection->mutex);
      connection->socket.shutdown_read();
    }
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) reader.join();
  queue_->close();
  {
    MutexLock lock(connections_mutex_);
    connections_.clear();
  }
  drained_ = true;
}

void RoutedServer::reader_loop(const std::shared_ptr<Connection>& connection) {
  LineFramer framer(options_.max_line_bytes);
  std::vector<char> buffer(4096);
  std::string line;
  bool readable = true;
  while (readable) {
    std::size_t received = 0;
    try {
      received = connection->socket.read_some(buffer.data(), buffer.size());
    } catch (const std::exception&) {
      break;  // hard socket error: treat as EOF and drain what we owe
    }
    if (received == 0) break;
    try {
      framer.feed(std::string_view(buffer.data(), received));
    } catch (const InvalidInput& oversized) {
      // Unterminated over-limit line: there is no line boundary left to
      // resync on, so answer once and hang up.
      protocol_errors_.fetch_add(1);
      obs::add(protocol_errors_counter());
      Response response;
      response.error = std::string("invalid-input: ") + oversized.what();
      deliver_response(*connection, serialize_response(response) + "\n", false);
      readable = false;
    }
    for (;;) {
      try {
        if (!framer.next_line(line)) break;
      } catch (const InvalidInput& oversized) {
        // Oversized but terminated: the framer already advanced past it.
        protocol_errors_.fetch_add(1);
        obs::add(protocol_errors_counter());
        Response response;
        response.error = std::string("invalid-input: ") + oversized.what();
        deliver_response(*connection, serialize_response(response) + "\n", false);
        continue;
      }
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      handle_line(connection, line);
    }
  }
  // EOF (or shutdown_read): every parsed request still owes a response,
  // and every queued response must reach the wire (unless the connection
  // was declared dead, which discards the backlog by contract).
  {
    MutexLock lock(connection->mutex);
    while (connection->pending != 0 ||
           (!connection->write_queue.empty() && !connection->dead)) {
      connection->drained.wait(lock);
    }
    connection->writer_exit = true;
  }
  connection->writer_wake.notify_all();
  if (connection->writer.joinable()) connection->writer.join();
  // Close only after the writer is joined — no thread can still be inside
  // a syscall on this fd.  Under the mutex: races the drain's shutdown_read.
  MutexLock lock(connection->mutex);
  connection->socket.close();
}

void RoutedServer::writer_loop(const std::shared_ptr<Connection>& connection) {
  for (;;) {
    std::string wire_line;
    {
      MutexLock lock(connection->mutex);
      while (connection->write_queue.empty() && !connection->writer_exit &&
             !connection->dead) {
        connection->writer_wake.wait(lock);
      }
      // dead: the backlog was discarded; exit + empty queue: fully flushed.
      if (connection->dead || connection->write_queue.empty()) return;
      wire_line = std::move(connection->write_queue.front());
      connection->write_queue.pop_front();
      connection->write_queue_bytes -= wire_line.size();
    }
    bool delivered = true;
    switch (MTS_FAULT_ACTION("net.write")) {
      case fault::Action::Stall:
        // Emulates a peer that stops draining: the response still goes out
        // after the stall, but everything queued behind it backs up.
        std::this_thread::sleep_for(std::chrono::milliseconds(fault::kStallMillis));
        break;
      case fault::Action::None:
        break;
      default:
        delivered = false;  // throw/nan/limit: emulate a peer gone mid-write
        break;
    }
    if (delivered) {
      try {
        delivered = connection->socket.write_all_for(
            wire_line, static_cast<int>(options_.write_timeout_s * 1000.0));
      } catch (const std::exception&) {
        delivered = false;  // peer hung up without reading its answers
      }
    }
    if (!delivered) {
      {
        MutexLock lock(connection->mutex);
        if (!connection->dead) evict_slow_client(*connection);
        connection->drained.notify_all();
      }
      return;
    }
    MutexLock lock(connection->mutex);
    if (connection->write_queue.empty()) connection->drained.notify_all();
  }
}

void RoutedServer::deliver_response(Connection& connection, std::string wire_line,
                                    bool finishes_pending) {
  bool notify_writer = false;
  bool evicted = false;
  {
    MutexLock lock(connection.mutex);
    if (!connection.dead) {
      if (connection.write_queue_bytes + wire_line.size() >
          options_.max_write_queue_bytes) {
        // The byte cap is the always-on memory backstop behind
        // MTS_WRITE_TIMEOUT_MS: a peer this far behind gets evicted even
        // with blocking writes configured.
        evict_slow_client(connection);
        evicted = true;
      } else {
        connection.write_queue_bytes += wire_line.size();
        connection.write_queue.push_back(std::move(wire_line));
        notify_writer = true;
      }
    }
    if (finishes_pending && --connection.pending == 0) connection.drained.notify_all();
    if (evicted) connection.drained.notify_all();
  }
  if (notify_writer) connection.writer_wake.notify_one();
  if (evicted) {
    connection.writer_wake.notify_all();  // writer must observe `dead` and exit
  }
}

void RoutedServer::evict_slow_client(Connection& connection) {
  connection.dead = true;
  connection.write_queue.clear();
  connection.write_queue_bytes = 0;
  // Count before the shutdown: a peer that observes its EOF and then asks
  // another connection for stats must already see this disconnect.
  slow_client_disconnects_.fetch_add(1);
  obs::add(slow_client_counter());
  // Both directions: our reader wakes with EOF, the peer sees the
  // connection end.  The fd itself stays open until the writer is joined.
  connection.socket.shutdown_both();
}

void RoutedServer::handle_line(const std::shared_ptr<Connection>& connection,
                               const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const InvalidInput& error) {
    protocol_errors_.fetch_add(1);
    obs::add(protocol_errors_counter());
    Response response;
    response.error = std::string("invalid-input: ") + error.what();
    deliver_response(*connection, serialize_response(response) + "\n", false);
    return;
  }

  requests_.fetch_add(1);
  obs::add(requests_counter());

  if (request.verb == Verb::Stats) {
    // Served inline by the reader thread, never queued: stats must answer
    // even when every worker is pinned mid-burst.  The response touches
    // only atomics, the window mutex, and a registry snapshot.
    responses_ok_.fetch_add(1);
    obs::add(ok_counter());
    deliver_response(*connection, serialize_response(build_stats_response(request.id)) + "\n",
                     false);
    return;
  }

  // Admission control (DESIGN.md §15): decide from the instantaneous
  // depth before touching the queue or the pending count, so a shed
  // request costs two atomic loads and one queued response.
  if (should_shed(request.verb, queue_depth_.load(std::memory_order_relaxed),
                  options_.max_queue)) {
    shed_request(*connection, request, "queue at capacity", false);
    return;
  }
  if (options_.max_inflight != 0) {
    bool over_inflight = false;
    {
      MutexLock lock(connection->mutex);
      if (connection->pending >= options_.max_inflight) {
        over_inflight = true;
      } else {
        ++connection->pending;
      }
    }
    if (over_inflight) {
      shed_request(*connection, request, "connection inflight cap", false);
      return;
    }
  } else {
    MutexLock lock(connection->mutex);
    ++connection->pending;
  }

  const double start_s = clock_.seconds();
  // Effective deadline: the request's own token wins over the server
  // default; measured from parse so queue wait counts against it.
  const double deadline_window_s =
      request.deadline_ms != 0 ? request.deadline_ms / 1000.0 : options_.deadline_s;
  const double deadline_at_s = deadline_window_s > 0.0 ? start_s + deadline_window_s : 0.0;
  const double span_start_s =
      obs::trace_enabled() ? obs::MetricsRegistry::instance().seconds_since_epoch() : 0.0;
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  const TaskQueue::SubmitResult submitted = queue_->try_submit(
      [this, connection, request, start_s, deadline_at_s, span_start_s](std::size_t worker) {
        RequestTrace trace;
        Response response;
        if (deadline_at_s > 0.0 && clock_.seconds() >= deadline_at_s) {
          // Expired while queued: answer without burning a worker on work
          // whose result nobody is waiting for anymore.
          response.id = request.id;
          response.error = std::string(kDeadlineTaxonomy) + ": expired while queued";
        } else {
          response = engines_[worker]->handle(request, &trace,
                                              deadline_at_s > 0.0 ? &clock_ : nullptr,
                                              deadline_at_s);
        }
        // Latency covers parse-to-handled, not the response write.  All
        // bookkeeping lands BEFORE the response bytes leave, so a client
        // that reads its answer and then asks for stats sees this request
        // already counted in every view (totals, window, slowlog, span).
        const double latency_s = clock_.seconds() - start_s;
        if (response.ok) {
          responses_ok_.fetch_add(1);
          obs::add(ok_counter());
        } else {
          responses_error_.fetch_add(1);
          obs::add(error_counter());
          if (is_deadline_error(response)) {
            deadline_exceeded_.fetch_add(1);
            obs::add(deadline_exceeded_counter());
          }
        }
        window_.record(clock_.seconds(), latency_s);
        obs::observe(latency_histogram(), reported_seconds(latency_s));
        record_outcome(request, response, trace, latency_s, span_start_s);
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        deliver_response(*connection, serialize_response(response) + "\n", true);
      });
  if (submitted == TaskQueue::SubmitResult::Accepted) return;
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  if (submitted == TaskQueue::SubmitResult::QueueFull) {
    // Racing readers overshot the depth check; the queue bound is the
    // backstop and this request sheds like any other.
    shed_request(*connection, request, "queue at capacity", true);
    return;
  }
  // Queue already closed (shutdown race): answer inline so the request
  // is still never dropped.
  Response response;
  response.id = request.id;
  response.error = "error: server shutting down";
  responses_error_.fetch_add(1);
  obs::add(error_counter());
  deliver_response(*connection, serialize_response(response) + "\n", true);
}

bool RoutedServer::should_shed(Verb verb, std::size_t depth, std::size_t max_queue) {
  if (max_queue == 0) return false;
  const bool expensive = verb == Verb::Attack || verb == Verb::Table;
  const bool search = expensive || verb == Verb::Route || verb == Verb::Kalt;
  if (!search) return false;  // ping/graph/stats: cheap control plane
  if (depth >= max_queue) return true;            // full: shed every search verb
  return expensive && depth * 2 >= max_queue;     // half full: shed expensive first
}

void RoutedServer::shed_request(Connection& connection, const Request& request,
                                const char* reason, bool finishes_pending) {
  shed_.fetch_add(1);
  obs::add(shed_counter());
  responses_error_.fetch_add(1);
  obs::add(error_counter());
  Response response;
  response.id = request.id;
  response.error = std::string("overloaded: ") + reason;
  // Sheds are always outliers worth keeping: record_outcome logs any
  // error taxonomy to the slowlog regardless of the latency threshold.
  const double span_start_s =
      obs::trace_enabled() ? obs::MetricsRegistry::instance().seconds_since_epoch() : 0.0;
  record_outcome(request, response, RequestTrace{}, 0.0, span_start_s);
  deliver_response(connection, serialize_response(response) + "\n", finishes_pending);
}

void RoutedServer::record_outcome(const Request& request, const Response& response,
                                  const RequestTrace& trace, double latency_s,
                                  double span_start_s) {
  // Threshold decisions use the raw latency so MTS_SLOWLOG keeps working
  // under MTS_TIMING=0; errors are always outliers worth keeping.
  if (slowlog_ && (latency_s >= options_.slowlog_threshold_s || !response.ok)) {
    obs::SlowLogEntry entry;
    entry.verb = to_string(request.verb);
    entry.id = request.id;
    entry.latency_s = reported_seconds(latency_s);
    entry.fields.emplace_back("dijkstra_runs", trace.dijkstra_runs);
    entry.fields.emplace_back("nodes_settled", trace.nodes_settled);
    entry.fields.emplace_back("edges_scanned", trace.edges_scanned);
    entry.fields.emplace_back("spur_searches", trace.spur_searches);
    entry.fields.emplace_back("spurs_pruned", trace.spurs_pruned);
    entry.fields.emplace_back("oracle_calls", trace.oracle_calls);
    entry.fields.emplace_back("ch_queries", trace.ch_queries);
    entry.fields.emplace_back("ch_nodes_settled", trace.ch_nodes_settled);
    entry.error = response.error;
    slowlog_->append(entry);
  }
  if (obs::trace_enabled()) {
    obs::TraceEvent event;
    event.name = to_string(request.verb);
    event.cat = "mts.request";
    event.ts_s = span_start_s;
    event.dur_s = reported_seconds(latency_s);
    event.args.emplace_back("id", std::to_string(request.id));
    event.args.emplace_back("edges_scanned", std::to_string(trace.edges_scanned));
    event.args.emplace_back("nodes_settled", std::to_string(trace.nodes_settled));
    event.args.emplace_back("spur_searches", std::to_string(trace.spur_searches));
    event.args.emplace_back("spurs_pruned", std::to_string(trace.spurs_pruned));
    event.args.emplace_back("oracle_calls", std::to_string(trace.oracle_calls));
    event.args.emplace_back("ch_queries", std::to_string(trace.ch_queries));
    event.args.emplace_back("ch_nodes_settled", std::to_string(trace.ch_nodes_settled));
    if (!response.ok) event.args.emplace_back("error", response.error);
    obs::MetricsRegistry::instance().record_trace_event(std::move(event));
  }
}

obs::WindowSnapshot RoutedServer::window_snapshot() const {
  return window_.snapshot(clock_.seconds());
}

Response RoutedServer::build_stats_response(std::uint64_t id) const {
  Response response;
  response.id = id;
  response.ok = true;
  response.verb = "stats";
  const RoutedStats totals = stats();
  response.fields.emplace_back("server.connections", std::to_string(totals.connections));
  response.fields.emplace_back("server.deadline_exceeded",
                               std::to_string(totals.deadline_exceeded));
  response.fields.emplace_back("server.protocol_errors", std::to_string(totals.protocol_errors));
  response.fields.emplace_back("server.requests", std::to_string(totals.requests));
  response.fields.emplace_back("server.responses_error", std::to_string(totals.responses_error));
  response.fields.emplace_back("server.responses_ok", std::to_string(totals.responses_ok));
  response.fields.emplace_back("server.shed", std::to_string(totals.shed));
  response.fields.emplace_back("server.slow_client_disconnects",
                               std::to_string(totals.slow_client_disconnects));
  // Gauge, not a counter: the registry has no gauge type, so the stats
  // verb reports the instantaneous depth directly (always on, like the
  // server.* totals).
  response.fields.emplace_back("routed.queue_depth", std::to_string(totals.queue_depth));
  const obs::WindowSnapshot window = window_snapshot();
  response.fields.emplace_back("window.count", std::to_string(window.count));
  response.fields.emplace_back("window.p50_s", format_wire_double(reported_seconds(window.p50_s)));
  response.fields.emplace_back("window.p99_s", format_wire_double(reported_seconds(window.p99_s)));
  response.fields.emplace_back("window.qps", format_wire_double(window.qps));
  response.fields.emplace_back("window.seconds", format_wire_double(window.seconds));
  append_registry_stats(response);  // merges the registry slice, then sorts every key
  return response;
}

RoutedStats RoutedServer::stats() const {
  RoutedStats stats;
  stats.connections = connections_count_.load();
  stats.requests = requests_.load();
  stats.responses_ok = responses_ok_.load();
  stats.responses_error = responses_error_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.shed = shed_.load();
  stats.deadline_exceeded = deadline_exceeded_.load();
  stats.slow_client_disconnects = slow_client_disconnects_.load();
  stats.queue_depth = queue_depth_.load();
  return stats;
}

}  // namespace mts::net
