#include "net/server.hpp"

#include <exception>
#include <utility>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "net/engine.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

obs::CounterId requests_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.requests");
  return id;
}

obs::CounterId ok_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.responses_ok");
  return id;
}

obs::CounterId error_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.responses_error");
  return id;
}

obs::CounterId connections_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.connections");
  return id;
}

obs::CounterId protocol_errors_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.protocol_errors");
  return id;
}

obs::HistogramId latency_histogram() {
  static const obs::HistogramId id =
      obs::MetricsRegistry::instance().histogram("routed.request_latency_s");
  return id;
}

}  // namespace

RoutedServer::RoutedServer(const Snapshot& snapshot, RoutedOptions options)
    : snapshot_(&snapshot),
      options_(std::move(options)),
      window_(options_.window_slot_s, options_.window_slots) {
  if (options_.slowlog_threshold_s > 0.0) {
    slowlog_ = std::make_unique<obs::SlowQueryLog>(options_.slowlog_path);
  }
}

RoutedServer::~RoutedServer() {
  if (queue_ && !drained_) {
    request_stop();
    serve(nullptr);  // listener already stopped accepting; runs the drain
  }
}

void RoutedServer::start() {
  require(!queue_, "RoutedServer::start called twice");
  const std::size_t workers = options_.threads != 0 ? options_.threads : mts::num_threads();
  listener_ = Listener::bind(options_.host, options_.port);
  engines_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    engines_.push_back(std::make_unique<QueryEngine>(*snapshot_, options_.request_budget));
  }
  queue_ = std::make_unique<TaskQueue>(workers);
}

std::uint16_t RoutedServer::port() const {
  require(listener_.valid(), "RoutedServer::port before start()");
  return listener_.port();
}

void RoutedServer::serve(const std::atomic<bool>* external_stop) {
  require(queue_ != nullptr, "RoutedServer::serve before start()");
  while (!stop_.load() && !(external_stop != nullptr && external_stop->load())) {
    std::optional<Socket> accepted = listener_.accept_for(200);
    if (!accepted) continue;
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connections_count_.fetch_add(1);
    obs::add(connections_counter());
    MutexLock lock(connections_mutex_);
    connections_.push_back(connection);
    readers_.emplace_back([this, connection] { reader_loop(connection); });
  }

  // Drain: stop accepting, wake every reader, let each wait for its own
  // pending responses, then retire the queue.
  stop_.store(true);
  listener_.close();
  std::vector<std::thread> readers;
  {
    MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      // The connection mutex orders this against the reader's own close():
      // a reader that already hit EOF may be closing the fd right now.
      MutexLock connection_lock(connection->mutex);
      connection->socket.shutdown_read();
    }
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) reader.join();
  queue_->close();
  {
    MutexLock lock(connections_mutex_);
    connections_.clear();
  }
  drained_ = true;
}

void RoutedServer::reader_loop(const std::shared_ptr<Connection>& connection) {
  LineFramer framer(options_.max_line_bytes);
  std::vector<char> buffer(4096);
  std::string line;
  bool readable = true;
  while (readable) {
    std::size_t received = 0;
    try {
      received = connection->socket.read_some(buffer.data(), buffer.size());
    } catch (const std::exception&) {
      break;  // hard socket error: treat as EOF and drain what we owe
    }
    if (received == 0) break;
    try {
      framer.feed(std::string_view(buffer.data(), received));
    } catch (const InvalidInput& oversized) {
      // Unterminated over-limit line: there is no line boundary left to
      // resync on, so answer once and hang up.
      protocol_errors_.fetch_add(1);
      obs::add(protocol_errors_counter());
      Response response;
      response.error = std::string("invalid-input: ") + oversized.what();
      write_response(*connection, serialize_response(response) + "\n");
      readable = false;
    }
    for (;;) {
      try {
        if (!framer.next_line(line)) break;
      } catch (const InvalidInput& oversized) {
        // Oversized but terminated: the framer already advanced past it.
        protocol_errors_.fetch_add(1);
        obs::add(protocol_errors_counter());
        Response response;
        response.error = std::string("invalid-input: ") + oversized.what();
        write_response(*connection, serialize_response(response) + "\n");
        continue;
      }
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      handle_line(connection, line);
    }
  }
  // EOF (or shutdown_read): every parsed request still owes a response.
  MutexLock lock(connection->mutex);
  while (connection->pending != 0) connection->drained.wait(lock);
  connection->socket.close();  // under the mutex: races the drain's shutdown_read
}

void RoutedServer::handle_line(const std::shared_ptr<Connection>& connection,
                               const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const InvalidInput& error) {
    protocol_errors_.fetch_add(1);
    obs::add(protocol_errors_counter());
    Response response;
    response.error = std::string("invalid-input: ") + error.what();
    write_response(*connection, serialize_response(response) + "\n");
    return;
  }

  requests_.fetch_add(1);
  obs::add(requests_counter());

  if (request.verb == Verb::Stats) {
    // Served inline by the reader thread, never queued: stats must answer
    // even when every worker is pinned mid-burst.  The response touches
    // only atomics, the window mutex, and a registry snapshot.
    responses_ok_.fetch_add(1);
    obs::add(ok_counter());
    write_response(*connection, serialize_response(build_stats_response(request.id)) + "\n");
    return;
  }

  {
    MutexLock lock(connection->mutex);
    ++connection->pending;
  }
  const double start_s = clock_.seconds();
  const double span_start_s =
      obs::trace_enabled() ? obs::MetricsRegistry::instance().seconds_since_epoch() : 0.0;
  const bool submitted =
      queue_->submit([this, connection, request, start_s, span_start_s](std::size_t worker) {
        RequestTrace trace;
        const Response response = engines_[worker]->handle(request, &trace);
        // Latency covers parse-to-handled, not the response write.  All
        // bookkeeping lands BEFORE the response bytes leave, so a client
        // that reads its answer and then asks for stats sees this request
        // already counted in every view (totals, window, slowlog, span).
        const double latency_s = clock_.seconds() - start_s;
        if (response.ok) {
          responses_ok_.fetch_add(1);
          obs::add(ok_counter());
        } else {
          responses_error_.fetch_add(1);
          obs::add(error_counter());
        }
        window_.record(clock_.seconds(), latency_s);
        obs::observe(latency_histogram(), reported_seconds(latency_s));
        record_outcome(request, response, trace, latency_s, span_start_s);
        write_response(*connection, serialize_response(response) + "\n");
        MutexLock lock(connection->mutex);
        if (--connection->pending == 0) connection->drained.notify_all();
      });
  if (!submitted) {
    // Queue already closed (shutdown race): answer inline so the request
    // is still never dropped.
    Response response;
    response.id = request.id;
    response.error = "error: server shutting down";
    responses_error_.fetch_add(1);
    obs::add(error_counter());
    write_response(*connection, serialize_response(response) + "\n");
    MutexLock lock(connection->mutex);
    if (--connection->pending == 0) connection->drained.notify_all();
  }
}

void RoutedServer::write_response(Connection& connection, const std::string& wire_line) {
  MutexLock lock(connection.mutex);
  if (!connection.socket.valid()) return;
  try {
    connection.socket.write_all(wire_line);
  } catch (const std::exception&) {
    // Peer hung up without reading its answers; nothing left to deliver.
  }
}

void RoutedServer::record_outcome(const Request& request, const Response& response,
                                  const RequestTrace& trace, double latency_s,
                                  double span_start_s) {
  // Threshold decisions use the raw latency so MTS_SLOWLOG keeps working
  // under MTS_TIMING=0; errors are always outliers worth keeping.
  if (slowlog_ && (latency_s >= options_.slowlog_threshold_s || !response.ok)) {
    obs::SlowLogEntry entry;
    entry.verb = to_string(request.verb);
    entry.id = request.id;
    entry.latency_s = reported_seconds(latency_s);
    entry.fields.emplace_back("dijkstra_runs", trace.dijkstra_runs);
    entry.fields.emplace_back("nodes_settled", trace.nodes_settled);
    entry.fields.emplace_back("edges_scanned", trace.edges_scanned);
    entry.fields.emplace_back("spur_searches", trace.spur_searches);
    entry.fields.emplace_back("spurs_pruned", trace.spurs_pruned);
    entry.fields.emplace_back("oracle_calls", trace.oracle_calls);
    entry.fields.emplace_back("ch_queries", trace.ch_queries);
    entry.fields.emplace_back("ch_nodes_settled", trace.ch_nodes_settled);
    entry.error = response.error;
    slowlog_->append(entry);
  }
  if (obs::trace_enabled()) {
    obs::TraceEvent event;
    event.name = to_string(request.verb);
    event.cat = "mts.request";
    event.ts_s = span_start_s;
    event.dur_s = reported_seconds(latency_s);
    event.args.emplace_back("id", std::to_string(request.id));
    event.args.emplace_back("edges_scanned", std::to_string(trace.edges_scanned));
    event.args.emplace_back("nodes_settled", std::to_string(trace.nodes_settled));
    event.args.emplace_back("spur_searches", std::to_string(trace.spur_searches));
    event.args.emplace_back("spurs_pruned", std::to_string(trace.spurs_pruned));
    event.args.emplace_back("oracle_calls", std::to_string(trace.oracle_calls));
    event.args.emplace_back("ch_queries", std::to_string(trace.ch_queries));
    event.args.emplace_back("ch_nodes_settled", std::to_string(trace.ch_nodes_settled));
    if (!response.ok) event.args.emplace_back("error", response.error);
    obs::MetricsRegistry::instance().record_trace_event(std::move(event));
  }
}

obs::WindowSnapshot RoutedServer::window_snapshot() const {
  return window_.snapshot(clock_.seconds());
}

Response RoutedServer::build_stats_response(std::uint64_t id) const {
  Response response;
  response.id = id;
  response.ok = true;
  response.verb = "stats";
  const RoutedStats totals = stats();
  response.fields.emplace_back("server.connections", std::to_string(totals.connections));
  response.fields.emplace_back("server.protocol_errors", std::to_string(totals.protocol_errors));
  response.fields.emplace_back("server.requests", std::to_string(totals.requests));
  response.fields.emplace_back("server.responses_error", std::to_string(totals.responses_error));
  response.fields.emplace_back("server.responses_ok", std::to_string(totals.responses_ok));
  const obs::WindowSnapshot window = window_snapshot();
  response.fields.emplace_back("window.count", std::to_string(window.count));
  response.fields.emplace_back("window.p50_s", format_wire_double(reported_seconds(window.p50_s)));
  response.fields.emplace_back("window.p99_s", format_wire_double(reported_seconds(window.p99_s)));
  response.fields.emplace_back("window.qps", format_wire_double(window.qps));
  response.fields.emplace_back("window.seconds", format_wire_double(window.seconds));
  append_registry_stats(response);  // merges the registry slice, then sorts every key
  return response;
}

RoutedStats RoutedServer::stats() const {
  RoutedStats stats;
  stats.connections = connections_count_.load();
  stats.requests = requests_.load();
  stats.responses_ok = responses_ok_.load();
  stats.responses_error = responses_error_.load();
  stats.protocol_errors = protocol_errors_.load();
  return stats;
}

}  // namespace mts::net
