#include "net/server.hpp"

#include <exception>
#include <utility>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "net/engine.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace mts::net {

namespace {

obs::CounterId requests_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.requests");
  return id;
}

obs::CounterId ok_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.responses_ok");
  return id;
}

obs::CounterId error_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.responses_error");
  return id;
}

obs::CounterId connections_counter() {
  static const obs::CounterId id = obs::MetricsRegistry::instance().counter("routed.connections");
  return id;
}

obs::CounterId protocol_errors_counter() {
  static const obs::CounterId id =
      obs::MetricsRegistry::instance().counter("routed.protocol_errors");
  return id;
}

obs::HistogramId latency_histogram() {
  static const obs::HistogramId id =
      obs::MetricsRegistry::instance().histogram("routed.request_latency_s");
  return id;
}

}  // namespace

RoutedServer::RoutedServer(const Snapshot& snapshot, RoutedOptions options)
    : snapshot_(&snapshot), options_(std::move(options)) {}

RoutedServer::~RoutedServer() {
  if (queue_ && !drained_) {
    request_stop();
    serve(nullptr);  // listener already stopped accepting; runs the drain
  }
}

void RoutedServer::start() {
  require(!queue_, "RoutedServer::start called twice");
  const std::size_t workers = options_.threads != 0 ? options_.threads : mts::num_threads();
  listener_ = Listener::bind(options_.host, options_.port);
  engines_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    engines_.push_back(std::make_unique<QueryEngine>(*snapshot_, options_.request_budget));
  }
  queue_ = std::make_unique<TaskQueue>(workers);
}

std::uint16_t RoutedServer::port() const {
  require(listener_.valid(), "RoutedServer::port before start()");
  return listener_.port();
}

void RoutedServer::serve(const std::atomic<bool>* external_stop) {
  require(queue_ != nullptr, "RoutedServer::serve before start()");
  while (!stop_.load() && !(external_stop != nullptr && external_stop->load())) {
    std::optional<Socket> accepted = listener_.accept_for(200);
    if (!accepted) continue;
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connections_count_.fetch_add(1);
    obs::add(connections_counter());
    MutexLock lock(connections_mutex_);
    connections_.push_back(connection);
    readers_.emplace_back([this, connection] { reader_loop(connection); });
  }

  // Drain: stop accepting, wake every reader, let each wait for its own
  // pending responses, then retire the queue.
  stop_.store(true);
  listener_.close();
  std::vector<std::thread> readers;
  {
    MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      // The connection mutex orders this against the reader's own close():
      // a reader that already hit EOF may be closing the fd right now.
      MutexLock connection_lock(connection->mutex);
      connection->socket.shutdown_read();
    }
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) reader.join();
  queue_->close();
  {
    MutexLock lock(connections_mutex_);
    connections_.clear();
  }
  drained_ = true;
}

void RoutedServer::reader_loop(const std::shared_ptr<Connection>& connection) {
  LineFramer framer(options_.max_line_bytes);
  std::vector<char> buffer(4096);
  std::string line;
  bool readable = true;
  while (readable) {
    std::size_t received = 0;
    try {
      received = connection->socket.read_some(buffer.data(), buffer.size());
    } catch (const std::exception&) {
      break;  // hard socket error: treat as EOF and drain what we owe
    }
    if (received == 0) break;
    try {
      framer.feed(std::string_view(buffer.data(), received));
    } catch (const InvalidInput& oversized) {
      // Unterminated over-limit line: there is no line boundary left to
      // resync on, so answer once and hang up.
      protocol_errors_.fetch_add(1);
      obs::add(protocol_errors_counter());
      Response response;
      response.error = std::string("invalid-input: ") + oversized.what();
      write_response(*connection, serialize_response(response) + "\n");
      readable = false;
    }
    for (;;) {
      try {
        if (!framer.next_line(line)) break;
      } catch (const InvalidInput& oversized) {
        // Oversized but terminated: the framer already advanced past it.
        protocol_errors_.fetch_add(1);
        obs::add(protocol_errors_counter());
        Response response;
        response.error = std::string("invalid-input: ") + oversized.what();
        write_response(*connection, serialize_response(response) + "\n");
        continue;
      }
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      handle_line(connection, line);
    }
  }
  // EOF (or shutdown_read): every parsed request still owes a response.
  MutexLock lock(connection->mutex);
  while (connection->pending != 0) connection->drained.wait(lock);
  connection->socket.close();  // under the mutex: races the drain's shutdown_read
}

void RoutedServer::handle_line(const std::shared_ptr<Connection>& connection,
                               const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const InvalidInput& error) {
    protocol_errors_.fetch_add(1);
    obs::add(protocol_errors_counter());
    Response response;
    response.error = std::string("invalid-input: ") + error.what();
    write_response(*connection, serialize_response(response) + "\n");
    return;
  }

  requests_.fetch_add(1);
  obs::add(requests_counter());
  {
    MutexLock lock(connection->mutex);
    ++connection->pending;
  }
  const double enqueue_s =
      obs::metrics_enabled() ? obs::MetricsRegistry::instance().seconds_since_epoch() : 0.0;
  const bool submitted = queue_->submit([this, connection, request, enqueue_s](std::size_t worker) {
    const Response response = engines_[worker]->handle(request);
    if (response.ok) {
      responses_ok_.fetch_add(1);
      obs::add(ok_counter());
    } else {
      responses_error_.fetch_add(1);
      obs::add(error_counter());
    }
    write_response(*connection, serialize_response(response) + "\n");
    if (enqueue_s > 0.0) {
      const double latency_s =
          obs::MetricsRegistry::instance().seconds_since_epoch() - enqueue_s;
      obs::observe(latency_histogram(), reported_seconds(latency_s));
    }
    MutexLock lock(connection->mutex);
    if (--connection->pending == 0) connection->drained.notify_all();
  });
  if (!submitted) {
    // Queue already closed (shutdown race): answer inline so the request
    // is still never dropped.
    Response response;
    response.id = request.id;
    response.error = "error: server shutting down";
    responses_error_.fetch_add(1);
    obs::add(error_counter());
    write_response(*connection, serialize_response(response) + "\n");
    MutexLock lock(connection->mutex);
    if (--connection->pending == 0) connection->drained.notify_all();
  }
}

void RoutedServer::write_response(Connection& connection, const std::string& wire_line) {
  MutexLock lock(connection.mutex);
  if (!connection.socket.valid()) return;
  try {
    connection.socket.write_all(wire_line);
  } catch (const std::exception&) {
    // Peer hung up without reading its answers; nothing left to deliver.
  }
}

RoutedStats RoutedServer::stats() const {
  RoutedStats stats;
  stats.connections = connections_count_.load();
  stats.requests = requests_.load();
  stats.responses_ok = responses_ok_.load();
  stats.responses_error = responses_error_.load();
  stats.protocol_errors = protocol_errors_.load();
  return stats;
}

}  // namespace mts::net
