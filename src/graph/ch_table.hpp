// Bucket-based many-to-many distance tables over a ContractionHierarchy
// (Knopp et al. 2007, the OSRM table approach).
//
// One backward upward search per target deposits (target-index, distance)
// entries in per-node buckets; one forward upward search per source then
// scans the buckets of every node it settles and minimizes
// d_forward(v) + bucket(v, t) over all meeting nodes v.  Cost is
// |S| + |T| upward searches — each touching a few hundred nodes — instead
// of |S| full Dijkstras, and the bucket scan replaces the |S|·|T|
// pairwise meets.
//
// The query object owns its buckets and workspace, so it is cheap to
// reuse across calls but must not be shared between threads (same
// contract as SearchSpace).  The hierarchy it borrows stays read-only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/request_trace.hpp"
#include "graph/contraction_hierarchy.hpp"

namespace mts {

class ChTableQuery {
 public:
  /// Borrows `ch`; the hierarchy must outlive the query object.
  explicit ChTableQuery(const ContractionHierarchy& ch);

  /// Exact shortest-path distances for every (source, target) pair,
  /// row-major: result[i * targets.size() + j] = dist(sources[i],
  /// targets[j]).  Unreachable pairs get kInfiniteDistance; a node paired
  /// with itself gets 0.
  std::vector<double> table(std::span<const NodeId> sources, std::span<const NodeId> targets,
                            RequestTrace* trace = nullptr);

 private:
  struct BucketEntry {
    std::uint32_t target_index;
    double dist;
  };

  const ContractionHierarchy* ch_;
  std::vector<std::vector<BucketEntry>> buckets_;  // per node, cleared via touched_
  std::vector<std::uint32_t> touched_;
  ChSearchSpace ws_;
};

}  // namespace mts
