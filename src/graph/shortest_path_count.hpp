// Counting shortest paths — used to certify that a forced path is the
// *exclusive* shortest path (the Force Path Cut success condition).
#pragma once

#include <span>

#include "graph/dijkstra.hpp"

namespace mts {

/// Number of distinct shortest s->t paths under `weights` (capped at
/// `cap` to avoid overflow on dense tie structures), using epsilon-tolerant
/// equality on distances.  Returns 0 if t is unreachable.
///
/// Precondition: no zero-weight cycles (road metrics are strictly
/// positive).  The DP processes nodes in distance order, which is only a
/// topological order of the tight-edge DAG when equal-distance nodes are
/// never mutually reachable through tight edges.
std::uint64_t count_shortest_paths(const DiGraph& g, std::span<const double> weights,
                                   NodeId source, NodeId target,
                                   const EdgeFilter* filter = nullptr,
                                   std::uint64_t cap = 1'000'000, double rel_eps = 1e-9);

}  // namespace mts
