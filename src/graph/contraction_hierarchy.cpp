#include "graph/contraction_hierarchy.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/error.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ChCounters {
  obs::CounterId queries;
  obs::CounterId settled;
  obs::CounterId phast_runs;
  obs::CounterId sweep_relaxations;
  obs::CounterId workspace_reuses;

  static const ChCounters& get() {
    static const ChCounters counters{
        obs::MetricsRegistry::instance().counter("ch.queries"),
        obs::MetricsRegistry::instance().counter("ch.nodes_settled"),
        obs::MetricsRegistry::instance().counter("ch.phast_runs"),
        obs::MetricsRegistry::instance().counter("ch.sweep_relaxations"),
        obs::MetricsRegistry::instance().counter("ch.workspace_reuses"),
    };
    return counters;
  }
};

/// Arc in the preprocessing pool.  `via < 0` means an original edge.
struct PoolArc {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double weight = 0.0;
  std::int32_t via = -1;
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::uint32_t original_edge = 0;
};

/// Preprocessing state: dynamic adjacency over pool arcs between
/// not-yet-contracted nodes.
struct Builder {
  std::vector<PoolArc> pool;
  std::vector<std::vector<std::uint32_t>> out_arcs;  // pool ids by tail
  std::vector<std::vector<std::uint32_t>> in_arcs;   // pool ids by head
  std::vector<std::uint8_t> contracted;
  std::vector<std::uint32_t> depth;  // hierarchy-depth heuristic
  ChOptions options;

  Builder(const DiGraph& g, std::span<const double> weights, const ChOptions& opt)
      : out_arcs(g.num_nodes()),
        in_arcs(g.num_nodes()),
        contracted(g.num_nodes(), 0),
        depth(g.num_nodes(), 0),
        options(opt) {
    for (EdgeId e : g.edges()) {
      const auto u = g.edge_from(e).value();
      const auto v = g.edge_to(e).value();
      require(weights[e.value()] >= 0.0, "CH: negative edge weight");
      if (u == v) continue;  // self loops never lie on shortest paths
      add_arc({u, v, weights[e.value()], -1, 0, 0, e.value()});
    }
  }

  /// Adds an arc, keeping only the lightest per (from, to) pair.
  void add_arc(const PoolArc& arc) {
    for (std::uint32_t id : out_arcs[arc.from]) {
      if (pool[id].to == arc.to) {
        if (arc.weight < pool[id].weight) pool[id] = arc;
        return;
      }
    }
    const auto id = static_cast<std::uint32_t>(pool.size());
    pool.push_back(arc);
    out_arcs[arc.from].push_back(id);
    in_arcs[arc.to].push_back(id);
  }

  /// Bounded local search: does a u->w path avoiding `banned` with length
  /// <= `limit` exist among uncontracted nodes?
  bool witness_exists(std::uint32_t source, std::uint32_t target, std::uint32_t banned,
                      double limit) {
    struct Entry {
      double dist;
      std::uint32_t node;
      std::uint32_t hops;
      bool operator<(const Entry& other) const { return dist > other.dist; }
    };
    // Searches touch a handful of nodes; a linear-scan map beats O(n)
    // clears and hash overhead.
    std::vector<std::pair<std::uint32_t, double>> best;
    auto get = [&](std::uint32_t n) {
      for (const auto& [node, dist] : best) {
        if (node == n) return dist;
      }
      return kInf;
    };
    auto set = [&](std::uint32_t n, double d) {
      for (auto& [node, dist] : best) {
        if (node == n) {
          dist = d;
          return;
        }
      }
      best.emplace_back(n, d);
    };

    std::priority_queue<Entry> queue;
    queue.push({0.0, source, 0});
    set(source, 0.0);
    std::size_t settled = 0;
    while (!queue.empty()) {
      const auto [dist, node, hops] = queue.top();
      queue.pop();
      if (dist > get(node)) continue;  // stale
      if (node == target) return dist <= limit;
      if (++settled > options.witness_settle_limit) break;
      if (hops >= options.witness_hop_limit) continue;
      for (std::uint32_t id : out_arcs[node]) {
        const PoolArc& arc = pool[id];
        if (contracted[arc.to] || arc.to == banned) continue;
        const double candidate = dist + arc.weight;
        if (candidate <= limit && candidate < get(arc.to)) {
          set(arc.to, candidate);
          queue.push({candidate, arc.to, hops + 1});
        }
      }
    }
    return get(target) <= limit;
  }

  /// Shortcuts required to contract `v`; inserts them when `apply`.
  int simulate_or_contract(std::uint32_t v, bool apply) {
    int shortcuts = 0;
    // Snapshot: add_arc may grow in_arcs/out_arcs of other nodes, but not
    // of v, so iterating v's lists by index is safe; still copy ids for
    // clarity.
    const std::vector<std::uint32_t> ins = in_arcs[v];
    const std::vector<std::uint32_t> outs = out_arcs[v];
    for (std::uint32_t in_id : ins) {
      const PoolArc in_arc = pool[in_id];
      if (contracted[in_arc.from]) continue;
      for (std::uint32_t out_id : outs) {
        const PoolArc out_arc = pool[out_id];
        if (contracted[out_arc.to] || out_arc.to == in_arc.from) continue;
        const double through = in_arc.weight + out_arc.weight;
        if (witness_exists(in_arc.from, out_arc.to, v, through)) continue;
        ++shortcuts;
        if (apply) {
          add_arc({in_arc.from, out_arc.to, through, static_cast<std::int32_t>(v), in_id,
                   out_id, 0});
        }
      }
    }
    return shortcuts;
  }

  /// Edge-difference priority (lower contracts earlier).
  double priority(std::uint32_t v) {
    int alive = 0;
    for (std::uint32_t id : in_arcs[v]) alive += contracted[pool[id].from] ? 0 : 1;
    for (std::uint32_t id : out_arcs[v]) alive += contracted[pool[id].to] ? 0 : 1;
    const int shortcuts = simulate_or_contract(v, /*apply=*/false);
    return static_cast<double>(shortcuts) - static_cast<double>(alive) +
           0.5 * static_cast<double>(depth[v]);
  }
};

}  // namespace

bool ChSearchSpace::begin(std::size_t num_nodes) {
  heap_.clear();
  bool reused = true;
  if (dist_f_.size() != num_nodes) {
    stamp_f_.assign(num_nodes, 0);
    stamp_b_.assign(num_nodes, 0);
    dist_f_.assign(num_nodes, 0.0);
    dist_b_.assign(num_nodes, 0.0);
    parent_f_.assign(num_nodes, -1);
    parent_b_.assign(num_nodes, -1);
    epoch_ = 0;
    reused = false;
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_f_.begin(), stamp_f_.end(), 0);
    std::fill(stamp_b_.begin(), stamp_b_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  return reused;
}

bool ChSearchSpace::heap_later(const Entry& a, const Entry& b) {
  if (a.key != b.key) return a.key > b.key;
  if (a.node != b.node) return a.node > b.node;
  return a.forward && !b.forward;
}

void ChSearchSpace::heap_push(double key, std::uint32_t node, bool forward) {
  heap_.push_back({key, node, forward});
  std::push_heap(heap_.begin(), heap_.end(), heap_later);
}

ChSearchSpace::Entry ChSearchSpace::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_later);
  const Entry top = heap_.back();
  heap_.pop_back();
  return top;
}

ChSearchSpace& thread_ch_search_space() {
  thread_local ChSearchSpace ws;
  return ws;
}

ContractionHierarchy ContractionHierarchy::build(const DiGraph& g,
                                                 std::span<const double> weights,
                                                 const ChOptions& options) {
  require(g.finalized(), "CH: graph not finalized");
  require(weights.size() == g.num_edges(), "CH: weights size mismatch");

  const std::size_t n = g.num_nodes();
  Builder builder(g, weights, options);

  ContractionHierarchy ch;
  ch.rank_.assign(n, 0);

  struct QueueEntry {
    double priority;
    std::uint32_t node;
    bool operator<(const QueueEntry& other) const { return priority > other.priority; }
  };
  std::priority_queue<QueueEntry> queue;
  for (std::uint32_t v = 0; v < n; ++v) queue.push({builder.priority(v), v});

  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [stale_priority, v] = queue.top();
    queue.pop();
    if (builder.contracted[v]) continue;
    // Lazy update: re-evaluate; requeue unless still the minimum.
    const double fresh = builder.priority(v);
    if (!queue.empty() && fresh > stale_priority + 1e-9 && fresh > queue.top().priority) {
      queue.push({fresh, v});
      continue;
    }

    builder.simulate_or_contract(v, /*apply=*/true);
    builder.contracted[v] = 1;
    ch.rank_[v] = next_rank++;
    for (std::uint32_t id : builder.in_arcs[v]) {
      const auto u = builder.pool[id].from;
      if (!builder.contracted[u]) {
        builder.depth[u] = std::max(builder.depth[u], builder.depth[v] + 1);
      }
    }
    for (std::uint32_t id : builder.out_arcs[v]) {
      const auto w = builder.pool[id].to;
      if (!builder.contracted[w]) {
        builder.depth[w] = std::max(builder.depth[w], builder.depth[v] + 1);
      }
    }
  }

  // Expansion records, in pool order.
  ch.pool_.reserve(builder.pool.size());
  for (const PoolArc& arc : builder.pool) {
    ch.pool_.push_back({arc.via, arc.left, arc.right, arc.original_edge});
    if (arc.via >= 0) ++ch.num_shortcuts_;
  }

  // Partition arcs into the two search graphs.
  std::vector<std::vector<SearchArc>> up_by_node(n);
  std::vector<std::vector<SearchArc>> down_by_node(n);
  for (std::uint32_t id = 0; id < builder.pool.size(); ++id) {
    const PoolArc& arc = builder.pool[id];
    if (ch.rank_[arc.from] < ch.rank_[arc.to]) {
      up_by_node[arc.from].push_back({arc.from, arc.to, arc.weight, id});
    } else {
      down_by_node[arc.to].push_back({arc.to, arc.from, arc.weight, id});
    }
  }
  auto freeze = [n](const std::vector<std::vector<SearchArc>>& by_node,
                    std::vector<SearchArc>& arcs, std::vector<std::uint32_t>& offsets) {
    offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      offsets[i + 1] = offsets[i] + static_cast<std::uint32_t>(by_node[i].size());
    }
    arcs.clear();
    arcs.reserve(offsets[n]);
    for (const auto& list : by_node) arcs.insert(arcs.end(), list.begin(), list.end());
  };
  freeze(up_by_node, ch.up_arcs_, ch.up_offsets_);
  freeze(down_by_node, ch.down_arcs_, ch.down_offsets_);

  // PHAST sweep order: every up-arc (travel tail -> head, rank[tail] <
  // rank[head]) keyed by DESCENDING head rank.  The one-to-all sweep in
  // bounds_to_target reads dist[head] and improves dist[tail]; descending
  // head order guarantees each head's label is final before any of its
  // in-arcs is applied.  Ranks are unique, so the order is deterministic
  // up to same-head arcs, where the stable sort keeps CSR order.
  ch.sweep_arcs_.reserve(ch.up_arcs_.size());
  for (const SearchArc& arc : ch.up_arcs_) {
    ch.sweep_arcs_.push_back({arc.base, arc.other, arc.weight});
  }
  std::stable_sort(ch.sweep_arcs_.begin(), ch.sweep_arcs_.end(),
                   [&ch](const SweepArc& a, const SweepArc& b) {
                     return ch.rank_[a.head] > ch.rank_[b.head];
                   });
  return ch;
}

void ContractionHierarchy::unpack(std::uint32_t pool_id, std::vector<EdgeId>& out) const {
  const PoolRecord& record = pool_[pool_id];
  if (record.via < 0) {
    out.push_back(EdgeId(record.original_edge));
    return;
  }
  unpack(record.left, out);
  unpack(record.right, out);
}

ContractionHierarchy::QueryResult ContractionHierarchy::query(NodeId source,
                                                              NodeId target) const {
  return run_query(source, target, /*need_path=*/true, thread_ch_search_space(), nullptr);
}

ContractionHierarchy::QueryResult ContractionHierarchy::query(NodeId source, NodeId target,
                                                              ChSearchSpace& ws,
                                                              RequestTrace* trace) const {
  return run_query(source, target, /*need_path=*/true, ws, trace);
}

double ContractionHierarchy::distance(NodeId source, NodeId target) const {
  return run_query(source, target, /*need_path=*/false, thread_ch_search_space(), nullptr)
      .distance;
}

double ContractionHierarchy::distance(NodeId source, NodeId target, ChSearchSpace& ws,
                                      RequestTrace* trace) const {
  return run_query(source, target, /*need_path=*/false, ws, trace).distance;
}

ContractionHierarchy::QueryResult ContractionHierarchy::run_query(NodeId source, NodeId target,
                                                                  bool need_path,
                                                                  ChSearchSpace& ws,
                                                                  RequestTrace* trace) const {
  require(source.value() < num_nodes() && target.value() < num_nodes(),
          "CH query: endpoint out of range");
  obs::ScopedPhase obs_phase("ch");
  QueryResult result;
  result.distance = kInf;

  const std::size_t n = num_nodes();
  const ChCounters& counters = ChCounters::get();
  if (ws.begin(n)) obs::add(counters.workspace_reuses);
  ws.set(source.value(), true, 0.0, -1);
  ws.set(target.value(), false, 0.0, -1);
  ws.heap_push(0.0, source.value(), true);
  ws.heap_push(0.0, target.value(), false);

  double best = kInf;
  std::int64_t meet = -1;

  while (!ws.heap_empty()) {
    const ChSearchSpace::Entry top = ws.heap_pop();
    if (top.key > ws.dist(top.node, top.forward)) continue;  // stale
    if (top.key > best) continue;  // cannot contribute a better meet
    ++result.nodes_settled;

    const double theirs = ws.dist(top.node, !top.forward);
    if (theirs < kInf && top.key + theirs < best) {
      best = top.key + theirs;
      meet = top.node;
    }

    const auto& offsets = top.forward ? up_offsets_ : down_offsets_;
    const auto& arcs = top.forward ? up_arcs_ : down_arcs_;
    for (std::uint32_t i = offsets[top.node]; i < offsets[top.node + 1]; ++i) {
      const SearchArc& arc = arcs[i];
      const double candidate = top.key + arc.weight;
      if (candidate < ws.dist(arc.other, top.forward)) {
        ws.set(arc.other, top.forward, candidate, static_cast<std::int64_t>(i));
        ws.heap_push(candidate, arc.other, top.forward);
      }
    }
  }

  obs::add(counters.queries);
  obs::add(counters.settled, result.nodes_settled);
  if (trace != nullptr) {
    ++trace->ch_queries;
    trace->ch_nodes_settled += result.nodes_settled;
  }

  if (meet < 0) return result;
  result.distance = best;
  if (!need_path) return result;

  Path path;
  path.length = best;
  // Forward half: walk meet -> source via up-arc parents (real direction
  // base -> other), reverse the arc order, then unpack left-to-right.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t cursor = static_cast<std::uint32_t>(meet);
       ws.parent(cursor, true) >= 0;) {
    const auto i = static_cast<std::uint32_t>(ws.parent(cursor, true));
    chain.push_back(up_arcs_[i].pool_id);
    cursor = up_arcs_[i].base;
  }
  std::reverse(chain.begin(), chain.end());
  for (std::uint32_t pool_id : chain) unpack(pool_id, path.edges);
  // Backward half: walk meet -> target via down-arc parents; each arc's
  // real direction is other -> base, i.e. exactly the travel direction.
  for (std::uint32_t cursor = static_cast<std::uint32_t>(meet);
       ws.parent(cursor, false) >= 0;) {
    const auto i = static_cast<std::uint32_t>(ws.parent(cursor, false));
    unpack(down_arcs_[i].pool_id, path.edges);
    cursor = down_arcs_[i].base;
  }
  result.path = std::move(path);
  return result;
}

void ContractionHierarchy::bounds_to_target(NodeId target, ChSearchSpace& ws, SearchSpace& out,
                                            RequestTrace* trace) const {
  require(target.value() < num_nodes(), "CH bounds_to_target: target out of range");
  obs::ScopedPhase obs_phase("ch");
  const std::size_t n = num_nodes();
  const ChCounters& counters = ChCounters::get();
  if (ws.begin(n)) obs::add(counters.workspace_reuses);
  ws.sweep_.assign(n, kInf);

  // Phase 1: backward upward search from the target — identical to the
  // query's backward half.  Settled labels are exact distances to target
  // along rank-descending (travel direction) arc chains.
  ws.set(target.value(), false, 0.0, -1);
  ws.heap_push(0.0, target.value(), false);
  std::uint64_t settled = 0;
  while (!ws.heap_empty()) {
    const ChSearchSpace::Entry top = ws.heap_pop();
    if (top.key > ws.dist(top.node, false)) continue;  // stale
    ++settled;
    ws.sweep_[top.node] = top.key;
    for (std::uint32_t i = down_offsets_[top.node]; i < down_offsets_[top.node + 1]; ++i) {
      const SearchArc& arc = down_arcs_[i];
      const double candidate = top.key + arc.weight;
      if (candidate < ws.dist(arc.other, false)) {
        ws.set(arc.other, false, candidate, static_cast<std::int64_t>(i));
        ws.heap_push(candidate, arc.other, false);
      }
    }
  }

  // Phase 2: one linear pass, no heap.  Every shortest path to the target
  // climbs ranks and then descends; the climb is one up-arc whose head's
  // label is already final (descending head-rank order), so a single scan
  // finishes every node.
  std::uint64_t relaxed = 0;
  for (const SweepArc& arc : sweep_arcs_) {
    const double through = ws.sweep_[arc.head] + arc.weight;
    if (through < ws.sweep_[arc.tail]) {
      ws.sweep_[arc.tail] = through;
      ++relaxed;
    }
  }

  // Publish as a bounds-only SearchSpace (no parents): exactly what
  // DijkstraOptions::goal_bounds and Yen's reverse-tree fast paths read.
  out.begin(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (ws.sweep_[v] < kInf) out.set_label(NodeId(v), ws.sweep_[v], EdgeId::invalid());
  }

  obs::add(counters.phast_runs);
  obs::add(counters.settled, settled);
  obs::add(counters.sweep_relaxations, relaxed);
  if (trace != nullptr) trace->ch_nodes_settled += settled;
}

}  // namespace mts
