#include "graph/contraction_hierarchy.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/error.hpp"

namespace mts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Arc in the preprocessing pool.  `via < 0` means an original edge.
struct PoolArc {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double weight = 0.0;
  std::int32_t via = -1;
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::uint32_t original_edge = 0;
};

/// Preprocessing state: dynamic adjacency over pool arcs between
/// not-yet-contracted nodes.
struct Builder {
  std::vector<PoolArc> pool;
  std::vector<std::vector<std::uint32_t>> out_arcs;  // pool ids by tail
  std::vector<std::vector<std::uint32_t>> in_arcs;   // pool ids by head
  std::vector<std::uint8_t> contracted;
  std::vector<std::uint32_t> depth;  // hierarchy-depth heuristic
  ChOptions options;

  Builder(const DiGraph& g, std::span<const double> weights, const ChOptions& opt)
      : out_arcs(g.num_nodes()),
        in_arcs(g.num_nodes()),
        contracted(g.num_nodes(), 0),
        depth(g.num_nodes(), 0),
        options(opt) {
    for (EdgeId e : g.edges()) {
      const auto u = g.edge_from(e).value();
      const auto v = g.edge_to(e).value();
      require(weights[e.value()] >= 0.0, "CH: negative edge weight");
      if (u == v) continue;  // self loops never lie on shortest paths
      add_arc({u, v, weights[e.value()], -1, 0, 0, e.value()});
    }
  }

  /// Adds an arc, keeping only the lightest per (from, to) pair.
  void add_arc(const PoolArc& arc) {
    for (std::uint32_t id : out_arcs[arc.from]) {
      if (pool[id].to == arc.to) {
        if (arc.weight < pool[id].weight) pool[id] = arc;
        return;
      }
    }
    const auto id = static_cast<std::uint32_t>(pool.size());
    pool.push_back(arc);
    out_arcs[arc.from].push_back(id);
    in_arcs[arc.to].push_back(id);
  }

  /// Bounded local search: does a u->w path avoiding `banned` with length
  /// <= `limit` exist among uncontracted nodes?
  bool witness_exists(std::uint32_t source, std::uint32_t target, std::uint32_t banned,
                      double limit) {
    struct Entry {
      double dist;
      std::uint32_t node;
      std::uint32_t hops;
      bool operator<(const Entry& other) const { return dist > other.dist; }
    };
    // Searches touch a handful of nodes; a linear-scan map beats O(n)
    // clears and hash overhead.
    std::vector<std::pair<std::uint32_t, double>> best;
    auto get = [&](std::uint32_t n) {
      for (const auto& [node, dist] : best) {
        if (node == n) return dist;
      }
      return kInf;
    };
    auto set = [&](std::uint32_t n, double d) {
      for (auto& [node, dist] : best) {
        if (node == n) {
          dist = d;
          return;
        }
      }
      best.emplace_back(n, d);
    };

    std::priority_queue<Entry> queue;
    queue.push({0.0, source, 0});
    set(source, 0.0);
    std::size_t settled = 0;
    while (!queue.empty()) {
      const auto [dist, node, hops] = queue.top();
      queue.pop();
      if (dist > get(node)) continue;  // stale
      if (node == target) return dist <= limit;
      if (++settled > options.witness_settle_limit) break;
      if (hops >= options.witness_hop_limit) continue;
      for (std::uint32_t id : out_arcs[node]) {
        const PoolArc& arc = pool[id];
        if (contracted[arc.to] || arc.to == banned) continue;
        const double candidate = dist + arc.weight;
        if (candidate <= limit && candidate < get(arc.to)) {
          set(arc.to, candidate);
          queue.push({candidate, arc.to, hops + 1});
        }
      }
    }
    return get(target) <= limit;
  }

  /// Shortcuts required to contract `v`; inserts them when `apply`.
  int simulate_or_contract(std::uint32_t v, bool apply) {
    int shortcuts = 0;
    // Snapshot: add_arc may grow in_arcs/out_arcs of other nodes, but not
    // of v, so iterating v's lists by index is safe; still copy ids for
    // clarity.
    const std::vector<std::uint32_t> ins = in_arcs[v];
    const std::vector<std::uint32_t> outs = out_arcs[v];
    for (std::uint32_t in_id : ins) {
      const PoolArc in_arc = pool[in_id];
      if (contracted[in_arc.from]) continue;
      for (std::uint32_t out_id : outs) {
        const PoolArc out_arc = pool[out_id];
        if (contracted[out_arc.to] || out_arc.to == in_arc.from) continue;
        const double through = in_arc.weight + out_arc.weight;
        if (witness_exists(in_arc.from, out_arc.to, v, through)) continue;
        ++shortcuts;
        if (apply) {
          add_arc({in_arc.from, out_arc.to, through, static_cast<std::int32_t>(v), in_id,
                   out_id, 0});
        }
      }
    }
    return shortcuts;
  }

  /// Edge-difference priority (lower contracts earlier).
  double priority(std::uint32_t v) {
    int alive = 0;
    for (std::uint32_t id : in_arcs[v]) alive += contracted[pool[id].from] ? 0 : 1;
    for (std::uint32_t id : out_arcs[v]) alive += contracted[pool[id].to] ? 0 : 1;
    const int shortcuts = simulate_or_contract(v, /*apply=*/false);
    return static_cast<double>(shortcuts) - static_cast<double>(alive) +
           0.5 * static_cast<double>(depth[v]);
  }
};

}  // namespace

ContractionHierarchy ContractionHierarchy::build(const DiGraph& g,
                                                 std::span<const double> weights,
                                                 const ChOptions& options) {
  require(g.finalized(), "CH: graph not finalized");
  require(weights.size() == g.num_edges(), "CH: weights size mismatch");

  const std::size_t n = g.num_nodes();
  Builder builder(g, weights, options);

  ContractionHierarchy ch;
  ch.rank_.assign(n, 0);

  struct QueueEntry {
    double priority;
    std::uint32_t node;
    bool operator<(const QueueEntry& other) const { return priority > other.priority; }
  };
  std::priority_queue<QueueEntry> queue;
  for (std::uint32_t v = 0; v < n; ++v) queue.push({builder.priority(v), v});

  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [stale_priority, v] = queue.top();
    queue.pop();
    if (builder.contracted[v]) continue;
    // Lazy update: re-evaluate; requeue unless still the minimum.
    const double fresh = builder.priority(v);
    if (!queue.empty() && fresh > stale_priority + 1e-9 && fresh > queue.top().priority) {
      queue.push({fresh, v});
      continue;
    }

    builder.simulate_or_contract(v, /*apply=*/true);
    builder.contracted[v] = 1;
    ch.rank_[v] = next_rank++;
    for (std::uint32_t id : builder.in_arcs[v]) {
      const auto u = builder.pool[id].from;
      if (!builder.contracted[u]) {
        builder.depth[u] = std::max(builder.depth[u], builder.depth[v] + 1);
      }
    }
    for (std::uint32_t id : builder.out_arcs[v]) {
      const auto w = builder.pool[id].to;
      if (!builder.contracted[w]) {
        builder.depth[w] = std::max(builder.depth[w], builder.depth[v] + 1);
      }
    }
  }

  // Expansion records, in pool order.
  ch.pool_.reserve(builder.pool.size());
  for (const PoolArc& arc : builder.pool) {
    ch.pool_.push_back({arc.via, arc.left, arc.right, arc.original_edge});
    if (arc.via >= 0) ++ch.num_shortcuts_;
  }

  // Partition arcs into the two search graphs.
  std::vector<std::vector<SearchArc>> up_by_node(n);
  std::vector<std::vector<SearchArc>> down_by_node(n);
  for (std::uint32_t id = 0; id < builder.pool.size(); ++id) {
    const PoolArc& arc = builder.pool[id];
    if (ch.rank_[arc.from] < ch.rank_[arc.to]) {
      up_by_node[arc.from].push_back({arc.from, arc.to, arc.weight, id});
    } else {
      down_by_node[arc.to].push_back({arc.to, arc.from, arc.weight, id});
    }
  }
  auto freeze = [n](const std::vector<std::vector<SearchArc>>& by_node,
                    std::vector<SearchArc>& arcs, std::vector<std::uint32_t>& offsets) {
    offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      offsets[i + 1] = offsets[i] + static_cast<std::uint32_t>(by_node[i].size());
    }
    arcs.clear();
    arcs.reserve(offsets[n]);
    for (const auto& list : by_node) arcs.insert(arcs.end(), list.begin(), list.end());
  };
  freeze(up_by_node, ch.up_arcs_, ch.up_offsets_);
  freeze(down_by_node, ch.down_arcs_, ch.down_offsets_);
  return ch;
}

void ContractionHierarchy::unpack(std::uint32_t pool_id, std::vector<EdgeId>& out) const {
  const PoolRecord& record = pool_[pool_id];
  if (record.via < 0) {
    out.push_back(EdgeId(record.original_edge));
    return;
  }
  unpack(record.left, out);
  unpack(record.right, out);
}

ContractionHierarchy::QueryResult ContractionHierarchy::query(NodeId source,
                                                              NodeId target) const {
  return run_query(source, target, /*need_path=*/true);
}

double ContractionHierarchy::distance(NodeId source, NodeId target) const {
  return run_query(source, target, /*need_path=*/false).distance;
}

ContractionHierarchy::QueryResult ContractionHierarchy::run_query(NodeId source, NodeId target,
                                                                  bool need_path) const {
  require(source.value() < num_nodes() && target.value() < num_nodes(),
          "CH query: endpoint out of range");
  QueryResult result;
  result.distance = kInf;

  const std::size_t n = num_nodes();
  std::vector<double> dist_f(n, kInf);
  std::vector<double> dist_b(n, kInf);
  std::vector<std::int64_t> parent_f(n, -1);  // indices into up_arcs_
  std::vector<std::int64_t> parent_b(n, -1);  // indices into down_arcs_

  struct Entry {
    double dist;
    std::uint32_t node;
    bool forward;
    bool operator<(const Entry& other) const { return dist > other.dist; }
  };
  std::priority_queue<Entry> queue;
  dist_f[source.value()] = 0.0;
  dist_b[target.value()] = 0.0;
  queue.push({0.0, source.value(), true});
  queue.push({0.0, target.value(), false});

  double best = kInf;
  std::int64_t meet = -1;

  while (!queue.empty()) {
    const auto [dist, node, forward] = queue.top();
    queue.pop();
    auto& mine = forward ? dist_f : dist_b;
    if (dist > mine[node]) continue;  // stale
    if (dist > best) continue;        // cannot contribute a better meet
    ++result.nodes_settled;

    const auto& theirs = forward ? dist_b : dist_f;
    if (theirs[node] < kInf && dist + theirs[node] < best) {
      best = dist + theirs[node];
      meet = node;
    }

    const auto& offsets = forward ? up_offsets_ : down_offsets_;
    const auto& arcs = forward ? up_arcs_ : down_arcs_;
    auto& parents = forward ? parent_f : parent_b;
    for (std::uint32_t i = offsets[node]; i < offsets[node + 1]; ++i) {
      const SearchArc& arc = arcs[i];
      const double candidate = dist + arc.weight;
      if (candidate < mine[arc.other]) {
        mine[arc.other] = candidate;
        parents[arc.other] = i;
        queue.push({candidate, arc.other, forward});
      }
    }
  }

  if (meet < 0) return result;
  result.distance = best;
  if (!need_path) return result;

  Path path;
  path.length = best;
  // Forward half: walk meet -> source via up-arc parents (real direction
  // base -> other), reverse the arc order, then unpack left-to-right.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t cursor = static_cast<std::uint32_t>(meet); parent_f[cursor] >= 0;) {
    const auto i = static_cast<std::uint32_t>(parent_f[cursor]);
    chain.push_back(up_arcs_[i].pool_id);
    cursor = up_arcs_[i].base;
  }
  std::reverse(chain.begin(), chain.end());
  for (std::uint32_t pool_id : chain) unpack(pool_id, path.edges);
  // Backward half: walk meet -> target via down-arc parents; each arc's
  // real direction is other -> base, i.e. exactly the travel direction.
  for (std::uint32_t cursor = static_cast<std::uint32_t>(meet); parent_b[cursor] >= 0;) {
    const auto i = static_cast<std::uint32_t>(parent_b[cursor]);
    unpack(down_arcs_[i].pool_id, path.edges);
    cursor = down_arcs_[i].base;
  }
  result.path = std::move(path);
  return result;
}

}  // namespace mts
