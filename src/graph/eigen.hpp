// Eigenvector centrality by power iteration.
//
// GreedyEig scores a candidate road segment by its eigenvector-centrality
// contribution divided by its removal cost (paper §III-A, algorithm 4).
// For a directed edge u -> v the natural edge score is x_u * x_v where x is
// the dominant eigenvector of the (filtered) adjacency matrix: removing the
// edge reduces the dominant eigenvalue by approximately x_u * x_v under the
// standard first-order perturbation argument.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"

namespace mts {

struct EigenOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-10;
  /// Uniform additive teleport ensuring convergence on reducible graphs.
  double damping = 1e-3;
  const EdgeFilter* filter = nullptr;
};

struct EigenResult {
  std::vector<double> centrality;  // per node, L2-normalized, non-negative
  double eigenvalue = 0.0;         // Rayleigh estimate of the dominant eigenvalue
  std::size_t iterations = 0;
  bool converged = false;
};

/// Dominant-eigenvector node centrality of the adjacency matrix (a node is
/// central if many central nodes point to it).
EigenResult eigenvector_centrality(const DiGraph& g, const EigenOptions& options = {});

/// Per-edge eigen-scores x_from * x_to derived from node centrality.
std::vector<double> edge_eigen_scores(const DiGraph& g, const EigenResult& result);

}  // namespace mts
