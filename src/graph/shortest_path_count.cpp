#include "graph/shortest_path_count.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mts {

std::uint64_t count_shortest_paths(const DiGraph& g, std::span<const double> weights,
                                   NodeId source, NodeId target, const EdgeFilter* filter,
                                   std::uint64_t cap, double rel_eps) {
  DijkstraOptions options;
  options.filter = filter;
  const auto tree = dijkstra(g, weights, source, options);
  if (!tree.reached(target)) return 0;

  // Process nodes in distance order; sigma[v] = sum of sigma over tight
  // in-edges (u, v) with dist[u] + w == dist[v] within tolerance.
  std::vector<std::uint32_t> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tree.dist[a] < tree.dist[b];
  });

  std::vector<std::uint64_t> sigma(g.num_nodes(), 0);
  sigma[source.value()] = 1;
  for (std::uint32_t idx : order) {
    const NodeId v{idx};
    if (!tree.reached(v) || v == source) continue;
    std::uint64_t total = 0;
    for (EdgeId e : g.in_edges(v)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId u = g.edge_from(e);
      if (!tree.reached(u)) continue;
      const double through = tree.dist[u.value()] + weights[e.value()];
      const double eps = rel_eps * (1.0 + std::abs(tree.dist[v.value()]));
      if (std::abs(through - tree.dist[v.value()]) <= eps) {
        total = std::min(cap, total + sigma[u.value()]);
      }
    }
    sigma[v.value()] = total;
  }
  return sigma[target.value()];
}

}  // namespace mts
