#include "graph/yen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/check.hpp"
#include "core/error.hpp"
#include "core/fault.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

struct Candidate {
  Path path;
};

/// Heap order: true when `a` should be popped after `b`.  Primary key is
/// path length (shortest first); ties break on the lexicographic edge
/// sequence.  Without the tie-break, which of several tied-length
/// candidates becomes the k-th path — and therefore the paper's p* = 100th
/// path — would depend on heap internals (and thus on the standard-library
/// implementation and on candidate insertion order).
bool candidate_after(const Candidate& a, const Candidate& b) {
  if (a.path.length != b.path.length) return a.path.length > b.path.length;
  return std::lexicographical_compare(b.path.edges.begin(), b.path.edges.end(),
                                      a.path.edges.begin(), a.path.edges.end());
}

/// Min-heap of candidates on a plain vector.  std::pop_heap moves the top
/// element to the back, so popping hands out the Path by value without the
/// const_cast-from-top() hack std::priority_queue would force.
class CandidateHeap {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Length of the current shortest candidate.
  [[nodiscard]] double min_length() const {
    MTS_DCHECK(!heap_.empty());
    return heap_.front().path.length;
  }

  /// Length of the n-th smallest candidate currently held (n >= 1).  The
  /// next n accepted paths each pop the then-minimum while at least
  /// n - (pops so far) of the current n smallest are still in the heap, so
  /// every one of those pops is <= this value — an exact admission bound.
  [[nodiscard]] double nth_smallest_length(std::size_t n) {
    MTS_DCHECK_GE(n, std::size_t{1});
    MTS_DCHECK_LE(n, heap_.size());
    if (n == 1) return min_length();
    length_scratch_.clear();
    for (const Candidate& c : heap_) length_scratch_.push_back(c.path.length);
    auto nth = length_scratch_.begin() + static_cast<std::ptrdiff_t>(n - 1);
    std::nth_element(length_scratch_.begin(), nth, length_scratch_.end());
    return *nth;
  }

  void push(Candidate candidate) {
    heap_.push_back(std::move(candidate));
    std::push_heap(heap_.begin(), heap_.end(), candidate_after);
    ++pushed_;
  }

  /// Removes and returns the shortest (tie-broken) candidate's path.
  Path pop() {
    MTS_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), candidate_after);
    Path path = std::move(heap_.back().path);
    heap_.pop_back();
    ++popped_;
    return path;
  }

  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t popped() const { return popped_; }

 private:
  std::vector<Candidate> heap_;
  std::vector<double> length_scratch_;  // nth_smallest_length working set
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

/// Pads an admission bound by the same 1e-9 relative float margin the
/// oracle's tie_epsilon uses, so summation-order slack can never prune a
/// candidate an exact-arithmetic run would keep.
double padded(double bound) {
  if (bound == kInfiniteDistance) return bound;
  return bound + 1e-9 * (1.0 + std::abs(bound));
}

/// Shared state for Yen spur expansions: a scratch edge filter seeded from
/// the caller's base filter plus a scratch node-ban mask, both restored
/// after each spur search so allocations happen once per query.  Spur
/// searches run goal-directed against `reverse_tree` — the exact reverse
/// shortest-path distances to `target` under the base filter, which lower-
/// bound every spur search's remaining distance (spur filters only remove
/// more edges).  See DESIGN.md §9 for the pruning-exactness argument.
class SpurSearcher {
 public:
  SpurSearcher(const DiGraph& g, std::span<const double> weights, NodeId target,
               const EdgeFilter* base_filter, const SearchSpace& reverse_tree,
               SearchSpace& workspace, WorkBudget* budget = nullptr,
               RequestTrace* trace = nullptr)
      : g_(g),
        weights_(weights),
        target_(target),
        reverse_tree_(reverse_tree),
        workspace_(workspace),
        scratch_filter_(base_filter != nullptr ? *base_filter : EdgeFilter(g.num_edges())),
        banned_nodes_(g.num_nodes(), 0),
        budget_(budget),
        trace_(trace) {}

  /// Expands every deviation of `base` (rooted at prefix positions
  /// [0, base.edges.size())) and pushes new simple-path candidates.
  /// `accepted` is the list of already-output paths (for edge bans);
  /// `needed` is how many more paths the caller still wants — it feeds the
  /// candidate-admission bound that lets hopeless spur searches be skipped
  /// (they still count as searches for the caller's safety cap).
  void expand(const Path& base, const std::vector<Path>& accepted, CandidateHeap& candidates,
              std::unordered_set<std::uint64_t>& seen, std::size_t needed) {
    const std::vector<NodeId> base_nodes = path_nodes(g_, base);
    double root_length = 0.0;

    for (std::size_t i = 0; i < base.edges.size(); ++i) {
      const NodeId spur_node = base_nodes[i];
      // Nan/Limit have no safe emulation here (a silently truncated spur
      // sweep could certify a wrong exclusivity answer), so every armed
      // action escalates to a FaultInjected throw.
      MTS_FAULT_POINT("yen.spur");
      if (budget_ != nullptr) budget_->charge_spur_searches(1);

      // Admission bound: once the heap already holds `needed` candidates,
      // every future accepted path is at most the bound below, so any spur
      // whose best possible total exceeds it cannot change the output.
      double admit = kInfiniteDistance;
      if (needed > 0 && candidates.size() >= needed) {
        admit = candidates.nth_smallest_length(needed);
      }
      // Fast path: skip the search entirely when even the ban-free reverse
      // distance busts the bound.  For a base that was itself accepted this
      // can only fire on margin edge cases (root + bound <= len(base) <=
      // admit by Yen's nondecreasing-acceptance invariant); the common kill
      // happens inside the bounded search below.
      const double spur_lower = reverse_tree_.dist(spur_node);
      if (spur_lower == kInfiniteDistance || root_length + spur_lower > padded(admit)) {
        ++searches_;
        ++pruned_;
        root_length += weights_[base.edges[i].value()];
        continue;
      }

      // Ban the next edge of every accepted path sharing this root prefix.
      std::vector<EdgeId> banned_edges;
      for (const Path& p : accepted) {
        if (p.edges.size() > i &&
            std::equal(base.edges.begin(), base.edges.begin() + static_cast<std::ptrdiff_t>(i),
                       p.edges.begin())) {
          if (!scratch_filter_.is_removed(p.edges[i])) {
            scratch_filter_.remove(p.edges[i]);
            banned_edges.push_back(p.edges[i]);
          }
        }
      }
      // Ban root nodes (all prefix nodes strictly before the spur node) so
      // spur paths cannot revisit them: keeps results simple (loopless).
      for (std::size_t j = 0; j < i; ++j) banned_nodes_[base_nodes[j].value()] = 1;

      DijkstraOptions spur_options;
      spur_options.target = target_;
      spur_options.filter = &scratch_filter_;
      spur_options.banned_nodes = &banned_nodes_;
      spur_options.goal_bounds = &reverse_tree_;
      spur_options.prune_bound =
          admit == kInfiniteDistance ? kInfiniteDistance : admit - root_length;
      spur_options.assume_valid_weights = true;
      spur_options.budget = budget_;
      spur_options.trace = trace_;
      dijkstra(workspace_, g_, weights_, spur_node, spur_options);
      ++searches_;
      static const obs::HistogramId kSpurEdges =
          obs::MetricsRegistry::instance().histogram("yen.spur_edges_scanned");
      obs::observe(kSpurEdges, static_cast<double>(workspace_.last.edges_scanned));

      auto spur = extract_path(g_, workspace_, spur_node, target_);
      if (!spur && workspace_.last.bound_pruned > 0) {
        // The bounded frontier died without reaching the target, and the
        // admission bound (not graph disconnection alone) cut it short:
        // this spur was pruned rather than exhausted.
        ++pruned_;
      }
      if (spur) {
        Path total;
        total.edges.reserve(i + spur->edges.size());
        total.edges.insert(total.edges.end(), base.edges.begin(),
                           base.edges.begin() + static_cast<std::ptrdiff_t>(i));
        total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
        total.length = root_length + spur->length;
        if (seen.insert(path_signature(total)).second) {
          candidates.push({std::move(total)});
        }
      }

      // Restore scratch state.
      for (std::size_t j = 0; j < i; ++j) banned_nodes_[base_nodes[j].value()] = 0;
      for (EdgeId e : banned_edges) scratch_filter_.restore(e);

      root_length += weights_[base.edges[i].value()];
    }
  }

  /// Spur searches attempted so far (performed + pruned; feeds the cap).
  [[nodiscard]] std::size_t searches() const { return searches_; }
  /// How many of those the admission bound killed: skipped outright by the
  /// reverse-tree check, or run but cut off before reaching the target.
  [[nodiscard]] std::size_t pruned() const { return pruned_; }

 private:
  const DiGraph& g_;
  std::span<const double> weights_;
  NodeId target_;
  const SearchSpace& reverse_tree_;
  SearchSpace& workspace_;
  EdgeFilter scratch_filter_;
  std::vector<std::uint8_t> banned_nodes_;
  WorkBudget* budget_ = nullptr;
  RequestTrace* trace_ = nullptr;
  std::size_t searches_ = 0;
  std::size_t pruned_ = 0;
};

/// Flushes one Yen query's counters into the registry on scope exit (the
/// query has several return paths).
struct YenCounterFlush {
  const CandidateHeap& heap;
  const SpurSearcher& searcher;
  RequestTrace* trace = nullptr;

  ~YenCounterFlush() {
    if (trace != nullptr) {
      trace->spur_searches += searcher.searches();
      trace->spurs_pruned += searcher.pruned();
    }
    static const obs::CounterId kQueries = obs::MetricsRegistry::instance().counter("yen.queries");
    static const obs::CounterId kSpurs =
        obs::MetricsRegistry::instance().counter("yen.spur_searches");
    static const obs::CounterId kPruned =
        obs::MetricsRegistry::instance().counter("yen.spurs_pruned");
    static const obs::CounterId kPushed =
        obs::MetricsRegistry::instance().counter("yen.candidates_pushed");
    static const obs::CounterId kPopped =
        obs::MetricsRegistry::instance().counter("yen.candidates_popped");
    obs::add(kQueries);
    obs::add(kSpurs, searcher.searches());
    obs::add(kPruned, searcher.pruned());
    obs::add(kPushed, heap.pushed());
    obs::add(kPopped, heap.popped());
  }
};

/// Builds the query's reverse shortest-path tree (exact distances to
/// `target` under `filter`) in the thread's secondary workspace slot.
SearchSpace& build_reverse_tree(const DiGraph& g, std::span<const double> weights,
                                NodeId target, const EdgeFilter* filter,
                                WorkBudget* budget = nullptr, RequestTrace* trace = nullptr) {
  SearchSpace& reverse_tree = thread_search_space(1);
  DijkstraOptions reverse_options;
  reverse_options.filter = filter;
  reverse_options.assume_valid_weights = true;  // validated by the query entry
  reverse_options.budget = budget;
  reverse_options.trace = trace;
  reverse_dijkstra(reverse_tree, g, weights, target, reverse_options);
  return reverse_tree;
}

}  // namespace

std::vector<Path> yen_ksp(const DiGraph& g, std::span<const double> weights, NodeId source,
                          NodeId target, std::size_t k, const YenOptions& options) {
  require(g.finalized(), "yen_ksp: graph not finalized");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "yen_ksp: endpoint out of range");
  std::vector<Path> accepted;
  if (k == 0) return accepted;
  require(source != target, "yen_ksp: source == target (only the empty path exists)");
  validate_weights(g, weights, "yen_ksp");

  obs::ScopedPhase phase("yen");
  const SearchSpace* bounds = options.reverse_bounds;
  if (bounds != nullptr) {
    // Caller-supplied bounds (CH/PHAST): no reverse tree exists, so the
    // caller must hand over the first path as well.
    require(options.first_path != nullptr, "yen_ksp: reverse_bounds requires first_path");
    require(!options.first_path->empty() &&
                g.edge_from(options.first_path->edges.front()) == source &&
                g.edge_to(options.first_path->edges.back()) == target,
            "yen_ksp: first_path does not run source -> target");
    accepted.push_back(*options.first_path);
  } else {
    SearchSpace& reverse_tree =
        build_reverse_tree(g, weights, target, options.filter, options.budget, options.trace);
    // The first path falls out of the reverse tree: follow reverse parents
    // forward from the source (its length is recomputed as the forward-order
    // sum, bit-identical to a forward Dijkstra's accumulation).
    auto first = extract_reverse_path(g, reverse_tree, weights, source, target);
    if (!first) return accepted;
    accepted.push_back(std::move(*first));
    bounds = &reverse_tree;
  }

  SpurSearcher searcher(g, weights, target, options.filter, *bounds,
                        thread_search_space(0), options.budget, options.trace);
  CandidateHeap candidates;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(path_signature(accepted.front()));

  YenCounterFlush flush{candidates, searcher, options.trace};
  while (accepted.size() < k) {
    searcher.expand(accepted.back(), accepted, candidates, seen, k - accepted.size());
    if (candidates.empty()) break;
    accepted.push_back(candidates.pop());
#if defined(MTS_ENABLE_DCHECKS)
    accepted.back().check_invariants(g, weights);
#endif
    if (options.max_spur_searches != 0 && searcher.searches() >= options.max_spur_searches) break;
  }
  return accepted;
}

std::optional<Path> second_shortest_path(const DiGraph& g, std::span<const double> weights,
                                         NodeId source, NodeId target, const Path& avoid,
                                         const EdgeFilter* filter, WorkBudget* budget,
                                         RequestTrace* trace,
                                         const SearchSpace* reverse_bounds) {
  require(!avoid.empty(), "second_shortest_path: avoid path is empty");
  require(g.edge_from(avoid.edges.front()) == source,
          "second_shortest_path: avoid path does not start at source");
  validate_weights(g, weights, "second_shortest_path");
  obs::ScopedPhase phase("yen");
  const SearchSpace* bounds = reverse_bounds != nullptr
                                  ? reverse_bounds
                                  : &build_reverse_tree(g, weights, target, filter, budget, trace);
  SpurSearcher searcher(g, weights, target, filter, *bounds, thread_search_space(0), budget,
                        trace);
  CandidateHeap candidates;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(path_signature(avoid));
  const std::vector<Path> accepted = {avoid};
  YenCounterFlush flush{candidates, searcher, trace};
  searcher.expand(avoid, accepted, candidates, seen, /*needed=*/1);
  if (candidates.empty()) return std::nullopt;
  return candidates.pop();
}

}  // namespace mts
