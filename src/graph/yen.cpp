#include "graph/yen.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/check.hpp"
#include "core/error.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

struct Candidate {
  Path path;
};

/// Heap order: true when `a` should be popped after `b`.  Primary key is
/// path length (shortest first); ties break on the lexicographic edge
/// sequence.  Without the tie-break, which of several tied-length
/// candidates becomes the k-th path — and therefore the paper's p* = 100th
/// path — would depend on heap internals (and thus on the standard-library
/// implementation and on candidate insertion order).
bool candidate_after(const Candidate& a, const Candidate& b) {
  if (a.path.length != b.path.length) return a.path.length > b.path.length;
  return std::lexicographical_compare(b.path.edges.begin(), b.path.edges.end(),
                                      a.path.edges.begin(), a.path.edges.end());
}

/// Min-heap of candidates on a plain vector.  std::pop_heap moves the top
/// element to the back, so popping hands out the Path by value without the
/// const_cast-from-top() hack std::priority_queue would force.
class CandidateHeap {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  void push(Candidate candidate) {
    heap_.push_back(std::move(candidate));
    std::push_heap(heap_.begin(), heap_.end(), candidate_after);
    ++pushed_;
  }

  /// Removes and returns the shortest (tie-broken) candidate's path.
  Path pop() {
    MTS_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), candidate_after);
    Path path = std::move(heap_.back().path);
    heap_.pop_back();
    ++popped_;
    return path;
  }

  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t popped() const { return popped_; }

 private:
  std::vector<Candidate> heap_;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

/// Flushes one Yen query's counters into the registry on scope exit (the
/// query has several return paths).
struct YenCounterFlush {
  const CandidateHeap& heap;
  const std::size_t& spur_searches;

  ~YenCounterFlush() {
    static const obs::CounterId kQueries = obs::MetricsRegistry::instance().counter("yen.queries");
    static const obs::CounterId kSpurs =
        obs::MetricsRegistry::instance().counter("yen.spur_searches");
    static const obs::CounterId kPushed =
        obs::MetricsRegistry::instance().counter("yen.candidates_pushed");
    static const obs::CounterId kPopped =
        obs::MetricsRegistry::instance().counter("yen.candidates_popped");
    obs::add(kQueries);
    obs::add(kSpurs, spur_searches);
    obs::add(kPushed, heap.pushed());
    obs::add(kPopped, heap.popped());
  }
};

/// Shared state for Yen spur expansions: a scratch edge filter seeded from
/// the caller's base filter plus a scratch node-ban mask, both restored
/// after each spur search so allocations happen once per query.
class SpurSearcher {
 public:
  SpurSearcher(const DiGraph& g, std::span<const double> weights, NodeId target,
               const EdgeFilter* base_filter)
      : g_(g),
        weights_(weights),
        target_(target),
        scratch_filter_(base_filter != nullptr ? *base_filter : EdgeFilter(g.num_edges())),
        banned_nodes_(g.num_nodes(), 0) {}

  /// Expands every deviation of `base` (rooted at prefix positions
  /// [0, base.edges.size())) and pushes new simple-path candidates.
  /// `accepted` is the list of already-output paths (for edge bans).
  /// Returns the number of spur searches performed.
  std::size_t expand(const Path& base, const std::vector<Path>& accepted,
                     CandidateHeap& candidates, std::unordered_set<std::uint64_t>& seen) {
    const std::vector<NodeId> base_nodes = path_nodes(g_, base);
    std::size_t searches = 0;
    double root_length = 0.0;

    for (std::size_t i = 0; i < base.edges.size(); ++i) {
      const NodeId spur_node = base_nodes[i];

      // Ban the next edge of every accepted path sharing this root prefix.
      std::vector<EdgeId> banned_edges;
      for (const Path& p : accepted) {
        if (p.edges.size() > i &&
            std::equal(base.edges.begin(), base.edges.begin() + static_cast<std::ptrdiff_t>(i),
                       p.edges.begin())) {
          if (!scratch_filter_.is_removed(p.edges[i])) {
            scratch_filter_.remove(p.edges[i]);
            banned_edges.push_back(p.edges[i]);
          }
        }
      }
      // Ban root nodes (all prefix nodes strictly before the spur node) so
      // spur paths cannot revisit them: keeps results simple (loopless).
      for (std::size_t j = 0; j < i; ++j) banned_nodes_[base_nodes[j].value()] = 1;

      DijkstraOptions options;
      options.target = target_;
      options.filter = &scratch_filter_;
      options.banned_nodes = &banned_nodes_;
      const auto tree = dijkstra(g_, weights_, spur_node, options);
      ++searches;

      if (auto spur = extract_path(g_, tree, spur_node, target_)) {
        Path total;
        total.edges.reserve(i + spur->edges.size());
        total.edges.insert(total.edges.end(), base.edges.begin(),
                           base.edges.begin() + static_cast<std::ptrdiff_t>(i));
        total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
        total.length = root_length + spur->length;
        if (seen.insert(path_signature(total)).second) {
          candidates.push({std::move(total)});
        }
      }

      // Restore scratch state.
      for (std::size_t j = 0; j < i; ++j) banned_nodes_[base_nodes[j].value()] = 0;
      for (EdgeId e : banned_edges) scratch_filter_.restore(e);

      root_length += weights_[base.edges[i].value()];
    }
    return searches;
  }

 private:
  const DiGraph& g_;
  std::span<const double> weights_;
  NodeId target_;
  EdgeFilter scratch_filter_;
  std::vector<std::uint8_t> banned_nodes_;
};

}  // namespace

std::vector<Path> yen_ksp(const DiGraph& g, std::span<const double> weights, NodeId source,
                          NodeId target, std::size_t k, const YenOptions& options) {
  require(g.finalized(), "yen_ksp: graph not finalized");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "yen_ksp: endpoint out of range");
  std::vector<Path> accepted;
  if (k == 0) return accepted;
  require(source != target, "yen_ksp: source == target (only the empty path exists)");

  obs::ScopedPhase phase("yen");
  auto first = shortest_path(g, weights, source, target, options.filter);
  if (!first) return accepted;
  accepted.push_back(std::move(*first));

  SpurSearcher searcher(g, weights, target, options.filter);
  CandidateHeap candidates;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(path_signature(accepted.front()));

  std::size_t total_searches = 0;
  YenCounterFlush flush{candidates, total_searches};
  while (accepted.size() < k) {
    total_searches += searcher.expand(accepted.back(), accepted, candidates, seen);
    if (candidates.empty()) break;
    accepted.push_back(candidates.pop());
#if defined(MTS_ENABLE_DCHECKS)
    accepted.back().check_invariants(g, weights);
#endif
    if (options.max_spur_searches != 0 && total_searches >= options.max_spur_searches) break;
  }
  return accepted;
}

std::optional<Path> second_shortest_path(const DiGraph& g, std::span<const double> weights,
                                         NodeId source, NodeId target, const Path& avoid,
                                         const EdgeFilter* filter) {
  require(!avoid.empty(), "second_shortest_path: avoid path is empty");
  require(g.edge_from(avoid.edges.front()) == source,
          "second_shortest_path: avoid path does not start at source");
  obs::ScopedPhase phase("yen");
  SpurSearcher searcher(g, weights, target, filter);
  CandidateHeap candidates;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(path_signature(avoid));
  const std::vector<Path> accepted = {avoid};
  std::size_t searches = 0;
  YenCounterFlush flush{candidates, searches};
  searches = searcher.expand(avoid, accepted, candidates, seen);
  if (candidates.empty()) return std::nullopt;
  return candidates.pop();
}

}  // namespace mts
