#include "graph/path.hpp"

#include <cmath>
#include <string>
#include <unordered_set>

#include "core/check.hpp"

namespace mts {

void Path::check_invariants(const DiGraph& g, std::span<const double> weights) const {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    enforce_invariant(edges[i].valid() && edges[i].value() < g.num_edges(),
                      "path edge " + std::to_string(i) + " out of range");
    if (i + 1 < edges.size()) {
      enforce_invariant(g.edge_to(edges[i]) == g.edge_from(edges[i + 1]),
                        "path discontiguous between edges " + std::to_string(i) + " and " +
                            std::to_string(i + 1));
    }
  }
  enforce_invariant(std::isfinite(length), "path length is not finite");
  if (!weights.empty()) {
    enforce_invariant(weights.size() == g.num_edges(),
                      "weight vector size != num_edges");
    const double recomputed = path_length(edges, weights);
    enforce_invariant(std::abs(recomputed - length) <= 1e-6 * (1.0 + std::abs(length)),
                      "path length " + std::to_string(length) +
                          " disagrees with recomputed " + std::to_string(recomputed));
  }
}

double path_length(std::span<const EdgeId> edges, std::span<const double> weights) {
  double total = 0.0;
  for (EdgeId e : edges) total += weights[e.value()];
  return total;
}

std::vector<NodeId> path_nodes(const DiGraph& g, const Path& path) {
  std::vector<NodeId> nodes;
  if (path.empty()) return nodes;
  nodes.reserve(path.edges.size() + 1);
  nodes.push_back(g.edge_from(path.edges.front()));
  for (EdgeId e : path.edges) nodes.push_back(g.edge_to(e));
  return nodes;
}

bool is_simple_path(const DiGraph& g, const Path& path, NodeId source, NodeId target) {
  if (path.empty()) return source == target;
  if (g.edge_from(path.edges.front()) != source) return false;
  if (g.edge_to(path.edges.back()) != target) return false;
  std::unordered_set<NodeId> seen;
  seen.insert(source);
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    if (i + 1 < path.edges.size() &&
        g.edge_to(path.edges[i]) != g.edge_from(path.edges[i + 1])) {
      return false;
    }
    if (!seen.insert(g.edge_to(path.edges[i])).second) return false;
  }
  return true;
}

Path reweight_path(Path path, std::span<const double> weights) {
  path.length = path_length(path.edges, weights);
  return path;
}

std::uint64_t path_signature(const Path& path) {
  // FNV-1a over the edge id stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (EdgeId e : path.edges) {
    std::uint64_t v = e.value();
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace mts
