#include "graph/digraph.hpp"

#include <cmath>
#include <string>

#include "core/check.hpp"
#include "core/error.hpp"

namespace mts {

NodeId DiGraph::add_node(double x, double y) {
  finalized_ = false;
  xs_.push_back(x);
  ys_.push_back(y);
  return NodeId(static_cast<std::uint32_t>(xs_.size() - 1));
}

EdgeId DiGraph::add_edge(NodeId u, NodeId v) {
  require(u.value() < num_nodes() && v.value() < num_nodes(),
          "add_edge: endpoint out of range");
  finalized_ = false;
  tails_.push_back(u);
  heads_.push_back(v);
  return EdgeId(static_cast<std::uint32_t>(tails_.size() - 1));
}

void DiGraph::set_position(NodeId n, double x, double y) {
  xs_[n.value()] = x;
  ys_[n.value()] = y;
}

void DiGraph::finalize() {
  const std::size_t n = num_nodes();
  const std::size_t m = num_edges();

  auto build = [&](const std::vector<NodeId>& keys, std::vector<std::uint32_t>& offsets,
                   std::vector<EdgeId>& ids) {
    offsets.assign(n + 1, 0);
    for (NodeId k : keys) ++offsets[k.value() + 1];
    for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
    ids.resize(m);
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t e = 0; e < m; ++e) {
      ids[cursor[keys[e].value()]++] = EdgeId(static_cast<std::uint32_t>(e));
    }
  };

  build(tails_, out_offsets_, out_edge_ids_);
  build(heads_, in_offsets_, in_edge_ids_);
  finalized_ = true;
  MTS_DCHECK_INVARIANTS(*this);
}

void DiGraph::check_invariants() const {
  const std::size_t n = num_nodes();
  const std::size_t m = num_edges();

  enforce_invariant(xs_.size() == ys_.size(), "coordinate arrays disagree in size");
  enforce_invariant(tails_.size() == heads_.size(), "endpoint arrays disagree in size");
  for (std::size_t i = 0; i < n; ++i) {
    enforce_invariant(std::isfinite(xs_[i]) && std::isfinite(ys_[i]),
                      "node " + std::to_string(i) + " has non-finite coordinates");
  }
  for (std::size_t e = 0; e < m; ++e) {
    enforce_invariant(tails_[e].value() < n && heads_[e].value() < n,
                      "edge " + std::to_string(e) + " endpoint out of range");
  }
  if (!finalized_) return;

  // One CSR side: offsets monotone and exhaustive, bucket members keyed by
  // the right node, every edge present exactly once.
  auto check_side = [&](const char* side, const std::vector<std::uint32_t>& offsets,
                        const std::vector<EdgeId>& ids, const std::vector<NodeId>& keys) {
    const std::string tag(side);
    enforce_invariant(offsets.size() == n + 1, tag + " offsets size != num_nodes + 1");
    enforce_invariant(offsets.empty() || offsets.front() == 0, tag + " offsets do not start at 0");
    for (std::size_t i = 0; i < n; ++i) {
      enforce_invariant(offsets[i] <= offsets[i + 1], tag + " offsets not monotone at node " +
                                                          std::to_string(i));
    }
    enforce_invariant(offsets.empty() || offsets.back() == m,
                      tag + " offsets do not cover all edges");
    enforce_invariant(ids.size() == m, tag + " edge-id array size != num_edges");
    std::vector<std::uint8_t> seen(m, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        const EdgeId e = ids[k];
        enforce_invariant(e.value() < m, tag + " bucket holds out-of-range edge id");
        enforce_invariant(keys[e.value()].value() == i,
                          tag + " bucket of node " + std::to_string(i) +
                              " holds edge keyed elsewhere");
        enforce_invariant(!seen[e.value()],
                          tag + " lists edge " + std::to_string(e.value()) + " twice");
        seen[e.value()] = 1;
      }
    }
  };
  check_side("out-CSR", out_offsets_, out_edge_ids_, tails_);
  check_side("in-CSR", in_offsets_, in_edge_ids_, heads_);
}

std::span<const EdgeId> DiGraph::out_edges(NodeId n) const {
  require(finalized_, "out_edges: graph not finalized");
  const auto lo = out_offsets_[n.value()];
  const auto hi = out_offsets_[n.value() + 1];
  return {out_edge_ids_.data() + lo, hi - lo};
}

std::span<const EdgeId> DiGraph::in_edges(NodeId n) const {
  require(finalized_, "in_edges: graph not finalized");
  const auto lo = in_offsets_[n.value()];
  const auto hi = in_offsets_[n.value() + 1];
  return {in_edge_ids_.data() + lo, hi - lo};
}

double DiGraph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

EdgeId DiGraph::find_edge(NodeId u, NodeId v) const {
  if (finalized_) {
    for (EdgeId e : out_edges(u)) {
      if (edge_to(e) == v) return e;
    }
    return EdgeId::invalid();
  }
  for (std::size_t e = 0; e < num_edges(); ++e) {
    if (tails_[e] == u && heads_[e] == v) return EdgeId(static_cast<std::uint32_t>(e));
  }
  return EdgeId::invalid();
}

double DiGraph::node_distance(NodeId a, NodeId b) const {
  const double dx = x(a) - x(b);
  const double dy = y(a) - y(b);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace mts
