// Yen's algorithm for the k shortest loopless (simple) paths.
//
// The paper forces the victim onto the 100th-shortest path between source
// and destination ("path rank"); this module produces that ranked list.
// The same spur-path machinery yields a "second shortest path different
// from P" oracle, which the attack layer uses to certify that the forced
// path p* is the *exclusive* shortest path after edge removals.
//
// Spur searches are goal-directed: one reverse Dijkstra from the
// destination per query provides exact lower bounds that prune spur
// relaxations which provably cannot beat the current admission bound.
// Results are bit-identical to unpruned Yen (DESIGN.md §9); the
// `yen.spurs_pruned` counter reports how many spurs the bound killed.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra.hpp"

namespace mts {

struct YenOptions {
  /// Removed-edge mask applied to every search (nullptr = none).
  const EdgeFilter* filter = nullptr;
  /// Safety cap on total spur searches (0 = unlimited).
  std::size_t max_spur_searches = 0;
  /// Deterministic work budget, charged one spur search per deviation
  /// position plus the underlying Dijkstra effort (nullptr = unlimited).
  /// Exceeding it throws BudgetExhausted (core/budget.hpp).
  WorkBudget* budget = nullptr;
  /// Per-request work accounting (nullptr = none): receives spur-search /
  /// spur-pruned totals plus the underlying Dijkstra effort
  /// (core/request_trace.hpp).
  RequestTrace* trace = nullptr;
  /// Externally computed reverse bounds: exact distances to `target` under
  /// `filter` in a bounds-only SearchSpace (e.g.
  /// ContractionHierarchy::bounds_to_target).  When set, yen_ksp skips its
  /// own reverse Dijkstra — but a bounds-only space has no parents to
  /// extract the first path from, so `first_path` must be set too.
  /// Bounds exactness keeps results identical (DESIGN.md §9/§14): candidate
  /// lengths are forward-order sums independent of the bounds, which only
  /// decide what gets pruned.
  const SearchSpace* reverse_bounds = nullptr;
  /// The shortest path under `filter` (required with `reverse_bounds`).
  /// Must run source -> target; its length must be the forward-order edge
  /// sum.
  const Path* first_path = nullptr;
};

/// Returns up to `k` simple paths from `source` to `target` in nondecreasing
/// length order (fewer if the graph has fewer distinct simple paths or the
/// spur-search cap is hit).  k = 0 returns an empty vector.
std::vector<Path> yen_ksp(const DiGraph& g, std::span<const double> weights, NodeId source,
                          NodeId target, std::size_t k, const YenOptions& options = {});

/// Shortest simple path from `source` to `target` that differs from `avoid`
/// (by edge sequence), or nullopt if no other path exists.  Exact: uses the
/// Yen deviation argument, so it considers every path that branches off
/// `avoid` at any node.  `avoid` must itself be the (a) shortest path under
/// the current filter for the deviation argument to be exhaustive.
/// `reverse_bounds`, when set, must hold exact distances to `target` under
/// `filter` (e.g. CchMetric::bounds_to_target after recustomizing to the
/// same filter) and replaces the internal reverse Dijkstra; the returned
/// path is identical either way (see YenOptions::reverse_bounds).
std::optional<Path> second_shortest_path(const DiGraph& g, std::span<const double> weights,
                                         NodeId source, NodeId target, const Path& avoid,
                                         const EdgeFilter* filter = nullptr,
                                         WorkBudget* budget = nullptr,
                                         RequestTrace* trace = nullptr,
                                         const SearchSpace* reverse_bounds = nullptr);

}  // namespace mts
