#include "graph/maxflow.hpp"

#include <limits>
#include <queue>

#include "core/error.hpp"

namespace mts {

namespace {

/// Residual arc: graph edges plus their reverse companions.
struct Arc {
  std::uint32_t head;
  std::uint32_t rev;       // index of the reverse arc in arcs_of[head]
  double capacity;
  EdgeId origin;           // originating graph edge (invalid for reverse arcs)
};

class Dinic {
 public:
  Dinic(const DiGraph& g, std::span<const double> capacities)
      : n_(static_cast<std::uint32_t>(g.num_nodes())), arcs_of_(n_) {
    for (EdgeId e : g.edges()) {
      require(capacities[e.value()] >= 0.0, "max_flow: negative capacity");
      add_arc(g.edge_from(e).value(), g.edge_to(e).value(), capacities[e.value()], e);
    }
  }

  double run(std::uint32_t s, std::uint32_t t) {
    double total = 0.0;
    while (build_levels(s, t)) {
      cursor_.assign(n_, 0);
      double pushed;
      while ((pushed = augment(s, t, std::numeric_limits<double>::infinity())) > 0.0) {
        total += pushed;
      }
    }
    return total;
  }

  /// After run(): nodes still reachable in the residual network.
  [[nodiscard]] std::vector<std::uint8_t> residual_reachable(std::uint32_t s) const {
    std::vector<std::uint8_t> seen(n_, 0);
    std::vector<std::uint32_t> stack = {s};
    seen[s] = 1;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (const Arc& a : arcs_of_[u]) {
        if (a.capacity > kResidualEps && !seen[a.head]) {
          seen[a.head] = 1;
          stack.push_back(a.head);
        }
      }
    }
    return seen;
  }

  /// Saturated original edges crossing the cut frontier.
  [[nodiscard]] std::vector<EdgeId> cut_edges(const std::vector<std::uint8_t>& source_side) const {
    std::vector<EdgeId> cut;
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (!source_side[u]) continue;
      for (const Arc& a : arcs_of_[u]) {
        if (a.origin.valid() && !source_side[a.head]) cut.push_back(a.origin);
      }
    }
    return cut;
  }

 private:
  static constexpr double kResidualEps = 1e-12;

  void add_arc(std::uint32_t u, std::uint32_t v, double cap, EdgeId origin) {
    arcs_of_[u].push_back({v, static_cast<std::uint32_t>(arcs_of_[v].size() + (u == v ? 1 : 0)),
                           cap, origin});
    arcs_of_[v].push_back({u, static_cast<std::uint32_t>(arcs_of_[u].size() - 1), 0.0,
                           EdgeId::invalid()});
  }

  bool build_levels(std::uint32_t s, std::uint32_t t) {
    level_.assign(n_, -1);
    std::queue<std::uint32_t> queue;
    level_[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const auto u = queue.front();
      queue.pop();
      for (const Arc& a : arcs_of_[u]) {
        if (a.capacity > kResidualEps && level_[a.head] < 0) {
          level_[a.head] = level_[u] + 1;
          queue.push(a.head);
        }
      }
    }
    return level_[t] >= 0;
  }

  double augment(std::uint32_t u, std::uint32_t t, double limit) {
    if (u == t) return limit;
    for (auto& pos = cursor_[u]; pos < arcs_of_[u].size(); ++pos) {
      Arc& a = arcs_of_[u][pos];
      if (a.capacity <= kResidualEps || level_[a.head] != level_[u] + 1) continue;
      const double pushed = augment(a.head, t, std::min(limit, a.capacity));
      if (pushed > 0.0) {
        a.capacity -= pushed;
        arcs_of_[a.head][a.rev].capacity += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  std::uint32_t n_;
  std::vector<std::vector<Arc>> arcs_of_;
  std::vector<int> level_;
  std::vector<std::size_t> cursor_;
};

}  // namespace

MaxFlowResult max_flow(const DiGraph& g, std::span<const double> capacities, NodeId source,
                       NodeId sink) {
  require(g.finalized(), "max_flow: graph not finalized");
  require(capacities.size() == g.num_edges(), "max_flow: capacity vector size mismatch");
  require(source != sink, "max_flow: source == sink");

  Dinic dinic(g, capacities);
  MaxFlowResult result;
  result.flow = dinic.run(source.value(), sink.value());
  result.source_side = dinic.residual_reachable(source.value());
  result.cut_edges = dinic.cut_edges(result.source_side);
  return result;
}

}  // namespace mts
