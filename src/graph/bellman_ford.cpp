#include "graph/bellman_ford.hpp"

#include "core/error.hpp"

namespace mts {

ShortestPathTree bellman_ford(const DiGraph& g, std::span<const double> weights,
                              NodeId source, const EdgeFilter* filter) {
  require(g.finalized(), "bellman_ford: graph not finalized");
  require(weights.size() == g.num_edges(), "bellman_ford: weight vector size mismatch");

  ShortestPathTree tree;
  tree.dist.assign(g.num_nodes(), kInfiniteDistance);
  tree.parent_edge.assign(g.num_nodes(), EdgeId::invalid());
  tree.dist[source.value()] = 0.0;

  bool changed = true;
  for (std::size_t round = 0; round < g.num_nodes() && changed; ++round) {
    changed = false;
    for (EdgeId e : g.edges()) {
      if (!edge_alive(filter, e)) continue;
      const NodeId u = g.edge_from(e);
      const NodeId v = g.edge_to(e);
      require(weights[e.value()] >= 0.0, "bellman_ford: negative edge weight");
      if (tree.dist[u.value()] == kInfiniteDistance) continue;
      const double candidate = tree.dist[u.value()] + weights[e.value()];
      if (candidate < tree.dist[v.value()]) {
        tree.dist[v.value()] = candidate;
        tree.parent_edge[v.value()] = e;
        changed = true;
      }
    }
  }
  return tree;
}

}  // namespace mts
