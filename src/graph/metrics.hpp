// Street-network shape metrics.
//
// The paper's topology result hinges on how "lattice" a city is (Chicago
// very lattice, Boston organic).  We quantify latticeness with Boeing-style
// orientation order (entropy of edge bearings) plus the 4-way intersection
// share, so the claim can be tested as a controlled sweep rather than by
// eyeballing maps.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace mts {

struct NetworkMetrics {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  double average_degree = 0.0;        // 2|E|/|V| (paper Table I)
  double orientation_entropy = 0.0;   // Shannon entropy of bearings, nats
  double orientation_order = 0.0;     // 1 = perfect grid, 0 = uniform bearings
  double four_way_share = 0.0;        // fraction of intersections with degree 4
  double mean_segment_length = 0.0;   // Euclidean, meters
};

/// Computes shape metrics from node positions and topology.
NetworkMetrics compute_network_metrics(const DiGraph& g);

/// Boeing (2019) orientation-order score phi in [0, 1]: 1 - a normalized
/// entropy of edge bearings folded into [0, 90) degrees and binned.
/// Exposed separately for tests.
double orientation_order(const std::vector<double>& bearings_deg, std::size_t bins = 18);

}  // namespace mts
