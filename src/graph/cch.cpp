#include "graph/cch.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct CchCounters {
  obs::CounterId recustomizations;
  obs::CounterId arcs_recomputed;
  obs::CounterId queries;
  obs::CounterId settled;  // shares ch.nodes_settled: one serving-cost total
  obs::CounterId phast_runs;
  obs::CounterId sweep_relaxations;

  static const CchCounters& get() {
    static const CchCounters counters{
        obs::MetricsRegistry::instance().counter("ch.recustomizations"),
        obs::MetricsRegistry::instance().counter("cch.arcs_recomputed"),
        obs::MetricsRegistry::instance().counter("cch.queries"),
        obs::MetricsRegistry::instance().counter("ch.nodes_settled"),
        obs::MetricsRegistry::instance().counter("cch.phast_runs"),
        obs::MetricsRegistry::instance().counter("ch.sweep_relaxations"),
    };
    return counters;
  }
};

}  // namespace

CchTopology CchTopology::build(const DiGraph& g, std::span<const std::uint32_t> rank) {
  require(g.finalized(), "CCH: graph not finalized");
  require(rank.size() == g.num_nodes(), "CCH: rank size mismatch");
  const std::size_t n = g.num_nodes();

  CchTopology topo;
  topo.rank_.assign(rank.begin(), rank.end());

  std::vector<std::uint32_t> node_at_rank(n, 0);
  std::vector<std::uint8_t> rank_seen(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    require(rank[v] < n && rank_seen[rank[v]] == 0, "CCH: rank is not a permutation");
    rank_seen[rank[v]] = 1;
    node_at_rank[rank[v]] = v;
  }

  struct TmpArc {
    std::uint32_t from;
    std::uint32_t to;
  };
  std::vector<TmpArc> arcs;
  // Dedupe registry, key (from << 32) | to.  Lookups only — never
  // iterated, so arc order stays the deterministic creation order.
  std::unordered_map<std::uint64_t, std::uint32_t> arc_ids;
  std::vector<std::vector<std::uint32_t>> out_up(n);  // arcs v->w, rank w > rank v, keyed v
  std::vector<std::vector<std::uint32_t>> in_up(n);   // arcs u->v, rank u > rank v, keyed v

  auto ensure_arc = [&](std::uint32_t from, std::uint32_t to) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    const auto [it, inserted] =
        arc_ids.try_emplace(key, static_cast<std::uint32_t>(arcs.size()));
    if (inserted) {
      arcs.push_back({from, to});
      if (rank[from] < rank[to]) {
        out_up[from].push_back(it->second);
      } else {
        in_up[to].push_back(it->second);
      }
    }
    return it->second;
  };

  topo.edge_arc_.assign(g.num_edges(), kInvalidArc);
  for (EdgeId e : g.edges()) {
    const auto from = g.edge_from(e).value();
    const auto to = g.edge_to(e).value();
    if (from == to) continue;  // self loops never lie on shortest paths
    topo.edge_arc_[e.value()] = ensure_arc(from, to);
  }

  // Elimination game, ascending rank: connect every higher-ranked
  // in-neighbor to every higher-ranked out-neighbor and record the
  // triangle.  No witness pruning — correctness for arbitrary later
  // metrics depends on keeping every composition candidate.
  struct Triangle {
    std::uint32_t parent;
    std::uint32_t left;
    std::uint32_t right;
  };
  std::vector<Triangle> triangles;
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::uint32_t v = node_at_rank[r];
    // ensure_arc appends only to lists of higher-ranked nodes, never to
    // v's own; iterate by index against the pre-loop sizes.
    const std::size_t num_in = in_up[v].size();
    const std::size_t num_out = out_up[v].size();
    for (std::size_t i = 0; i < num_in; ++i) {
      const std::uint32_t left = in_up[v][i];
      const std::uint32_t u = arcs[left].from;
      for (std::size_t o = 0; o < num_out; ++o) {
        const std::uint32_t right = out_up[v][o];
        const std::uint32_t w = arcs[right].to;
        if (u == w) continue;
        triangles.push_back({ensure_arc(u, w), left, right});
      }
    }
  }

  // Reindex into customization order: ascending lower-endpoint rank,
  // creation order within a rank.  A triangle's children own the apex —
  // strictly the lowest rank of the three nodes — so children always
  // precede their parent, which makes one forward pass a valid
  // (re-)customization schedule.
  const auto num_arcs = static_cast<std::uint32_t>(arcs.size());
  auto owner_rank = [&](std::uint32_t a) {
    return std::min(rank[arcs[a].from], rank[arcs[a].to]);
  };
  std::vector<std::uint32_t> order(num_arcs);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return owner_rank(a) < owner_rank(b);
  });
  std::vector<std::uint32_t> new_id(num_arcs, 0);
  for (std::uint32_t i = 0; i < num_arcs; ++i) new_id[order[i]] = i;

  topo.arc_from_.resize(num_arcs);
  topo.arc_to_.resize(num_arcs);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    topo.arc_from_[new_id[a]] = arcs[a].from;
    topo.arc_to_[new_id[a]] = arcs[a].to;
  }
  for (std::uint32_t& a : topo.edge_arc_) {
    if (a != kInvalidArc) a = new_id[a];
  }
  for (Triangle& t : triangles) {
    t.parent = new_id[t.parent];
    t.left = new_id[t.left];
    t.right = new_id[t.right];
  }

  // Parallel-edge CSR (edge order within an arc = EdgeId order).
  topo.edge_offsets_.assign(num_arcs + 1, 0);
  for (std::uint32_t a : topo.edge_arc_) {
    if (a != kInvalidArc) ++topo.edge_offsets_[a + 1];
  }
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    topo.edge_offsets_[a + 1] += topo.edge_offsets_[a];
  }
  topo.edge_ids_.assign(topo.edge_offsets_[num_arcs], EdgeId(0));
  {
    std::vector<std::uint32_t> cursor(topo.edge_offsets_.begin(), topo.edge_offsets_.end() - 1);
    for (EdgeId e : g.edges()) {
      const std::uint32_t a = topo.edge_arc_[e.value()];
      if (a == kInvalidArc) continue;
      topo.edge_ids_[cursor[a]++] = e;
    }
  }

  // Triangle CSR keyed by parent, plus the reverse (child -> parents)
  // dependency CSR that recustomization propagates along.
  topo.tri_offsets_.assign(num_arcs + 1, 0);
  topo.parent_offsets_.assign(num_arcs + 1, 0);
  for (const Triangle& t : triangles) {
    ++topo.tri_offsets_[t.parent + 1];
    ++topo.parent_offsets_[t.left + 1];
    ++topo.parent_offsets_[t.right + 1];
  }
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    topo.tri_offsets_[a + 1] += topo.tri_offsets_[a];
    topo.parent_offsets_[a + 1] += topo.parent_offsets_[a];
  }
  topo.tri_left_.assign(topo.tri_offsets_[num_arcs], 0);
  topo.tri_right_.assign(topo.tri_offsets_[num_arcs], 0);
  topo.parent_arcs_.assign(topo.parent_offsets_[num_arcs], 0);
  {
    std::vector<std::uint32_t> tri_cursor(topo.tri_offsets_.begin(), topo.tri_offsets_.end() - 1);
    std::vector<std::uint32_t> parent_cursor(topo.parent_offsets_.begin(),
                                             topo.parent_offsets_.end() - 1);
    for (const Triangle& t : triangles) {
      const std::uint32_t slot = tri_cursor[t.parent]++;
      topo.tri_left_[slot] = t.left;
      topo.tri_right_[slot] = t.right;
      topo.parent_arcs_[parent_cursor[t.left]++] = t.parent;
      topo.parent_arcs_[parent_cursor[t.right]++] = t.parent;
    }
  }

  // Query CSRs and the PHAST sweep order.
  topo.up_out_offsets_.assign(n + 1, 0);
  topo.up_in_offsets_.assign(n + 1, 0);
  for (std::uint32_t a = 0; a < num_arcs; ++a) {
    if (rank[topo.arc_from_[a]] < rank[topo.arc_to_[a]]) {
      ++topo.up_out_offsets_[topo.arc_from_[a] + 1];
    } else {
      ++topo.up_in_offsets_[topo.arc_to_[a] + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    topo.up_out_offsets_[v + 1] += topo.up_out_offsets_[v];
    topo.up_in_offsets_[v + 1] += topo.up_in_offsets_[v];
  }
  topo.up_out_arcs_.assign(topo.up_out_offsets_[n], 0);
  topo.up_in_arcs_.assign(topo.up_in_offsets_[n], 0);
  {
    std::vector<std::uint32_t> out_cursor(topo.up_out_offsets_.begin(),
                                          topo.up_out_offsets_.end() - 1);
    std::vector<std::uint32_t> in_cursor(topo.up_in_offsets_.begin(),
                                         topo.up_in_offsets_.end() - 1);
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      if (rank[topo.arc_from_[a]] < rank[topo.arc_to_[a]]) {
        topo.up_out_arcs_[out_cursor[topo.arc_from_[a]]++] = a;
      } else {
        topo.up_in_arcs_[in_cursor[topo.arc_to_[a]]++] = a;
      }
    }
  }
  topo.sweep_arcs_.assign(topo.up_out_arcs_.begin(), topo.up_out_arcs_.end());
  std::stable_sort(topo.sweep_arcs_.begin(), topo.sweep_arcs_.end(),
                   [&topo](std::uint32_t a, std::uint32_t b) {
                     return topo.rank_[topo.arc_to_[a]] > topo.rank_[topo.arc_to_[b]];
                   });
  return topo;
}

CchMetric::CchMetric(const CchTopology& topology, std::span<const double> weights)
    : topo_(&topology), weights_(weights) {
  require(weights.size() == topo_->num_edges(), "CchMetric: weights size mismatch");
  for (const double w : weights) {
    require(w >= 0.0, "CchMetric: weights must be finite and non-negative");
  }
  removed_.assign(weights.size(), 0);
  dirty_.assign(topo_->num_arcs(), 0);
  arc_weight_.resize(topo_->num_arcs());
  obs::ScopedPhase obs_phase("cch");
  for (std::uint32_t a = 0; a < topo_->num_arcs(); ++a) arc_weight_[a] = arc_value(a);
}

double CchMetric::arc_value(std::uint32_t a) const {
  double value = kInf;
  for (std::uint32_t i = topo_->edge_offsets_[a]; i < topo_->edge_offsets_[a + 1]; ++i) {
    const EdgeId e = topo_->edge_ids_[i];
    if (removed_[e.value()] != 0) continue;
    value = std::min(value, weights_[e.value()]);
  }
  for (std::uint32_t i = topo_->tri_offsets_[a]; i < topo_->tri_offsets_[a + 1]; ++i) {
    value = std::min(value, arc_weight_[topo_->tri_left_[i]] + arc_weight_[topo_->tri_right_[i]]);
  }
  return value;
}

void CchMetric::recustomize(const EdgeFilter* filter) {
  obs::ScopedPhase obs_phase("cch");
  const auto num_arcs = static_cast<std::uint32_t>(topo_->num_arcs());
  std::uint32_t first_dirty = num_arcs;
  for (std::size_t e = 0; e < removed_.size(); ++e) {
    const std::uint8_t now =
        (filter != nullptr && filter->is_removed(EdgeId(static_cast<std::uint32_t>(e)))) ? 1 : 0;
    if (now == removed_[e]) continue;
    removed_[e] = now;
    const std::uint32_t a = topo_->edge_arc_[e];
    if (a == CchTopology::kInvalidArc) continue;  // self loop: never routed
    if (dirty_[a] == 0) {
      dirty_[a] = 1;
      first_dirty = std::min(first_dirty, a);
    }
  }

  // One forward pass in customization order: children precede parents, so
  // each dirty arc sees final child values; changed values wake their
  // triangle parents (always later in the order).
  std::uint64_t recomputed = 0;
  for (std::uint32_t a = first_dirty; a < num_arcs; ++a) {
    if (dirty_[a] == 0) continue;
    dirty_[a] = 0;
    ++recomputed;
    const double value = arc_value(a);
    if (value == arc_weight_[a]) continue;
    arc_weight_[a] = value;
    for (std::uint32_t i = topo_->parent_offsets_[a]; i < topo_->parent_offsets_[a + 1]; ++i) {
      dirty_[topo_->parent_arcs_[i]] = 1;
    }
  }

  const CchCounters& counters = CchCounters::get();
  obs::add(counters.recustomizations);
  obs::add(counters.arcs_recomputed, recomputed);
}

double CchMetric::distance(NodeId source, NodeId target, RequestTrace* trace) {
  const std::size_t n = topo_->num_nodes();
  require(source.value() < n && target.value() < n, "CchMetric: endpoint out of range");
  obs::ScopedPhase obs_phase("cch");
  ws_.begin(n);
  ws_.set(source.value(), true, 0.0, -1);
  ws_.set(target.value(), false, 0.0, -1);
  ws_.heap_push(0.0, source.value(), true);
  ws_.heap_push(0.0, target.value(), false);

  double best = kInf;
  std::uint64_t settled = 0;
  while (!ws_.heap_empty()) {
    const ChSearchSpace::Entry top = ws_.heap_pop();
    if (top.key > ws_.dist(top.node, top.forward)) continue;  // stale
    if (top.key > best) continue;
    ++settled;

    const double theirs = ws_.dist(top.node, !top.forward);
    if (theirs < kInf && top.key + theirs < best) best = top.key + theirs;

    const auto& offsets = top.forward ? topo_->up_out_offsets_ : topo_->up_in_offsets_;
    const auto& arc_list = top.forward ? topo_->up_out_arcs_ : topo_->up_in_arcs_;
    for (std::uint32_t i = offsets[top.node]; i < offsets[top.node + 1]; ++i) {
      const std::uint32_t a = arc_list[i];
      const std::uint32_t other = top.forward ? topo_->arc_to_[a] : topo_->arc_from_[a];
      // Masked-out arcs carry +inf and fail the improvement test.
      const double candidate = top.key + arc_weight_[a];
      if (candidate < ws_.dist(other, top.forward)) {
        ws_.set(other, top.forward, candidate, -1);
        ws_.heap_push(candidate, other, top.forward);
      }
    }
  }

  const CchCounters& counters = CchCounters::get();
  obs::add(counters.queries);
  obs::add(counters.settled, settled);
  if (trace != nullptr) trace->ch_nodes_settled += settled;
  return best;
}

void CchMetric::bounds_to_target(NodeId target, SearchSpace& out, RequestTrace* trace) {
  const std::size_t n = topo_->num_nodes();
  require(target.value() < n, "CchMetric bounds_to_target: target out of range");
  obs::ScopedPhase obs_phase("cch");
  ws_.begin(n);
  ws_.sweep_.assign(n, kInf);

  // Phase 1: backward upward search from the target under the mask.
  ws_.set(target.value(), false, 0.0, -1);
  ws_.heap_push(0.0, target.value(), false);
  std::uint64_t settled = 0;
  while (!ws_.heap_empty()) {
    const ChSearchSpace::Entry top = ws_.heap_pop();
    if (top.key > ws_.dist(top.node, false)) continue;  // stale
    ++settled;
    ws_.sweep_[top.node] = top.key;
    for (std::uint32_t i = topo_->up_in_offsets_[top.node];
         i < topo_->up_in_offsets_[top.node + 1]; ++i) {
      const std::uint32_t a = topo_->up_in_arcs_[i];
      const double candidate = top.key + arc_weight_[a];
      if (candidate < ws_.dist(topo_->arc_from_[a], false)) {
        ws_.set(topo_->arc_from_[a], false, candidate, -1);
        ws_.heap_push(candidate, topo_->arc_from_[a], false);
      }
    }
  }

  // Phase 2: one pass over upward arcs in descending head rank (see
  // ContractionHierarchy::bounds_to_target for the argument).
  std::uint64_t relaxed = 0;
  for (const std::uint32_t a : topo_->sweep_arcs_) {
    const double through = ws_.sweep_[topo_->arc_to_[a]] + arc_weight_[a];
    if (through < ws_.sweep_[topo_->arc_from_[a]]) {
      ws_.sweep_[topo_->arc_from_[a]] = through;
      ++relaxed;
    }
  }

  out.begin(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (ws_.sweep_[v] < kInf) out.set_label(NodeId(v), ws_.sweep_[v], EdgeId::invalid());
  }

  const CchCounters& counters = CchCounters::get();
  obs::add(counters.phast_runs);
  obs::add(counters.settled, settled);
  obs::add(counters.sweep_relaxations, relaxed);
  if (trace != nullptr) trace->ch_nodes_settled += settled;
}

}  // namespace mts
