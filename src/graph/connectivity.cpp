#include "graph/connectivity.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mts {

std::vector<std::uint8_t> reachable_from(const DiGraph& g, NodeId source,
                                         const EdgeFilter* filter) {
  require(g.finalized(), "reachable_from: graph not finalized");
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack = {source};
  seen[source.value()] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (EdgeId e : g.out_edges(u)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId v = g.edge_to(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

bool is_reachable(const DiGraph& g, NodeId source, NodeId target, const EdgeFilter* filter) {
  return reachable_from(g, source, filter)[target.value()] != 0;
}

std::uint32_t SccResult::largest() const {
  const auto all = sizes();
  const auto it = std::max_element(all.begin(), all.end());
  return it == all.end() ? 0 : static_cast<std::uint32_t>(it - all.begin());
}

std::vector<std::size_t> SccResult::sizes() const {
  std::vector<std::size_t> out(num_components, 0);
  for (auto c : component) ++out[c];
  return out;
}

SccResult strongly_connected_components(const DiGraph& g, const EdgeFilter* filter) {
  require(g.finalized(), "scc: graph not finalized");
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = ~0u;

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<std::uint32_t> scc_stack;
  std::uint32_t next_index = 0;

  // Iterative Tarjan: frames carry (node, position in its out-edge list).
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (NodeId root : g.nodes()) {
    if (index[root.value()] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      auto& frame = call_stack.back();
      const NodeId u = frame.node;
      if (frame.edge_pos == 0) {
        index[u.value()] = lowlink[u.value()] = next_index++;
        scc_stack.push_back(u.value());
        on_stack[u.value()] = 1;
      }
      bool descended = false;
      const auto out = g.out_edges(u);
      while (frame.edge_pos < out.size()) {
        const EdgeId e = out[frame.edge_pos++];
        if (!edge_alive(filter, e)) continue;
        const NodeId v = g.edge_to(e);
        if (index[v.value()] == kUnvisited) {
          call_stack.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v.value()]) {
          lowlink[u.value()] = std::min(lowlink[u.value()], index[v.value()]);
        }
      }
      if (descended) continue;

      if (lowlink[u.value()] == index[u.value()]) {
        const auto comp = static_cast<std::uint32_t>(result.num_components++);
        std::uint32_t popped;
        do {
          popped = scc_stack.back();
          scc_stack.pop_back();
          on_stack[popped] = 0;
          result.component[popped] = comp;
        } while (popped != u.value());
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        auto& parent = call_stack.back();
        lowlink[parent.node.value()] =
            std::min(lowlink[parent.node.value()], lowlink[u.value()]);
      }
    }
  }
  return result;
}

}  // namespace mts
