#include "graph/turn_expansion.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>

#include "core/error.hpp"

namespace mts {

TurnKind classify_turn(const DiGraph& g, EdgeId in, EdgeId out) {
  require(g.edge_to(in) == g.edge_from(out), "classify_turn: edges do not meet");
  const NodeId a = g.edge_from(in);
  const NodeId b = g.edge_to(in);
  const NodeId c = g.edge_to(out);
  const double in_angle = std::atan2(g.y(b) - g.y(a), g.x(b) - g.x(a));
  const double out_angle = std::atan2(g.y(c) - g.y(b), g.x(c) - g.x(b));
  double turn = (out_angle - in_angle) * 180.0 / std::numbers::pi;
  while (turn > 180.0) turn -= 360.0;
  while (turn <= -180.0) turn += 360.0;
  if (std::abs(turn) <= 30.0) return TurnKind::Straight;
  if (std::abs(turn) >= 150.0) return TurnKind::UTurn;
  return turn > 0.0 ? TurnKind::Left : TurnKind::Right;
}

TurnPenaltyFn standard_turn_policy(const DiGraph& g, double left_penalty) {
  return [&g, left_penalty](EdgeId in, EdgeId out) -> std::optional<double> {
    switch (classify_turn(g, in, out)) {
      case TurnKind::UTurn: return std::nullopt;
      case TurnKind::Left: return left_penalty;
      case TurnKind::Straight:
      case TurnKind::Right: return 0.0;
    }
    return 0.0;
  };
}

TurnAwareRouter::TurnAwareRouter(const DiGraph& g, std::span<const double> weights,
                                 const TurnPenaltyFn& policy)
    : g_(g), weights_(weights) {
  require(g.finalized(), "TurnAwareRouter: graph not finalized");
  require(weights.size() == g.num_edges(), "TurnAwareRouter: weights size mismatch");

  for (EdgeId e : g.edges()) {
    expanded_.add_node(g.x(g.edge_to(e)), g.y(g.edge_to(e)));
  }
  for (EdgeId in : g.edges()) {
    const NodeId via = g.edge_to(in);
    for (EdgeId out : g.out_edges(via)) {
      const auto penalty = policy(in, out);
      if (!penalty) continue;  // forbidden turn
      require(*penalty >= 0.0, "TurnAwareRouter: negative turn penalty");
      expanded_.add_edge(NodeId(in.value()), NodeId(out.value()));
      arc_weights_.push_back(*penalty + weights[out.value()]);
    }
  }
  expanded_.finalize();
}

std::optional<Path> TurnAwareRouter::shortest_path(NodeId source, NodeId target) const {
  require(source.value() < g_.num_nodes() && target.value() < g_.num_nodes(),
          "TurnAwareRouter: endpoint out of range");
  if (source == target) return Path{};

  // Multi-source Dijkstra over expanded nodes (= directed edges): seed
  // with every edge leaving `source`, stop at any edge entering `target`.
  const std::size_t m = expanded_.num_nodes();
  std::vector<double> dist(m, kInfiniteDistance);
  std::vector<std::uint32_t> parent(m, ~0u);  // previous expanded node
  std::vector<std::uint8_t> settled(m, 0);

  struct Entry {
    double dist;
    std::uint32_t node;
    bool operator<(const Entry& other) const { return dist > other.dist; }
  };
  std::priority_queue<Entry> queue;
  for (EdgeId e : g_.out_edges(source)) {
    if (weights_[e.value()] < dist[e.value()]) {
      dist[e.value()] = weights_[e.value()];
      queue.push({dist[e.value()], e.value()});
    }
  }

  std::uint32_t final_edge = ~0u;
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (settled[node]) continue;
    settled[node] = 1;
    if (g_.edge_to(EdgeId(node)) == target) {
      final_edge = node;
      break;
    }
    for (EdgeId arc : expanded_.out_edges(NodeId(node))) {
      const auto next = expanded_.edge_to(arc).value();
      if (settled[next]) continue;
      const double candidate = d + arc_weights_[arc.value()];
      if (candidate < dist[next]) {
        dist[next] = candidate;
        parent[next] = node;
        queue.push({candidate, next});
      }
    }
  }
  if (final_edge == ~0u) return std::nullopt;

  Path path;
  path.length = dist[final_edge];
  for (std::uint32_t cursor = final_edge; cursor != ~0u; cursor = parent[cursor]) {
    path.edges.push_back(EdgeId(cursor));
  }
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

}  // namespace mts
