#include "graph/eigen.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mts {

EigenResult eigenvector_centrality(const DiGraph& g, const EigenOptions& options) {
  require(g.finalized(), "eigenvector_centrality: graph not finalized");
  const std::size_t n = g.num_nodes();
  EigenResult result;
  result.centrality.assign(n, n > 0 ? 1.0 / std::sqrt(static_cast<double>(n)) : 0.0);
  if (n == 0) return result;

  std::vector<double> next(n, 0.0);
  double lambda = 0.0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // next = (A^T + I) x + damping * mean(x) * 1.  The +I shift keeps the
    // dominant eigenvalue unique on bipartite graphs (plain power iteration
    // would oscillate between the two sides); damping handles reducibility.
    double mean = 0.0;
    for (double v : result.centrality) mean += v;
    mean /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = options.damping * mean + result.centrality[i];
    }
    for (EdgeId e : g.edges()) {
      if (!edge_alive(options.filter, e)) continue;
      next[g.edge_to(e).value()] += result.centrality[g.edge_from(e).value()];
    }

    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;  // no edges at all

    // Rayleigh quotient lambda ~= x . (A^T x) before normalization.
    double rayleigh = 0.0;
    for (std::size_t i = 0; i < n; ++i) rayleigh += result.centrality[i] * next[i];

    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double normalized = next[i] / norm;
      diff += std::abs(normalized - result.centrality[i]);
      result.centrality[i] = normalized;
    }
    lambda = rayleigh - 1.0;  // undo the +I shift
    result.iterations = iter + 1;
    if (diff < options.tolerance * static_cast<double>(n)) {
      result.converged = true;
      break;
    }
  }
  result.eigenvalue = lambda;
  return result;
}

std::vector<double> edge_eigen_scores(const DiGraph& g, const EigenResult& result) {
  std::vector<double> scores(g.num_edges(), 0.0);
  for (EdgeId e : g.edges()) {
    scores[e.value()] =
        result.centrality[g.edge_from(e).value()] * result.centrality[g.edge_to(e).value()];
  }
  return scores;
}

}  // namespace mts
