// Customizable Contraction Hierarchies (Dibbelt/Strasser/Wagner 2014),
// specialized to EdgeFilter masks.
//
// A witness-pruned CH (contraction_hierarchy.hpp) is only correct for the
// weights it was built with: its witness searches discarded shortcuts
// another metric would need.  The attack loops, however, re-ask the same
// question — "what is the s->t distance with THESE edges removed?" — for
// thousands of candidate cuts.  CCH splits preprocessing in two:
//
//   1. CchTopology (metric-independent, built once per graph): run the
//      elimination game over the CH's fixed contraction order with NO
//      witness pruning, recording for every arc the original parallel
//      edges mapping onto it and every lower triangle {(u,v),(v,w)} that
//      can compose into it.  Arcs are stored in customization order —
//      ascending rank of the lower endpoint — so every triangle's children
//      strictly precede its parent.
//
//   2. CchMetric (cheap, per weight vector): customization assigns each
//      arc min(surviving original edges, min over lower triangles of
//      left + right), in one linear pass.  recustomize(filter) diffs the
//      mask against the previous one, marks the arcs of changed edges
//      dirty, and re-relaxes only dirty arcs (propagating to triangle
//      parents) — O(shortcuts) per cut instead of a full rebuild or a
//      full Dijkstra.  Removing every parallel edge of an arc drives it
//      to +inf, which the searches skip naturally.
//
// Queries mirror the CH ones: bidirectional upward point-to-point, and
// the PHAST-style one-to-all bounds_to_target used to goal-bound the
// oracle's certification searches under the candidate mask.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/request_trace.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/search_space.hpp"

namespace mts {

class CchTopology {
 public:
  /// Runs the elimination game over `g` with the fixed contraction order
  /// `rank` (one rank per node, a permutation — use the CH's ranks so the
  /// two hierarchies agree).  The graph is not retained.
  static CchTopology build(const DiGraph& g, std::span<const std::uint32_t> rank);

  [[nodiscard]] std::size_t num_nodes() const { return rank_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edge_arc_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return arc_from_.size(); }
  [[nodiscard]] std::size_t num_triangles() const { return tri_left_.size(); }

  static constexpr std::uint32_t kInvalidArc = 0xffffffffU;

 private:
  friend class CchMetric;

  CchTopology() = default;

  std::vector<std::uint32_t> rank_;
  // Arcs in customization order (ascending lower-endpoint rank; children
  // of every triangle precede their parent).
  std::vector<std::uint32_t> arc_from_;
  std::vector<std::uint32_t> arc_to_;
  // Original parallel edges per arc (CSR over arcs).
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<EdgeId> edge_ids_;
  // Lower triangles per arc (CSR over arcs): value candidates
  // arc_weight[left] + arc_weight[right].
  std::vector<std::uint32_t> tri_offsets_;
  std::vector<std::uint32_t> tri_left_;
  std::vector<std::uint32_t> tri_right_;
  // Reverse dependency (CSR over arcs): the parents whose triangles
  // contain this arc — the propagation frontier of re-customization.
  std::vector<std::uint32_t> parent_offsets_;
  std::vector<std::uint32_t> parent_arcs_;
  // Original edge -> covering arc (kInvalidArc for self loops).
  std::vector<std::uint32_t> edge_arc_;
  // Query CSRs.  Upward-out: arcs tail->head with rank[head] > rank[tail],
  // keyed by tail.  Upward-in: arcs tail->head with rank[tail] >
  // rank[head], keyed by head.  Entries are arc ids.
  std::vector<std::uint32_t> up_out_offsets_;
  std::vector<std::uint32_t> up_out_arcs_;
  std::vector<std::uint32_t> up_in_offsets_;
  std::vector<std::uint32_t> up_in_arcs_;
  // PHAST sweep: the upward-out arc ids, globally sorted by descending
  // head rank (see ContractionHierarchy::bounds_to_target).
  std::vector<std::uint32_t> sweep_arcs_;
};

/// One customized metric over a CchTopology.  Owns the arc weights and
/// the mask state; borrows the topology and the edge-weight span (both
/// must outlive it).  Not thread-safe — one instance per worker, like
/// SearchSpace.
class CchMetric {
 public:
  /// Customizes against `weights` with no edges removed.  `weights` must
  /// be the same length (and meaning) as the edge weights the topology's
  /// graph was built over.
  CchMetric(const CchTopology& topology, std::span<const double> weights);

  /// Re-customizes against `filter` (nullptr = nothing removed): diffs
  /// the mask against the previous call and recomputes only affected
  /// arcs.  Counted as ch.recustomizations.
  void recustomize(const EdgeFilter* filter);

  /// Exact shortest-path distance under the current mask
  /// (kInfiniteDistance when disconnected).
  [[nodiscard]] double distance(NodeId source, NodeId target, RequestTrace* trace = nullptr);

  /// Exact one-to-all distances to `target` under the current mask,
  /// published into `out` as a bounds-only SearchSpace (no parents) —
  /// the masked twin of ContractionHierarchy::bounds_to_target.
  void bounds_to_target(NodeId target, SearchSpace& out, RequestTrace* trace = nullptr);

 private:
  /// min(surviving parallel edges, lower-triangle compositions) for `a`.
  [[nodiscard]] double arc_value(std::uint32_t a) const;

  const CchTopology* topo_;
  std::span<const double> weights_;
  std::vector<double> arc_weight_;
  std::vector<std::uint8_t> removed_;  // current mask, per original edge
  std::vector<std::uint8_t> dirty_;    // per arc, scratch for recustomize
  ChSearchSpace ws_;
};

}  // namespace mts
