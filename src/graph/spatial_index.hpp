// Uniform-grid spatial index for nearest-node and nearest-segment queries.
//
// POI snapping scans every road segment per hospital and the city
// generator's avenue carving does nearest-node lookups per sample; both
// are O(n) scans that dominate at paper-scale cities.  This bucket-grid
// index makes them ~O(1) expected.
#pragma once

#include <optional>
#include <vector>

#include "core/strong_id.hpp"

namespace mts {

/// A 2D point payload with an arbitrary id.
struct IndexedPoint {
  double x = 0.0;
  double y = 0.0;
  std::uint32_t id = 0;
};

/// A 2D segment payload (for point-to-segment queries).
struct IndexedSegment {
  double x1 = 0.0, y1 = 0.0;
  double x2 = 0.0, y2 = 0.0;
  std::uint32_t id = 0;
};

/// Bucketed uniform grid over points.  Build once, query many times.
class PointGrid {
 public:
  /// `cell_size` should be on the order of the typical query radius
  /// (e.g. a city block).  Throws on non-positive cell size.
  PointGrid(std::vector<IndexedPoint> points, double cell_size);

  /// Id of the nearest point (expanding ring search; exact).
  /// nullopt only when the index is empty.
  [[nodiscard]] std::optional<std::uint32_t> nearest(double x, double y) const;

  /// Ids of all points within `radius` of (x, y).
  [[nodiscard]] std::vector<std::uint32_t> within(double x, double y, double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  struct CellRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  [[nodiscard]] long cell_x(double x) const;
  [[nodiscard]] long cell_y(double y) const;
  [[nodiscard]] const CellRange* cell(long cx, long cy) const;

  std::vector<IndexedPoint> points_;  // sorted by cell
  std::vector<CellRange> ranges_;
  double cell_size_;
  double min_x_ = 0.0, min_y_ = 0.0;
  long cols_ = 0, rows_ = 0;
};

/// Bucketed uniform grid over segments; each segment is registered in all
/// cells its bounding box overlaps.
class SegmentGrid {
 public:
  SegmentGrid(std::vector<IndexedSegment> segments, double cell_size);

  struct Hit {
    std::uint32_t id = 0;
    double distance = 0.0;
    double t = 0.0;       // parameter of the closest point on the segment
    double x = 0.0, y = 0.0;
  };

  /// Closest segment to (x, y); exact (ring search with certified bound).
  [[nodiscard]] std::optional<Hit> nearest(double x, double y) const;

  [[nodiscard]] std::size_t size() const { return segments_.size(); }

 private:
  [[nodiscard]] long cell_x(double x) const;
  [[nodiscard]] long cell_y(double y) const;

  std::vector<IndexedSegment> segments_;
  std::vector<std::vector<std::uint32_t>> cells_;
  double cell_size_;
  double min_x_ = 0.0, min_y_ = 0.0;
  long cols_ = 0, rows_ = 0;
};

}  // namespace mts
