// Reusable single-source search workspace (dist/parent/settled + heap).
//
// Yen's algorithm runs one Dijkstra per spur node — tens of thousands of
// searches per table cell — and each search used to allocate three
// num_nodes-sized vectors.  SearchSpace keeps that storage alive across
// searches and resets it in O(1) with an epoch stamp: a per-node label is
// valid only when its stamp equals the current epoch, so begin() just
// bumps the epoch instead of touching every node.  The heap is a plain
// vector driven by std::push_heap/std::pop_heap, also reused.
//
// Determinism: the heap pops entries in the total order (key, node id).
// Because the order is total and independent of insertion history, the
// settle order of a search is a function of the label set alone — pruning
// some pushes (goal-directed search, DESIGN.md §9) can never flip which of
// two equal-key entries pops first.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/strong_id.hpp"

namespace mts {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

class SearchSpace {
 public:
  struct HeapEntry {
    double key;
    NodeId node;
  };

  /// Per-search effort, written by the engines when a search finishes.
  struct Stats {
    std::uint64_t nodes_settled = 0;
    std::uint64_t edges_scanned = 0;
    /// Relaxations skipped because g + lower bound exceeded the caller's
    /// prune_bound (goal-directed searches only; disconnection skips via
    /// an infinite lower bound are not counted).
    std::uint64_t bound_pruned = 0;
  };

  /// Starts a new search over `num_nodes` nodes: clears the heap and
  /// invalidates every label.  Returns true when existing storage was
  /// reused (no allocation happened).
  bool begin(std::size_t num_nodes);

  [[nodiscard]] std::size_t size() const { return dist_.size(); }

  // --- labels (reads outside the current epoch see the reset state) ----

  [[nodiscard]] double dist(NodeId n) const {
    return fresh(n) ? dist_[n.value()] : kInfiniteDistance;
  }
  [[nodiscard]] EdgeId parent_edge(NodeId n) const {
    return fresh(n) ? parent_[n.value()] : EdgeId::invalid();
  }
  [[nodiscard]] bool settled(NodeId n) const { return fresh(n) && settled_[n.value()] != 0; }
  [[nodiscard]] bool reached(NodeId n) const { return dist(n) < kInfiniteDistance; }

  void set_label(NodeId n, double dist, EdgeId parent) {
    const auto i = n.value();
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      settled_[i] = 0;
    }
    dist_[i] = dist;
    parent_[i] = parent;
  }

  /// Marks `n` settled; false when it already was (lazy heap deletion).
  bool try_settle(NodeId n) {
    const auto i = n.value();
    if (stamp_[i] == epoch_ && settled_[i] != 0) return false;
    if (stamp_[i] != epoch_) stamp_[i] = epoch_;
    settled_[i] = 1;
    return true;
  }

  // --- heap (min by (key, node id); see determinism note above) --------

  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }
  [[nodiscard]] double heap_top_key() const {
    return heap_.empty() ? kInfiniteDistance : heap_.front().key;
  }
  void heap_push(double key, NodeId node);
  HeapEntry heap_pop();

  Stats last;

 private:
  [[nodiscard]] bool fresh(NodeId n) const { return stamp_[n.value()] == epoch_; }

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;
  std::vector<double> dist_;
  std::vector<EdgeId> parent_;
  std::vector<std::uint8_t> settled_;
  std::vector<HeapEntry> heap_;
};

/// Per-thread scratch workspaces, created on first use and reused for the
/// thread's lifetime (one set per pool worker; no sharing, no locking).
/// Slot 0 is the primary search space (point queries, spur searches);
/// slot 1 holds longer-lived state a primary search reads concurrently
/// (reverse shortest-path trees, the backward frontier).  Any search using
/// a slot invalidates its previous contents.
inline constexpr std::size_t kThreadSearchSpaces = 2;
SearchSpace& thread_search_space(std::size_t slot = 0);

}  // namespace mts
