// Directed graph with planar node coordinates.
//
// The street network is a directed multigraph: intersections are nodes with
// (x, y) positions in meters (local projection), road segments are directed
// edges.  Construction is two-phase: add nodes/edges, then finalize() builds
// compact CSR adjacency (both out- and in-) for traversal.  Edge attributes
// (length, speed, lanes, ...) live in parallel arrays owned by higher layers
// (see osm::RoadNetwork), keeping this class a pure topology container.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/strong_id.hpp"

namespace mts {

class DiGraph {
 public:
  DiGraph() = default;

  /// Creates a node at (x, y) meters; returns its dense id.
  NodeId add_node(double x = 0.0, double y = 0.0);

  /// Creates a directed edge u -> v; returns its dense id.  Parallel edges
  /// and self-loops are permitted (OSM produces both).
  EdgeId add_edge(NodeId u, NodeId v);

  /// Builds CSR adjacency.  Must be called after the last add_*; adding
  /// more elements afterwards resets the graph to un-finalized.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] std::size_t num_nodes() const { return xs_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return heads_.size(); }

  [[nodiscard]] IdRange<NodeId> nodes() const {
    return {0, static_cast<std::uint32_t>(num_nodes())};
  }
  [[nodiscard]] IdRange<EdgeId> edges() const {
    return {0, static_cast<std::uint32_t>(num_edges())};
  }

  [[nodiscard]] NodeId edge_from(EdgeId e) const { return tails_[e.value()]; }
  [[nodiscard]] NodeId edge_to(EdgeId e) const { return heads_[e.value()]; }

  [[nodiscard]] double x(NodeId n) const { return xs_[n.value()]; }
  [[nodiscard]] double y(NodeId n) const { return ys_[n.value()]; }
  void set_position(NodeId n, double x, double y);

  /// Outgoing edge ids of `n`.  Requires finalized().
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const;
  /// Incoming edge ids of `n`.  Requires finalized().
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const;

  [[nodiscard]] std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }

  /// Average of (in-degree + out-degree) over nodes, i.e. 2|E|/|V| — the
  /// quantity the paper's Table I calls "Avg. Node Degree".
  [[nodiscard]] double average_degree() const;

  /// Finds an edge v -> u given edge u -> v from the same construction
  /// batch (the "reverse twin" of a two-way street), or invalid() if none.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  /// Euclidean distance between two nodes' positions, meters.
  [[nodiscard]] double node_distance(NodeId a, NodeId b) const;

  /// Validates structural invariants: parallel arrays sized consistently,
  /// endpoints in range, coordinates finite, and (when finalized) CSR
  /// offsets monotone with every edge appearing exactly once in its tail's
  /// out-bucket and its head's in-bucket.  Throws InvariantViolation on the
  /// first violation.  Cheap enough for tests; hot paths invoke it through
  /// MTS_DCHECK_INVARIANTS so release builds pay nothing.
  void check_invariants() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<NodeId> tails_;
  std::vector<NodeId> heads_;

  // CSR adjacency: edge ids grouped by tail (out) / head (in).
  std::vector<std::uint32_t> out_offsets_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<std::uint32_t> in_offsets_;
  std::vector<EdgeId> in_edge_ids_;
  bool finalized_ = false;
};

}  // namespace mts
