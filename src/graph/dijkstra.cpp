#include "graph/dijkstra.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/check.hpp"
#include "core/error.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

struct DijkstraCounters {
  obs::CounterId runs;
  obs::CounterId settled;
  obs::CounterId scanned;
  obs::CounterId reuses;

  static const DijkstraCounters& get() {
    static const DijkstraCounters counters{
        obs::MetricsRegistry::instance().counter("dijkstra.runs"),
        obs::MetricsRegistry::instance().counter("dijkstra.nodes_settled"),
        obs::MetricsRegistry::instance().counter("dijkstra.edges_scanned"),
        obs::MetricsRegistry::instance().counter("dijkstra.workspace_reuses"),
    };
    return counters;
  }
};

/// Shared label-setting core for the forward and reverse engines.
/// `Reverse` searches over in-edges, producing node -> origin distances.
template <bool Reverse>
void run_search(SearchSpace& ws, const DiGraph& g, std::span<const double> weights,
                NodeId origin, const DijkstraOptions& options, const char* caller) {
  require(g.finalized(), std::string(caller) + ": graph not finalized");
  require(origin.value() < g.num_nodes(), std::string(caller) + ": source out of range");
  if (options.assume_valid_weights) {
    MTS_DCHECK_EQ(weights.size(), g.num_edges());
  } else {
    validate_weights(g, weights, caller);
  }
  require(options.goal_bounds != &ws,
          std::string(caller) + ": goal_bounds must be a different workspace");
  MTS_DCHECK(options.goal_bounds != nullptr || options.prune_bound == kInfiniteDistance);

  obs::ScopedPhase phase("dijkstra");
  if (ws.begin(g.num_nodes())) obs::add(DijkstraCounters::get().reuses);
  std::uint64_t settled_count = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t bound_pruned = 0;

  const auto* banned = options.banned_nodes;
  if (banned != nullptr) {
    require(banned->size() == g.num_nodes(), std::string(caller) + ": ban mask size mismatch");
  }

  const SearchSpace* bounds = options.goal_bounds;
  // Pad the bound so float summation-order slack can never prune a label
  // the exact search would have kept (same 1e-9 relative margin the
  // oracle's tie_epsilon uses).
  const double padded_bound =
      options.prune_bound == kInfiniteDistance
          ? kInfiniteDistance
          : options.prune_bound + 1e-9 * (1.0 + std::abs(options.prune_bound));

  if (banned == nullptr || !(*banned)[origin.value()]) {
    ws.set_label(origin, 0.0, EdgeId::invalid());
    ws.heap_push(0.0, origin);
  }

  while (!ws.heap_empty()) {
    const auto [dist, node] = ws.heap_pop();
    if (!ws.try_settle(node)) continue;  // lazy deletion
    ++settled_count;
    if (node == options.target) break;

    const auto edges = Reverse ? g.in_edges(node) : g.out_edges(node);
    if (options.budget != nullptr) {
      options.budget->charge_edges_scanned(edges.size());
    }
    for (EdgeId e : edges) {
      ++edges_scanned;
      if (!edge_alive(options.filter, e)) continue;
      const NodeId head = Reverse ? g.edge_from(e) : g.edge_to(e);
      if (ws.settled(head)) continue;
      if (banned != nullptr && (*banned)[head.value()]) continue;
      const double w = weights[e.value()];
      MTS_DCHECK_GE(w, 0.0);  // hoisted require: see validate_weights()
      const double candidate = dist + w;
      MTS_DCHECK_GE(candidate, dist);  // settled labels only ever grow
      if (bounds != nullptr) {
        const double lower = bounds->dist(head);
        if (lower == kInfiniteDistance) continue;  // cannot reach the target
        if (candidate + lower > padded_bound) {    // cannot matter
          ++bound_pruned;
          continue;
        }
      }
      if (candidate < ws.dist(head)) {
        ws.set_label(head, candidate, e);
        ws.heap_push(candidate, head);
      }
    }
  }

  ws.last = {settled_count, edges_scanned, bound_pruned};
  if (options.trace != nullptr) {
    ++options.trace->dijkstra_runs;
    options.trace->nodes_settled += settled_count;
    options.trace->edges_scanned += edges_scanned;
  }
  const auto& counters = DijkstraCounters::get();
  obs::add(counters.runs);
  obs::add(counters.settled, settled_count);
  obs::add(counters.scanned, edges_scanned);
}

}  // namespace

void validate_weights(const DiGraph& g, std::span<const double> weights, const char* caller) {
  require(weights.size() == g.num_edges(), std::string(caller) + ": weight vector size mismatch");
  bool all_non_negative = true;
  for (const double w : weights) {
    // !(w >= 0) also catches NaN.
    all_non_negative = all_non_negative && w >= 0.0;
  }
  require(all_non_negative, std::string(caller) + ": negative edge weight");
}

void dijkstra(SearchSpace& ws, const DiGraph& g, std::span<const double> weights,
              NodeId source, const DijkstraOptions& options) {
  run_search<false>(ws, g, weights, source, options, "dijkstra");
}

void reverse_dijkstra(SearchSpace& ws, const DiGraph& g, std::span<const double> weights,
                      NodeId sink, const DijkstraOptions& options) {
  MTS_DCHECK(!options.target.valid());
  MTS_DCHECK(options.goal_bounds == nullptr);
  run_search<true>(ws, g, weights, sink, options, "reverse_dijkstra");
}

ShortestPathTree dijkstra(const DiGraph& g, std::span<const double> weights, NodeId source,
                          const DijkstraOptions& options) {
  SearchSpace& ws = thread_search_space();
  dijkstra(ws, g, weights, source, options);
  ShortestPathTree tree;
  const std::size_t n = g.num_nodes();
  tree.dist.resize(n);
  tree.parent_edge.resize(n);
  for (NodeId node : g.nodes()) {
    tree.dist[node.value()] = ws.dist(node);
    tree.parent_edge[node.value()] = ws.parent_edge(node);
  }
  return tree;
}

namespace {

/// Walks parent edges from `target` back to `source` over any label lookup.
template <typename ParentOf>
std::optional<Path> trace_back(const DiGraph& g, NodeId source, NodeId target, double length,
                               const ParentOf& parent_of) {
  Path path;
  path.length = length;
  NodeId cursor = target;
  while (cursor != source) {
    const EdgeId e = parent_of(cursor);
    if (!e.valid()) return std::nullopt;  // tree truncated before source
    path.edges.push_back(e);
    cursor = g.edge_from(e);
  }
  std::reverse(path.edges.begin(), path.edges.end());
  MTS_DCHECK(path.edges.empty() || g.edge_from(path.edges.front()) == source);
  return path;
}

}  // namespace

std::optional<Path> extract_path(const DiGraph& g, const ShortestPathTree& tree,
                                 NodeId source, NodeId target) {
  if (!tree.reached(target)) return std::nullopt;
  return trace_back(g, source, target, tree.dist[target.value()],
                    [&tree](NodeId n) { return tree.parent_edge[n.value()]; });
}

std::optional<Path> extract_path(const DiGraph& g, const SearchSpace& ws,
                                 NodeId source, NodeId target) {
  if (!ws.reached(target)) return std::nullopt;
  return trace_back(g, source, target, ws.dist(target),
                    [&ws](NodeId n) { return ws.parent_edge(n); });
}

std::optional<Path> extract_reverse_path(const DiGraph& g, const SearchSpace& ws,
                                         std::span<const double> weights, NodeId source,
                                         NodeId target) {
  if (!ws.reached(source)) return std::nullopt;
  Path path;
  double length = 0.0;
  NodeId cursor = source;
  while (cursor != target) {
    const EdgeId e = ws.parent_edge(cursor);
    if (!e.valid()) return std::nullopt;
    path.edges.push_back(e);
    length += weights[e.value()];
    cursor = g.edge_to(e);
  }
  path.length = length;
  MTS_DCHECK(path.edges.empty() || g.edge_from(path.edges.front()) == source);
  return path;
}

std::optional<Path> shortest_path(const DiGraph& g, std::span<const double> weights,
                                  NodeId source, NodeId target, const EdgeFilter* filter) {
  DijkstraOptions options;
  options.target = target;
  options.filter = filter;
  SearchSpace& ws = thread_search_space();
  dijkstra(ws, g, weights, source, options);
  return extract_path(g, ws, source, target);
}

double shortest_distance(const DiGraph& g, std::span<const double> weights, NodeId source,
                         NodeId target, const EdgeFilter* filter) {
  DijkstraOptions options;
  options.target = target;
  options.filter = filter;
  SearchSpace& ws = thread_search_space();
  dijkstra(ws, g, weights, source, options);
  require(target.value() < g.num_nodes(), "shortest_distance: target out of range");
  return ws.dist(target);
}

}  // namespace mts
