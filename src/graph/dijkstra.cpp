#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

#include "core/check.hpp"
#include "core/error.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  friend bool operator<(const QueueEntry& a, const QueueEntry& b) {
    return a.dist > b.dist;  // min-heap via std::priority_queue
  }
};

}  // namespace

ShortestPathTree dijkstra(const DiGraph& g, std::span<const double> weights, NodeId source,
                          const DijkstraOptions& options) {
  require(g.finalized(), "dijkstra: graph not finalized");
  require(weights.size() == g.num_edges(), "dijkstra: weight vector size mismatch");
  require(source.value() < g.num_nodes(), "dijkstra: source out of range");

  obs::ScopedPhase phase("dijkstra");
  std::uint64_t settled_count = 0;
  std::uint64_t edges_scanned = 0;

  ShortestPathTree tree;
  tree.dist.assign(g.num_nodes(), kInfiniteDistance);
  tree.parent_edge.assign(g.num_nodes(), EdgeId::invalid());

  const auto* banned = options.banned_nodes;
  if (banned != nullptr) {
    require(banned->size() == g.num_nodes(), "dijkstra: ban mask size mismatch");
    if ((*banned)[source.value()]) return tree;
  }

  std::priority_queue<QueueEntry> queue;
  tree.dist[source.value()] = 0.0;
  queue.push({0.0, source});

  std::vector<std::uint8_t> settled(g.num_nodes(), 0);

  while (!queue.empty()) {
    const auto [dist, node] = queue.top();
    queue.pop();
    if (settled[node.value()]) continue;  // lazy deletion
    settled[node.value()] = 1;
    ++settled_count;
    if (node == options.target) break;

    for (EdgeId e : g.out_edges(node)) {
      ++edges_scanned;
      if (!edge_alive(options.filter, e)) continue;
      const NodeId head = g.edge_to(e);
      if (settled[head.value()]) continue;
      if (banned != nullptr && (*banned)[head.value()]) continue;
      const double w = weights[e.value()];
      require(w >= 0.0, "dijkstra: negative edge weight");
      const double candidate = dist + w;
      MTS_DCHECK_GE(candidate, dist);  // settled labels only ever grow
      if (candidate < tree.dist[head.value()]) {
        tree.dist[head.value()] = candidate;
        tree.parent_edge[head.value()] = e;
        queue.push({candidate, head});
      }
    }
  }

  static const obs::CounterId kRuns = obs::MetricsRegistry::instance().counter("dijkstra.runs");
  static const obs::CounterId kSettled =
      obs::MetricsRegistry::instance().counter("dijkstra.nodes_settled");
  static const obs::CounterId kScanned =
      obs::MetricsRegistry::instance().counter("dijkstra.edges_scanned");
  obs::add(kRuns);
  obs::add(kSettled, settled_count);
  obs::add(kScanned, edges_scanned);
  return tree;
}

std::optional<Path> extract_path(const DiGraph& g, const ShortestPathTree& tree,
                                 NodeId source, NodeId target) {
  if (!tree.reached(target)) return std::nullopt;
  Path path;
  path.length = tree.dist[target.value()];
  NodeId cursor = target;
  while (cursor != source) {
    const EdgeId e = tree.parent_edge[cursor.value()];
    if (!e.valid()) return std::nullopt;  // tree truncated before source
    path.edges.push_back(e);
    cursor = g.edge_from(e);
  }
  std::reverse(path.edges.begin(), path.edges.end());
  MTS_DCHECK(path.edges.empty() || g.edge_from(path.edges.front()) == source);
  return path;
}

std::optional<Path> shortest_path(const DiGraph& g, std::span<const double> weights,
                                  NodeId source, NodeId target, const EdgeFilter* filter) {
  DijkstraOptions options;
  options.target = target;
  options.filter = filter;
  const auto tree = dijkstra(g, weights, source, options);
  return extract_path(g, tree, source, target);
}

double shortest_distance(const DiGraph& g, std::span<const double> weights, NodeId source,
                         NodeId target, const EdgeFilter* filter) {
  DijkstraOptions options;
  options.target = target;
  options.filter = filter;
  return dijkstra(g, weights, source, options).dist[target.value()];
}

}  // namespace mts
