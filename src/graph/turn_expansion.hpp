// Turn-aware routing via edge-based graph expansion.
//
// Real navigation distinguishes turns: U-turns are usually illegal,
// left turns across traffic cost extra time.  The standard technique is
// the edge-based (line) graph: expanded nodes are the original directed
// edges, expanded arcs are permitted turns, weighted by the head edge's
// traversal weight plus a turn penalty.  Attacks computed on turn-aware
// routes block the roads a turn-respecting victim would actually drive.
#pragma once

#include <functional>
#include <optional>

#include "graph/dijkstra.hpp"

namespace mts {

/// Classification of the turn from edge `in` to edge `out` at their
/// shared node, by the signed angle between the segments (degrees in
/// (-180, 180]; 0 = straight, positive = left in a y-up plane).
enum class TurnKind { Straight, Left, Right, UTurn };

/// Computes the turn kind from node coordinates (thresholds: |angle| <= 30
/// straight, >= 150 U-turn, sign decides left/right otherwise).
TurnKind classify_turn(const DiGraph& g, EdgeId in, EdgeId out);

/// Per-turn cost: return the penalty (same unit as edge weights) or
/// nullopt to forbid the turn entirely.
using TurnPenaltyFn = std::function<std::optional<double>(EdgeId in, EdgeId out)>;

/// A ready-made policy: forbid U-turns, charge `left_penalty` for left
/// turns (seconds make sense with TIME weights), everything else free.
TurnPenaltyFn standard_turn_policy(const DiGraph& g, double left_penalty = 8.0);

/// Turn-aware router over the expanded graph.
class TurnAwareRouter {
 public:
  /// Builds the expansion of finalized `g` under `weights` and `policy`.
  TurnAwareRouter(const DiGraph& g, std::span<const double> weights,
                  const TurnPenaltyFn& policy);

  /// Cheapest source -> target path where consecutive-edge turns respect
  /// the policy; length includes turn penalties.  nullopt when no
  /// policy-respecting path exists (even if an unrestricted one does).
  [[nodiscard]] std::optional<Path> shortest_path(NodeId source, NodeId target) const;

  [[nodiscard]] std::size_t num_expanded_nodes() const { return expanded_.num_nodes(); }
  [[nodiscard]] std::size_t num_turn_arcs() const { return expanded_.num_edges(); }

 private:
  const DiGraph& g_;
  std::span<const double> weights_;
  DiGraph expanded_;                 // expanded node i = original edge i
  std::vector<double> arc_weights_;  // per expanded arc: penalty + head edge
};

}  // namespace mts
