// Dinic max-flow / min-cut.
//
// Supports the paper's §II-A partition objective: isolating a target area
// (e.g. the blocks around a hospital) with a minimum-cost set of road
// closures is exactly a min s-t cut with capacities equal to removal costs.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace mts {

struct MaxFlowResult {
  double flow = 0.0;
  /// Graph edges saturated across the source-side/sink-side frontier:
  /// a minimum cut whose capacity equals `flow`.
  std::vector<EdgeId> cut_edges;
  /// Per-node mask: 1 if on the source side of the cut.
  std::vector<std::uint8_t> source_side;
};

/// Max flow from `source` to `sink` with per-edge `capacities` (>= 0).
/// Multi-source/multi-sink problems are expressed by adding super nodes to
/// the graph before calling (see attack/area_isolation).
MaxFlowResult max_flow(const DiGraph& g, std::span<const double> capacities, NodeId source,
                       NodeId sink);

}  // namespace mts
