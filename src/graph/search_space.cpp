#include "graph/search_space.hpp"

#include <algorithm>
#include <array>

#include "core/check.hpp"

namespace mts {

namespace {

/// Heap order: true when `a` pops after `b`.  (key, node id) is a total
/// order, so pop order does not depend on push order — required for the
/// pruning-invariance argument in DESIGN.md §9.
bool entry_after(const SearchSpace::HeapEntry& a, const SearchSpace::HeapEntry& b) {
  if (a.key != b.key) return a.key > b.key;
  return a.node.value() > b.node.value();
}

}  // namespace

bool SearchSpace::begin(std::size_t num_nodes) {
  heap_.clear();
  last = {};
  const bool grew = num_nodes > stamp_.size();
  if (grew) {
    stamp_.resize(num_nodes, 0);
    dist_.resize(num_nodes, kInfiniteDistance);
    parent_.resize(num_nodes, EdgeId::invalid());
    settled_.resize(num_nodes, 0);
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Stamp wraparound: a stale stamp could alias the restarted epoch
    // counter, so pay one full clear every 2^32 searches.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  return !grew;
}

void SearchSpace::heap_push(double key, NodeId node) {
  heap_.push_back({key, node});
  std::push_heap(heap_.begin(), heap_.end(), entry_after);
}

SearchSpace::HeapEntry SearchSpace::heap_pop() {
  MTS_DCHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), entry_after);
  const HeapEntry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

SearchSpace& thread_search_space(std::size_t slot) {
  MTS_DCHECK_LT(slot, kThreadSearchSpaces);
  thread_local std::array<SearchSpace, kThreadSearchSpaces> spaces;
  return spaces[slot];
}

}  // namespace mts
