// Bidirectional Dijkstra point-to-point queries.
//
// Searches forward from the source and backward (over in-edges) from the
// target simultaneously; terminates when the frontiers certify the best
// meeting point.  Settles far fewer nodes than one-sided Dijkstra on
// metro-scale networks, which matters for the attacker's inner loop
// (thousands of oracle queries per attack plan).
#pragma once

#include "graph/dijkstra.hpp"

namespace mts {

struct BidirectionalResult {
  std::optional<Path> path;
  std::size_t nodes_settled = 0;  // both directions combined
};

/// Shortest source->target path; exact (same result as Dijkstra).
/// Weights are validated once at entry; `banned_nodes` mirrors
/// DijkstraOptions::banned_nodes (a banned endpoint means no path).  Uses
/// both of the calling thread's SearchSpace slots (one per direction).
BidirectionalResult bidirectional_shortest_path(const DiGraph& g,
                                                std::span<const double> weights,
                                                NodeId source, NodeId target,
                                                const EdgeFilter* filter = nullptr,
                                                const std::vector<std::uint8_t>* banned_nodes = nullptr);

}  // namespace mts
