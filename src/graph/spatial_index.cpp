#include "graph/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace mts {

namespace {

double point_distance(double x1, double y1, double x2, double y2) {
  return std::hypot(x1 - x2, y1 - y2);
}

struct SegmentProjectionXY {
  double distance;
  double t;
  double x, y;
};

SegmentProjectionXY project(double px, double py, const IndexedSegment& s) {
  const double dx = s.x2 - s.x1;
  const double dy = s.y2 - s.y1;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp(((px - s.x1) * dx + (py - s.y1) * dy) / len2, 0.0, 1.0);
  }
  const double cx = s.x1 + t * dx;
  const double cy = s.y1 + t * dy;
  return {point_distance(px, py, cx, cy), t, cx, cy};
}

}  // namespace

// ---- PointGrid --------------------------------------------------------------

PointGrid::PointGrid(std::vector<IndexedPoint> points, double cell_size)
    : points_(std::move(points)), cell_size_(cell_size) {
  require(cell_size > 0.0, "PointGrid: cell size must be positive");
  if (points_.empty()) {
    cols_ = rows_ = 0;
    return;
  }
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = max_x;
  min_x_ = min_y_ = std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cols_ = static_cast<long>((max_x - min_x_) / cell_size_) + 1;
  rows_ = static_cast<long>((max_y - min_y_) / cell_size_) + 1;

  // Counting sort by cell id.
  const std::size_t num_cells = static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  std::vector<std::uint32_t> counts(num_cells + 1, 0);
  auto cell_of = [&](const IndexedPoint& p) {
    return static_cast<std::size_t>(cell_y(p.y)) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(cell_x(p.x));
  };
  for (const auto& p : points_) ++counts[cell_of(p) + 1];
  for (std::size_t i = 1; i <= num_cells; ++i) counts[i] += counts[i - 1];
  std::vector<IndexedPoint> sorted(points_.size());
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (const auto& p : points_) sorted[cursor[cell_of(p)]++] = p;
  points_ = std::move(sorted);

  ranges_.resize(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i) ranges_[i] = {counts[i], counts[i + 1]};
}

long PointGrid::cell_x(double x) const {
  return std::clamp(static_cast<long>((x - min_x_) / cell_size_), 0L, cols_ - 1);
}
long PointGrid::cell_y(double y) const {
  return std::clamp(static_cast<long>((y - min_y_) / cell_size_), 0L, rows_ - 1);
}

const PointGrid::CellRange* PointGrid::cell(long cx, long cy) const {
  if (cx < 0 || cx >= cols_ || cy < 0 || cy >= rows_) return nullptr;
  return &ranges_[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
                  static_cast<std::size_t>(cx)];
}

std::optional<std::uint32_t> PointGrid::nearest(double x, double y) const {
  if (points_.empty()) return std::nullopt;
  const long cx = cell_x(x);
  const long cy = cell_y(y);

  std::optional<std::uint32_t> best_id;
  double best = std::numeric_limits<double>::infinity();
  const long max_ring = std::max(cols_, rows_);
  for (long ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is found, one extra ring certifies exactness
    // (anything outside is at least (ring-1)*cell away).
    if (best_id && static_cast<double>(ring - 1) * cell_size_ > best) break;
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring boundary only
        const CellRange* range = cell(cx + dx, cy + dy);
        if (range == nullptr) continue;
        for (std::uint32_t i = range->begin; i < range->end; ++i) {
          const double dist = point_distance(x, y, points_[i].x, points_[i].y);
          if (dist < best) {
            best = dist;
            best_id = points_[i].id;
          }
        }
      }
    }
  }
  return best_id;
}

std::vector<std::uint32_t> PointGrid::within(double x, double y, double radius) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || radius < 0.0) return out;
  const long lo_x = cell_x(x - radius);
  const long hi_x = cell_x(x + radius);
  const long lo_y = cell_y(y - radius);
  const long hi_y = cell_y(y + radius);
  for (long cy = lo_y; cy <= hi_y; ++cy) {
    for (long cx = lo_x; cx <= hi_x; ++cx) {
      const CellRange* range = cell(cx, cy);
      if (range == nullptr) continue;
      for (std::uint32_t i = range->begin; i < range->end; ++i) {
        if (point_distance(x, y, points_[i].x, points_[i].y) <= radius) {
          out.push_back(points_[i].id);
        }
      }
    }
  }
  return out;
}

// ---- SegmentGrid ------------------------------------------------------------

SegmentGrid::SegmentGrid(std::vector<IndexedSegment> segments, double cell_size)
    : segments_(std::move(segments)), cell_size_(cell_size) {
  require(cell_size > 0.0, "SegmentGrid: cell size must be positive");
  if (segments_.empty()) {
    cols_ = rows_ = 0;
    return;
  }
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = max_x;
  min_x_ = min_y_ = std::numeric_limits<double>::infinity();
  for (const auto& s : segments_) {
    min_x_ = std::min({min_x_, s.x1, s.x2});
    min_y_ = std::min({min_y_, s.y1, s.y2});
    max_x = std::max({max_x, s.x1, s.x2});
    max_y = std::max({max_y, s.y1, s.y2});
  }
  cols_ = static_cast<long>((max_x - min_x_) / cell_size_) + 1;
  rows_ = static_cast<long>((max_y - min_y_) / cell_size_) + 1;
  cells_.resize(static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_));

  for (std::uint32_t idx = 0; idx < segments_.size(); ++idx) {
    const auto& s = segments_[idx];
    const long lo_x = cell_x(std::min(s.x1, s.x2));
    const long hi_x = cell_x(std::max(s.x1, s.x2));
    const long lo_y = cell_y(std::min(s.y1, s.y2));
    const long hi_y = cell_y(std::max(s.y1, s.y2));
    for (long cy = lo_y; cy <= hi_y; ++cy) {
      for (long cx = lo_x; cx <= hi_x; ++cx) {
        cells_[static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(cx)]
            .push_back(idx);
      }
    }
  }
}

long SegmentGrid::cell_x(double x) const {
  return std::clamp(static_cast<long>((x - min_x_) / cell_size_), 0L, cols_ - 1);
}
long SegmentGrid::cell_y(double y) const {
  return std::clamp(static_cast<long>((y - min_y_) / cell_size_), 0L, rows_ - 1);
}

std::optional<SegmentGrid::Hit> SegmentGrid::nearest(double x, double y) const {
  if (segments_.empty()) return std::nullopt;
  const long cx = cell_x(x);
  const long cy = cell_y(y);

  std::optional<Hit> best;
  const long max_ring = std::max(cols_, rows_);
  for (long ring = 0; ring <= max_ring; ++ring) {
    if (best && static_cast<double>(ring - 1) * cell_size_ > best->distance) break;
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const long gx = cx + dx;
        const long gy = cy + dy;
        if (gx < 0 || gx >= cols_ || gy < 0 || gy >= rows_) continue;
        for (std::uint32_t idx : cells_[static_cast<std::size_t>(gy) *
                                            static_cast<std::size_t>(cols_) +
                                        static_cast<std::size_t>(gx)]) {
          const auto proj = project(x, y, segments_[idx]);
          if (!best || proj.distance < best->distance) {
            best = Hit{segments_[idx].id, proj.distance, proj.t, proj.x, proj.y};
          }
        }
      }
    }
  }
  return best;
}

}  // namespace mts
