#include "graph/betweenness.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "graph/dijkstra.hpp"

namespace mts {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  friend bool operator<(const QueueEntry& a, const QueueEntry& b) {
    return a.dist > b.dist;
  }
};

/// Accumulates Brandes dependencies from one source into edge and/or node
/// scores.  Weighted variant: predecessor DAG built by Dijkstra with
/// epsilon-tolerant tie detection.
void accumulate_from_source(const DiGraph& g, std::span<const double> weights,
                            const EdgeFilter* filter, NodeId source,
                            std::vector<double>* edge_score,
                            std::vector<double>* node_score) {
  const std::size_t n = g.num_nodes();
  std::vector<double> dist(n, kInfiniteDistance);
  std::vector<double> sigma(n, 0.0);            // # shortest paths
  std::vector<std::vector<EdgeId>> preds(n);    // predecessor edges
  std::vector<NodeId> settle_order;
  settle_order.reserve(n);
  std::vector<std::uint8_t> settled(n, 0);

  std::priority_queue<QueueEntry> queue;
  dist[source.value()] = 0.0;
  sigma[source.value()] = 1.0;
  queue.push({0.0, source});

  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (settled[node.value()]) continue;
    settled[node.value()] = 1;
    settle_order.push_back(node);
    for (EdgeId e : g.out_edges(node)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId head = g.edge_to(e);
      if (settled[head.value()]) continue;
      const double candidate = d + weights[e.value()];
      const double eps = 1e-12 * (1.0 + std::abs(candidate));
      if (candidate < dist[head.value()] - eps) {
        dist[head.value()] = candidate;
        sigma[head.value()] = sigma[node.value()];
        preds[head.value()].assign(1, e);
        queue.push({candidate, head});
      } else if (candidate <= dist[head.value()] + eps) {
        sigma[head.value()] += sigma[node.value()];
        preds[head.value()].push_back(e);
      }
    }
  }

  // Dependency accumulation in reverse settle order.
  std::vector<double> delta(n, 0.0);
  for (auto it = settle_order.rbegin(); it != settle_order.rend(); ++it) {
    const NodeId w = *it;
    for (EdgeId e : preds[w.value()]) {
      const NodeId v = g.edge_from(e);
      const double share = sigma[v.value()] / sigma[w.value()] * (1.0 + delta[w.value()]);
      if (edge_score != nullptr) (*edge_score)[e.value()] += share;
      delta[v.value()] += share;
    }
    if (node_score != nullptr && w != source) (*node_score)[w.value()] += delta[w.value()];
  }
}

std::vector<NodeId> pick_sources(const DiGraph& g, const BetweennessOptions& options) {
  std::vector<NodeId> sources;
  if (options.pivots == 0 || options.pivots >= g.num_nodes()) {
    sources.reserve(g.num_nodes());
    for (NodeId u : g.nodes()) sources.push_back(u);
    return sources;
  }
  std::vector<NodeId> all;
  all.reserve(g.num_nodes());
  for (NodeId u : g.nodes()) all.push_back(u);
  Rng rng(options.seed);
  rng.shuffle(all);
  all.resize(options.pivots);
  return all;
}

std::vector<double> run(const DiGraph& g, std::span<const double> weights,
                        const BetweennessOptions& options, bool edges) {
  require(g.finalized(), "betweenness: graph not finalized");
  require(weights.size() == g.num_edges(), "betweenness: weight vector size mismatch");

  std::vector<double> edge_score(edges ? g.num_edges() : 0, 0.0);
  std::vector<double> node_score(edges ? 0 : g.num_nodes(), 0.0);
  const auto sources = pick_sources(g, options);
  for (NodeId s : sources) {
    accumulate_from_source(g, weights, options.filter, s,
                           edges ? &edge_score : nullptr, edges ? nullptr : &node_score);
  }

  auto& score = edges ? edge_score : node_score;
  const double n = static_cast<double>(g.num_nodes());
  double factor = 1.0;
  if (!sources.empty() && sources.size() < g.num_nodes()) {
    factor *= n / static_cast<double>(sources.size());  // pivot extrapolation
  }
  if (options.normalize && n > 1.0) factor /= n * (n - 1.0);
  for (double& v : score) v *= factor;
  return score;
}

}  // namespace

std::vector<double> edge_betweenness(const DiGraph& g, std::span<const double> weights,
                                     const BetweennessOptions& options) {
  return run(g, weights, options, /*edges=*/true);
}

std::vector<double> node_betweenness(const DiGraph& g, std::span<const double> weights,
                                     const BetweennessOptions& options) {
  return run(g, weights, options, /*edges=*/false);
}

}  // namespace mts
