// Contraction Hierarchies (Geisberger et al. 2008) for directed graphs.
//
// The paper's threat model assumes victims use production navigation
// ("driving direction applications"), which answer point-to-point queries
// with hierarchical speedup techniques, not textbook Dijkstra.  This CH
// implementation is that substrate: one-time preprocessing contracts nodes
// in importance order, inserting shortcuts that preserve all shortest
// distances; queries run a bidirectional upward search and unpack
// shortcuts back to original edges.  Queries return exactly Dijkstra's
// distances (asserted extensively in tests) while settling far fewer
// nodes.
//
// Production serving (net::QueryEngine) runs queries through a reusable
// ChSearchSpace so the per-query cost is the search itself, not four
// num_nodes-sized allocations.  bounds_to_target() is the PHAST-style
// one-to-all pass (backward upward search + one linear downward sweep)
// that replaces a full reverse Dijkstra when a caller only needs exact
// distance bounds to a target — the attack oracle's constructor is the
// main consumer.
//
// Weights are fixed at build time: CH answers the *victim's* routing
// queries.  The attacker's inner loops (which mutate the graph) keep using
// the filtered Dijkstra/Yen machinery; candidate-cut distance checks go
// through the CCH re-customization path instead (graph/cch.hpp, DESIGN.md
// §14).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/request_trace.hpp"
#include "graph/digraph.hpp"
#include "graph/path.hpp"
#include "graph/search_space.hpp"

namespace mts {

struct ChOptions {
  /// Witness-search limit: settle at most this many nodes per local
  /// search.  Larger = fewer redundant shortcuts, slower preprocessing.
  std::size_t witness_settle_limit = 60;
  /// Hop limit for witness searches (small values are standard).
  std::size_t witness_hop_limit = 16;
};

/// Reusable workspace for CH queries: the bidirectional distance/parent
/// labels (epoch-stamped, reset in O(1)), the shared heap, and the plain
/// one-to-all sweep array PHAST fills.  One per worker thread, never
/// shared — the same ownership contract as SearchSpace.
class ChSearchSpace {
 public:
  /// Starts a new query over `num_nodes` nodes.  Returns true when
  /// existing storage was reused (no allocation happened).
  bool begin(std::size_t num_nodes);

  [[nodiscard]] std::size_t size() const { return dist_f_.size(); }

 private:
  friend class ContractionHierarchy;
  friend class ChTableQuery;
  friend class CchMetric;

  struct Entry {
    double key;
    std::uint32_t node;
    bool forward;
  };

  [[nodiscard]] double dist(std::uint32_t n, bool forward) const {
    const auto& stamp = forward ? stamp_f_ : stamp_b_;
    if (stamp[n] != epoch_) return kInfiniteDistance;
    return forward ? dist_f_[n] : dist_b_[n];
  }
  void set(std::uint32_t n, bool forward, double dist, std::int64_t parent) {
    (forward ? stamp_f_ : stamp_b_)[n] = epoch_;
    (forward ? dist_f_ : dist_b_)[n] = dist;
    (forward ? parent_f_ : parent_b_)[n] = parent;
  }
  [[nodiscard]] std::int64_t parent(std::uint32_t n, bool forward) const {
    const auto& stamp = forward ? stamp_f_ : stamp_b_;
    if (stamp[n] != epoch_) return -1;
    return forward ? parent_f_[n] : parent_b_[n];
  }

  // Heap on a plain vector, min by (key, node, forward) so pop order — and
  // therefore which of several tied meet nodes wins — is a total order
  // independent of heap internals (same determinism contract as
  // SearchSpace).
  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }
  void heap_push(double key, std::uint32_t node, bool forward);
  Entry heap_pop();
  static bool heap_later(const Entry& a, const Entry& b);

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_f_;
  std::vector<std::uint32_t> stamp_b_;
  std::vector<double> dist_f_;
  std::vector<double> dist_b_;
  std::vector<std::int64_t> parent_f_;  // indices into up_arcs_
  std::vector<std::int64_t> parent_b_;  // indices into down_arcs_
  std::vector<Entry> heap_;
  std::vector<double> sweep_;  // PHAST one-to-all labels (plain fill)
};

/// The calling thread's CH workspace (function-local thread_local, created
/// on first use).  Convenience for one-shot callers; serving loops hold
/// their own instance.
ChSearchSpace& thread_ch_search_space();

class ContractionHierarchy {
 public:
  /// Preprocesses `g` under non-negative `weights`.  The graph must be
  /// finalized; it is not retained — the CH is self-contained.
  static ContractionHierarchy build(const DiGraph& g, std::span<const double> weights,
                                    const ChOptions& options = {});

  struct QueryResult {
    std::optional<Path> path;  // original edge ids, shortcut-free
    double distance = 0.0;     // +inf when unreachable
    std::size_t nodes_settled = 0;
  };

  /// Exact point-to-point shortest path.  The workspace overloads reuse
  /// the caller's storage; the plain ones borrow the thread-local one.
  [[nodiscard]] QueryResult query(NodeId source, NodeId target) const;
  [[nodiscard]] QueryResult query(NodeId source, NodeId target, ChSearchSpace& ws,
                                  RequestTrace* trace = nullptr) const;

  /// Distance-only query (skips path unpacking).
  [[nodiscard]] double distance(NodeId source, NodeId target) const;
  [[nodiscard]] double distance(NodeId source, NodeId target, ChSearchSpace& ws,
                                RequestTrace* trace = nullptr) const;

  /// PHAST-style one-to-all: fills `out` with the exact distance from
  /// every node to `target` under the build weights (backward upward
  /// search, then one linear sweep over the up-arcs in descending head
  /// rank).  `out` carries distances only — parents stay invalid — which
  /// is exactly the shape DijkstraOptions::goal_bounds consumes.  Replaces
  /// a full reverse Dijkstra at O(arcs) with no heap on the sweep side.
  void bounds_to_target(NodeId target, ChSearchSpace& ws, SearchSpace& out,
                        RequestTrace* trace = nullptr) const;

  [[nodiscard]] std::size_t num_nodes() const { return rank_.size(); }
  [[nodiscard]] std::size_t num_shortcuts() const { return num_shortcuts_; }
  [[nodiscard]] std::uint32_t rank(NodeId n) const { return rank_[n.value()]; }
  [[nodiscard]] std::span<const std::uint32_t> ranks() const { return rank_; }

 private:
  friend class ChTableQuery;

  ContractionHierarchy() = default;

  /// Shortcut expansion record, indexed by pool arc id: an original edge
  /// (via < 0) or the concatenation of two earlier pool arcs.
  struct PoolRecord {
    std::int32_t via = -1;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t original_edge = 0;
  };

  /// One search-graph arc.  `base` is the node whose adjacency list it
  /// lives in; `other` the node the search relaxes to.  Real direction:
  /// base -> other in the upward graph, other -> base in the reversed
  /// downward graph.
  struct SearchArc {
    std::uint32_t base = 0;
    std::uint32_t other = 0;
    double weight = 0.0;
    std::uint32_t pool_id = 0;
  };

  /// One downward-sweep relaxation: travel arc tail -> head with
  /// rank[tail] < rank[head], stored in descending head-rank order so the
  /// PHAST sweep is a single forward pass (see bounds_to_target).
  struct SweepArc {
    std::uint32_t tail = 0;
    std::uint32_t head = 0;
    double weight = 0.0;
  };

  [[nodiscard]] QueryResult run_query(NodeId source, NodeId target, bool need_path,
                                      ChSearchSpace& ws, RequestTrace* trace) const;
  void unpack(std::uint32_t pool_id, std::vector<EdgeId>& out) const;

  std::vector<std::uint32_t> rank_;
  std::vector<PoolRecord> pool_;
  // Upward graph: arcs (u -> v), rank[u] < rank[v], CSR keyed by u.
  std::vector<SearchArc> up_arcs_;
  std::vector<std::uint32_t> up_offsets_;
  // Reversed downward graph: arcs (u -> v), rank[u] > rank[v], CSR keyed
  // by v (the backward search walks them head-to-tail).
  std::vector<SearchArc> down_arcs_;
  std::vector<std::uint32_t> down_offsets_;
  // The up-arcs again, flattened in descending head-rank order for the
  // PHAST downward sweep.
  std::vector<SweepArc> sweep_arcs_;
  std::size_t num_shortcuts_ = 0;
};

}  // namespace mts
