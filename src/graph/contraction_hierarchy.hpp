// Contraction Hierarchies (Geisberger et al. 2008) for directed graphs.
//
// The paper's threat model assumes victims use production navigation
// ("driving direction applications"), which answer point-to-point queries
// with hierarchical speedup techniques, not textbook Dijkstra.  This CH
// implementation is that substrate: one-time preprocessing contracts nodes
// in importance order, inserting shortcuts that preserve all shortest
// distances; queries run a bidirectional upward search and unpack
// shortcuts back to original edges.  Queries return exactly Dijkstra's
// distances (asserted extensively in tests) while settling far fewer
// nodes.
//
// Weights are fixed at build time: CH answers the *victim's* routing
// queries.  The attacker's inner loops (which mutate the graph) keep using
// the filtered Dijkstra/Yen machinery.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace mts {

struct ChOptions {
  /// Witness-search limit: settle at most this many nodes per local
  /// search.  Larger = fewer redundant shortcuts, slower preprocessing.
  std::size_t witness_settle_limit = 60;
  /// Hop limit for witness searches (small values are standard).
  std::size_t witness_hop_limit = 16;
};

class ContractionHierarchy {
 public:
  /// Preprocesses `g` under non-negative `weights`.  The graph must be
  /// finalized; it is not retained — the CH is self-contained.
  static ContractionHierarchy build(const DiGraph& g, std::span<const double> weights,
                                    const ChOptions& options = {});

  struct QueryResult {
    std::optional<Path> path;  // original edge ids, shortcut-free
    double distance = 0.0;     // +inf when unreachable
    std::size_t nodes_settled = 0;
  };

  /// Exact point-to-point shortest path.
  [[nodiscard]] QueryResult query(NodeId source, NodeId target) const;

  /// Distance-only query (skips path unpacking).
  [[nodiscard]] double distance(NodeId source, NodeId target) const;

  [[nodiscard]] std::size_t num_nodes() const { return rank_.size(); }
  [[nodiscard]] std::size_t num_shortcuts() const { return num_shortcuts_; }
  [[nodiscard]] std::uint32_t rank(NodeId n) const { return rank_[n.value()]; }

 private:
  ContractionHierarchy() = default;

  /// Shortcut expansion record, indexed by pool arc id: an original edge
  /// (via < 0) or the concatenation of two earlier pool arcs.
  struct PoolRecord {
    std::int32_t via = -1;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t original_edge = 0;
  };

  /// One search-graph arc.  `base` is the node whose adjacency list it
  /// lives in; `other` the node the search relaxes to.  Real direction:
  /// base -> other in the upward graph, other -> base in the reversed
  /// downward graph.
  struct SearchArc {
    std::uint32_t base = 0;
    std::uint32_t other = 0;
    double weight = 0.0;
    std::uint32_t pool_id = 0;
  };

  [[nodiscard]] QueryResult run_query(NodeId source, NodeId target, bool need_path) const;
  void unpack(std::uint32_t pool_id, std::vector<EdgeId>& out) const;

  std::vector<std::uint32_t> rank_;
  std::vector<PoolRecord> pool_;
  // Upward graph: arcs (u -> v), rank[u] < rank[v], CSR keyed by u.
  std::vector<SearchArc> up_arcs_;
  std::vector<std::uint32_t> up_offsets_;
  // Reversed downward graph: arcs (u -> v), rank[u] > rank[v], CSR keyed
  // by v (the backward search walks them head-to-tail).
  std::vector<SearchArc> down_arcs_;
  std::vector<std::uint32_t> down_offsets_;
  std::size_t num_shortcuts_ = 0;
};

}  // namespace mts
