#include "graph/ch_assets.hpp"

#include <utility>

#include "core/env.hpp"

namespace mts {

ChAssets ChAssets::build(const DiGraph& g, std::span<const double> weights,
                         const ChOptions& options) {
  ContractionHierarchy ch = ContractionHierarchy::build(g, weights, options);
  CchTopology cch = CchTopology::build(g, ch.ranks());
  return ChAssets{std::move(ch), std::move(cch)};
}

bool ch_enabled() { return env_int("MTS_CH", 1) != 0; }

}  // namespace mts
