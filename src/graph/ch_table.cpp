#include "graph/ch_table.hpp"

#include <limits>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace mts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct TableCounters {
  obs::CounterId tables;
  obs::CounterId settled;

  static const TableCounters& get() {
    static const TableCounters counters{
        obs::MetricsRegistry::instance().counter("ch.table_queries"),
        obs::MetricsRegistry::instance().counter("ch.nodes_settled"),
    };
    return counters;
  }
};

}  // namespace

ChTableQuery::ChTableQuery(const ContractionHierarchy& ch)
    : ch_(&ch), buckets_(ch.num_nodes()) {}

std::vector<double> ChTableQuery::table(std::span<const NodeId> sources,
                                        std::span<const NodeId> targets,
                                        RequestTrace* trace) {
  obs::ScopedPhase obs_phase("ch");
  const std::size_t n = ch_->num_nodes();
  for (NodeId s : sources) require(s.value() < n, "ChTableQuery: source out of range");
  for (NodeId t : targets) require(t.value() < n, "ChTableQuery: target out of range");

  // Clear only the buckets the previous call touched.
  for (std::uint32_t node : touched_) buckets_[node].clear();
  touched_.clear();

  std::uint64_t settled_count = 0;

  // Backward upward search per target: deposit (target-index, distance)
  // at every settled node.  Full drain — upward searches are tiny and the
  // buckets must cover every potential meeting node.
  for (std::size_t j = 0; j < targets.size(); ++j) {
    ws_.begin(n);
    ws_.set(targets[j].value(), false, 0.0, -1);
    ws_.heap_push(0.0, targets[j].value(), false);
    while (!ws_.heap_empty()) {
      const ChSearchSpace::Entry top = ws_.heap_pop();
      if (top.key > ws_.dist(top.node, false)) continue;  // stale
      ++settled_count;
      if (buckets_[top.node].empty()) touched_.push_back(top.node);
      buckets_[top.node].push_back({static_cast<std::uint32_t>(j), top.key});
      for (std::uint32_t i = ch_->down_offsets_[top.node];
           i < ch_->down_offsets_[top.node + 1]; ++i) {
        const ContractionHierarchy::SearchArc& arc = ch_->down_arcs_[i];
        const double candidate = top.key + arc.weight;
        if (candidate < ws_.dist(arc.other, false)) {
          ws_.set(arc.other, false, candidate, -1);
          ws_.heap_push(candidate, arc.other, false);
        }
      }
    }
  }

  // Forward upward search per source: scan buckets at every settled node.
  std::vector<double> result(sources.size() * targets.size(), kInf);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    double* row = result.data() + i * targets.size();
    ws_.begin(n);
    ws_.set(sources[i].value(), true, 0.0, -1);
    ws_.heap_push(0.0, sources[i].value(), true);
    while (!ws_.heap_empty()) {
      const ChSearchSpace::Entry top = ws_.heap_pop();
      if (top.key > ws_.dist(top.node, true)) continue;  // stale
      ++settled_count;
      for (const BucketEntry& entry : buckets_[top.node]) {
        const double through = top.key + entry.dist;
        if (through < row[entry.target_index]) row[entry.target_index] = through;
      }
      for (std::uint32_t a = ch_->up_offsets_[top.node]; a < ch_->up_offsets_[top.node + 1];
           ++a) {
        const ContractionHierarchy::SearchArc& arc = ch_->up_arcs_[a];
        const double candidate = top.key + arc.weight;
        if (candidate < ws_.dist(arc.other, true)) {
          ws_.set(arc.other, true, candidate, -1);
          ws_.heap_push(candidate, arc.other, true);
        }
      }
    }
  }

  const TableCounters& counters = TableCounters::get();
  obs::add(counters.tables);
  obs::add(counters.settled, settled_count);
  if (trace != nullptr) trace->ch_nodes_settled += settled_count;
  return result;
}

}  // namespace mts
