// A* shortest path with admissible geometric heuristics.
//
// The victim's routing engine in a deployed navigation stack would use a
// goal-directed search, not plain Dijkstra.  A* with a Euclidean
// lower-bound heuristic returns *identical* routes (the heuristics below
// are admissible and consistent), just faster — the attack layer's
// conclusions are unchanged, which tests assert explicitly.
#pragma once

#include <functional>

#include "graph/dijkstra.hpp"

namespace mts {

/// Lower-bound estimate of remaining cost from a node to the target.
using Heuristic = std::function<double(NodeId)>;

/// Admissible heuristic for LENGTH weights: straight-line distance.
/// `weight_per_meter` rescales for other metrics (e.g. 1/max_speed for
/// TIME weights); it must satisfy w(e) >= weight_per_meter * euclid(e)
/// for every edge or optimality is lost.
Heuristic euclidean_heuristic(const DiGraph& g, NodeId target, double weight_per_meter = 1.0);

/// The largest admissible weight_per_meter for the given weights: the
/// minimum over edges of weight / euclidean length (infinite-safe).
double max_admissible_rate(const DiGraph& g, std::span<const double> weights);

struct AStarResult {
  std::optional<Path> path;
  std::size_t nodes_settled = 0;  // search effort (vs Dijkstra's)
};

/// A* from source to target.  With the zero heuristic this is exactly
/// early-exit Dijkstra.  Weights are validated once at entry (throws
/// PreconditionViolation on a negative weight anywhere in the vector).
/// `banned_nodes` mirrors DijkstraOptions::banned_nodes.  Runs in the
/// calling thread's SearchSpace slot 0 (see graph/search_space.hpp), so a
/// heuristic may safely read a reverse tree held in slot 1.
AStarResult astar(const DiGraph& g, std::span<const double> weights, NodeId source,
                  NodeId target, const Heuristic& heuristic,
                  const EdgeFilter* filter = nullptr,
                  const std::vector<std::uint8_t>* banned_nodes = nullptr);

}  // namespace mts
