#include "graph/bidirectional.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "core/error.hpp"

namespace mts {

namespace {

/// One search direction's state, living in a thread-local SearchSpace.
struct Frontier {
  SearchSpace& ws;

  Frontier(SearchSpace& space, std::size_t n, NodeId origin) : ws(space) {
    ws.begin(n);
    ws.set_label(origin, 0.0, EdgeId::invalid());
    ws.heap_push(0.0, origin);
  }

  /// Smallest key still queued (possibly a stale lazy-deletion entry —
  /// stale keys only over-estimate, which keeps termination conservative).
  [[nodiscard]] double top_key() const { return ws.heap_top_key(); }
};

}  // namespace

BidirectionalResult bidirectional_shortest_path(const DiGraph& g,
                                                std::span<const double> weights,
                                                NodeId source, NodeId target,
                                                const EdgeFilter* filter,
                                                const std::vector<std::uint8_t>* banned_nodes) {
  require(g.finalized(), "bidirectional: graph not finalized");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "bidirectional: endpoint out of range");
  validate_weights(g, weights, "bidirectional");
  if (banned_nodes != nullptr) {
    require(banned_nodes->size() == g.num_nodes(), "bidirectional: ban mask size mismatch");
  }

  BidirectionalResult result;
  if (source == target) {
    result.path = Path{};
    return result;
  }
  // A banned endpoint matches one-sided Dijkstra: no path.
  if (banned_nodes != nullptr &&
      ((*banned_nodes)[source.value()] || (*banned_nodes)[target.value()])) {
    return result;
  }

  Frontier fwd(thread_search_space(0), g.num_nodes(), source);
  Frontier bwd(thread_search_space(1), g.num_nodes(), target);

  double best = kInfiniteDistance;
  NodeId meet = NodeId::invalid();

  auto try_meet = [&](NodeId n) {
    const double fd = fwd.ws.dist(n);
    const double bd = bwd.ws.dist(n);
    if (fd == kInfiniteDistance || bd == kInfiniteDistance) return;
    const double through = fd + bd;
    if (through < best) {
      best = through;
      meet = n;
    }
  };

  // Alternate expansions; terminate once the sum of frontier keys can no
  // longer beat the best meeting point found.
  while (fwd.top_key() + bwd.top_key() < best) {
    const bool expand_forward = fwd.top_key() <= bwd.top_key();
    Frontier& frontier = expand_forward ? fwd : bwd;

    const NodeId node = frontier.ws.heap_pop().node;
    if (!frontier.ws.try_settle(node)) continue;
    ++result.nodes_settled;

    const auto edges = expand_forward ? g.out_edges(node) : g.in_edges(node);
    const double node_dist = frontier.ws.dist(node);
    for (EdgeId e : edges) {
      if (!edge_alive(filter, e)) continue;
      const NodeId next = expand_forward ? g.edge_to(e) : g.edge_from(e);
      if (banned_nodes != nullptr && (*banned_nodes)[next.value()]) continue;
      const double w = weights[e.value()];
      MTS_DCHECK_GE(w, 0.0);  // hoisted require: see validate_weights()
      const double candidate = node_dist + w;
      if (candidate < frontier.ws.dist(next)) {
        frontier.ws.set_label(next, candidate, e);
        frontier.ws.heap_push(candidate, next);
        try_meet(next);
      }
    }
  }

  if (!meet.valid()) return result;  // disconnected

  Path path;
  path.length = best;
  // Forward half: meet back to source.
  std::vector<EdgeId> forward_half;
  for (NodeId cursor = meet; cursor != source;) {
    const EdgeId e = fwd.ws.parent_edge(cursor);
    forward_half.push_back(e);
    cursor = g.edge_from(e);
  }
  std::reverse(forward_half.begin(), forward_half.end());
  path.edges = std::move(forward_half);
  // Backward half: meet forward to target (parents point away from target).
  for (NodeId cursor = meet; cursor != target;) {
    const EdgeId e = bwd.ws.parent_edge(cursor);
    path.edges.push_back(e);
    cursor = g.edge_to(e);
  }
  result.path = std::move(path);
  return result;
}

}  // namespace mts
