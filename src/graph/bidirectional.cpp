#include "graph/bidirectional.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace mts {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  friend bool operator<(const QueueEntry& a, const QueueEntry& b) {
    return a.dist > b.dist;
  }
};

/// One search direction's state.
struct Frontier {
  std::vector<double> dist;
  std::vector<EdgeId> parent;  // tree edge that reached the node
  std::vector<std::uint8_t> settled;
  std::priority_queue<QueueEntry> queue;

  explicit Frontier(std::size_t n, NodeId origin)
      : dist(n, kInfiniteDistance), parent(n, EdgeId::invalid()), settled(n, 0) {
    dist[origin.value()] = 0.0;
    queue.push({0.0, origin});
  }

  [[nodiscard]] double top_key() const {
    return queue.empty() ? kInfiniteDistance : queue.top().dist;
  }
};

}  // namespace

BidirectionalResult bidirectional_shortest_path(const DiGraph& g,
                                                std::span<const double> weights,
                                                NodeId source, NodeId target,
                                                const EdgeFilter* filter) {
  require(g.finalized(), "bidirectional: graph not finalized");
  require(weights.size() == g.num_edges(), "bidirectional: weights size mismatch");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "bidirectional: endpoint out of range");

  BidirectionalResult result;
  if (source == target) {
    result.path = Path{};
    return result;
  }

  Frontier fwd(g.num_nodes(), source);
  Frontier bwd(g.num_nodes(), target);

  double best = kInfiniteDistance;
  NodeId meet = NodeId::invalid();

  auto try_meet = [&](NodeId n) {
    if (fwd.dist[n.value()] == kInfiniteDistance || bwd.dist[n.value()] == kInfiniteDistance) {
      return;
    }
    const double through = fwd.dist[n.value()] + bwd.dist[n.value()];
    if (through < best) {
      best = through;
      meet = n;
    }
  };

  // Alternate expansions; terminate once the sum of frontier keys can no
  // longer beat the best meeting point found.
  while (fwd.top_key() + bwd.top_key() < best) {
    const bool expand_forward = fwd.top_key() <= bwd.top_key();
    Frontier& frontier = expand_forward ? fwd : bwd;

    const NodeId node = frontier.queue.top().node;
    frontier.queue.pop();
    if (frontier.settled[node.value()]) continue;
    frontier.settled[node.value()] = 1;
    ++result.nodes_settled;

    const auto edges = expand_forward ? g.out_edges(node) : g.in_edges(node);
    for (EdgeId e : edges) {
      if (!edge_alive(filter, e)) continue;
      const NodeId next = expand_forward ? g.edge_to(e) : g.edge_from(e);
      const double w = weights[e.value()];
      require(w >= 0.0, "bidirectional: negative edge weight");
      const double candidate = frontier.dist[node.value()] + w;
      if (candidate < frontier.dist[next.value()]) {
        frontier.dist[next.value()] = candidate;
        frontier.parent[next.value()] = e;
        frontier.queue.push({candidate, next});
        try_meet(next);
      }
    }
  }

  if (!meet.valid()) return result;  // disconnected

  Path path;
  path.length = best;
  // Forward half: meet back to source.
  std::vector<EdgeId> forward_half;
  for (NodeId cursor = meet; cursor != source;) {
    const EdgeId e = fwd.parent[cursor.value()];
    forward_half.push_back(e);
    cursor = g.edge_from(e);
  }
  std::reverse(forward_half.begin(), forward_half.end());
  path.edges = std::move(forward_half);
  // Backward half: meet forward to target (parents point away from target).
  for (NodeId cursor = meet; cursor != target;) {
    const EdgeId e = bwd.parent[cursor.value()];
    path.edges.push_back(e);
    cursor = g.edge_to(e);
  }
  result.path = std::move(path);
  return result;
}

}  // namespace mts
