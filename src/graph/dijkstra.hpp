// Dijkstra shortest paths with edge filtering, early exit, and optional
// goal-directed pruning over a reusable SearchSpace workspace.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/budget.hpp"
#include "core/request_trace.hpp"
#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/path.hpp"
#include "graph/search_space.hpp"

namespace mts {

/// Result of a (possibly truncated) Dijkstra run from one source.
struct ShortestPathTree {
  std::vector<double> dist;        // per node; +inf if unreached
  std::vector<EdgeId> parent_edge; // per node; invalid() at source/unreached

  [[nodiscard]] bool reached(NodeId n) const {
    return dist[n.value()] < kInfiniteDistance;
  }
};

struct DijkstraOptions {
  /// Stop as soon as this node is settled (invalid() = full SSSP).
  NodeId target = NodeId::invalid();
  /// Removed-edge mask (nullptr = none).
  const EdgeFilter* filter = nullptr;
  /// Per-node ban mask sized num_nodes (nullptr = none); banned nodes are
  /// never relaxed.  Used by Yen's spur searches.
  const std::vector<std::uint8_t>* banned_nodes = nullptr;
  /// Reverse shortest-path tree rooted at `target` supplying admissible
  /// lower bounds dist(n -> target) (nullptr = none).  The tree must have
  /// been built under weights <= the search weights and a filter removing
  /// no more edges than the search filter, so its distances never
  /// overestimate.  The search stays settle-by-g Dijkstra; the bounds only
  /// prune relaxations that provably cannot matter (see DESIGN.md §9):
  /// nodes that cannot reach the target at all, and — when `prune_bound`
  /// is finite — labels whose certified total g + bound already exceeds
  /// the bound plus a 1e-9 relative float margin.
  const SearchSpace* goal_bounds = nullptr;
  /// Upper bound on useful source->target lengths (see `goal_bounds`).
  double prune_bound = kInfiniteDistance;
  /// Skip the one-shot validate_weights() pass — the caller already
  /// validated this exact weight vector (e.g. once per Yen query instead
  /// of once per spur search).
  bool assume_valid_weights = false;
  /// Deterministic work budget charged once per settled node with the edges
  /// scanned from it (nullptr = unlimited).  Exceeding the cap throws
  /// BudgetExhausted out of the search; the workspace stays reusable.
  WorkBudget* budget = nullptr;
  /// Per-request work accounting (nullptr = none): the search adds its run
  /// count, settled nodes, and scanned edges on completion.  Purely
  /// observational — never changes the search (core/request_trace.hpp).
  RequestTrace* trace = nullptr;
};

/// One-shot weight validation, hoisted out of the relaxation loops: the
/// vector must have one entry per edge and every weight must be
/// non-negative (NaN rejected).  `caller` prefixes the error message.
void validate_weights(const DiGraph& g, std::span<const double> weights, const char* caller);

/// Runs Dijkstra from `source` into `ws` (previous contents invalidated).
/// Read results via ws.dist()/ws.parent_edge()/extract_path().
void dijkstra(SearchSpace& ws, const DiGraph& g, std::span<const double> weights,
              NodeId source, const DijkstraOptions& options = {});

/// Dijkstra over in-edges: ws.dist(n) becomes the n -> `sink` distance and
/// ws.parent_edge(n) the first edge of an optimal n -> sink path.  Feeds
/// DijkstraOptions::goal_bounds.  `options.target` and `options.goal_bounds`
/// must be unset (a reverse search is always a full SSSP).
void reverse_dijkstra(SearchSpace& ws, const DiGraph& g, std::span<const double> weights,
                      NodeId sink, const DijkstraOptions& options = {});

/// Convenience wrapper: runs in a thread-local workspace and copies the
/// labels out into a standalone tree.
ShortestPathTree dijkstra(const DiGraph& g, std::span<const double> weights, NodeId source,
                          const DijkstraOptions& options = {});

/// Extracts the source->target path from a tree, or nullopt if unreached.
std::optional<Path> extract_path(const DiGraph& g, const ShortestPathTree& tree,
                                 NodeId source, NodeId target);

/// Same, reading a forward search's labels straight from the workspace.
std::optional<Path> extract_path(const DiGraph& g, const SearchSpace& ws,
                                 NodeId source, NodeId target);

/// Extracts the forward source->target path from a *reverse* tree (parents
/// point toward the sink).  `length` is recomputed as the forward-order
/// weight sum so it is bit-identical to what a forward search returns.
std::optional<Path> extract_reverse_path(const DiGraph& g, const SearchSpace& ws,
                                         std::span<const double> weights, NodeId source,
                                         NodeId target);

/// One-shot shortest path query (early-exit Dijkstra + extraction).
std::optional<Path> shortest_path(const DiGraph& g, std::span<const double> weights,
                                  NodeId source, NodeId target,
                                  const EdgeFilter* filter = nullptr);

/// Shortest-path distance only (+inf if unreachable).
double shortest_distance(const DiGraph& g, std::span<const double> weights, NodeId source,
                         NodeId target, const EdgeFilter* filter = nullptr);

}  // namespace mts
