// Dijkstra shortest paths with edge filtering and early exit.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"
#include "graph/path.hpp"

namespace mts {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Result of a (possibly truncated) Dijkstra run from one source.
struct ShortestPathTree {
  std::vector<double> dist;        // per node; +inf if unreached
  std::vector<EdgeId> parent_edge; // per node; invalid() at source/unreached

  [[nodiscard]] bool reached(NodeId n) const {
    return dist[n.value()] < kInfiniteDistance;
  }
};

struct DijkstraOptions {
  /// Stop as soon as this node is settled (invalid() = full SSSP).
  NodeId target = NodeId::invalid();
  /// Removed-edge mask (nullptr = none).
  const EdgeFilter* filter = nullptr;
  /// Per-node ban mask sized num_nodes (nullptr = none); banned nodes are
  /// never relaxed.  Used by Yen's spur searches.
  const std::vector<std::uint8_t>* banned_nodes = nullptr;
};

/// Runs Dijkstra from `source` under non-negative `weights` (one per edge).
/// Throws PreconditionViolation on negative weights detected during
/// traversal or size mismatches.
ShortestPathTree dijkstra(const DiGraph& g, std::span<const double> weights, NodeId source,
                          const DijkstraOptions& options = {});

/// Extracts the source->target path from a tree, or nullopt if unreached.
std::optional<Path> extract_path(const DiGraph& g, const ShortestPathTree& tree,
                                 NodeId source, NodeId target);

/// One-shot shortest path query (early-exit Dijkstra + extraction).
std::optional<Path> shortest_path(const DiGraph& g, std::span<const double> weights,
                                  NodeId source, NodeId target,
                                  const EdgeFilter* filter = nullptr);

/// Shortest-path distance only (+inf if unreachable).
double shortest_distance(const DiGraph& g, std::span<const double> weights, NodeId source,
                         NodeId target, const EdgeFilter* filter = nullptr);

}  // namespace mts
