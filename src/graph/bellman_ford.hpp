// Bellman-Ford SSSP.  Slower than Dijkstra but independent of it; used as
// a cross-check oracle in tests and supports zero-weight cycles gracefully.
#pragma once

#include <span>

#include "graph/dijkstra.hpp"

namespace mts {

/// Runs Bellman-Ford from `source`; weights must be non-negative here as
/// well (road metrics), which guarantees convergence in <= |V| rounds.
ShortestPathTree bellman_ford(const DiGraph& g, std::span<const double> weights,
                              NodeId source, const EdgeFilter* filter = nullptr);

}  // namespace mts
