// The per-(graph, weights) speedup bundle production consumers share.
//
// A ContractionHierarchy answers unmodified-graph queries; the CchTopology
// built over the same contraction order answers masked (candidate-cut)
// queries via cheap re-customization.  They are built together because
// every serving consumer (net::Snapshot, exp::table_runner) needs both:
// the oracle's reverse bounds come off the CH, its certification and the
// verifier's distance checks come off a CchMetric.
//
// ChAssets is immutable after build and shared read-only across worker
// threads; per-worker mutable state (ChSearchSpace, CchMetric) lives with
// the worker.  The `ch` / `cch` members are built from the SAME graph and
// weight vector — a ForcePathCutProblem carrying a ChAssets pointer must
// point at assets built from its own graph+weights (checked by size,
// enforced by contract).
#pragma once

#include <span>

#include "graph/cch.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/digraph.hpp"

namespace mts {

struct ChAssets {
  ContractionHierarchy ch;
  CchTopology cch;

  static ChAssets build(const DiGraph& g, std::span<const double> weights,
                        const ChOptions& options = {});
};

/// The MTS_CH knob (default on): whether CH-backed serving paths are
/// active.  Read once per call site decision point — cheap, not cached,
/// so tests can flip it between snapshots.
[[nodiscard]] bool ch_enabled();

}  // namespace mts
