// Edge removal mask.
//
// Attack algorithms simulate removing road segments.  Rebuilding a graph
// per candidate removal would dominate runtime, so removals are expressed
// as a bitmask consulted by every traversal algorithm.  An unset (default)
// filter removes nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strong_id.hpp"

namespace mts {

class EdgeFilter {
 public:
  EdgeFilter() = default;
  explicit EdgeFilter(std::size_t num_edges) : removed_(num_edges, 0) {}

  [[nodiscard]] std::size_t size() const { return removed_.size(); }

  void remove(EdgeId e) {
    if (!removed_[e.value()]) {
      removed_[e.value()] = 1;
      ++num_removed_;
    }
  }

  void restore(EdgeId e) {
    if (removed_[e.value()]) {
      removed_[e.value()] = 0;
      --num_removed_;
    }
  }

  [[nodiscard]] bool is_removed(EdgeId e) const { return removed_[e.value()] != 0; }
  [[nodiscard]] std::size_t num_removed() const { return num_removed_; }

  void clear() {
    removed_.assign(removed_.size(), 0);
    num_removed_ = 0;
  }

  /// Every currently removed edge, ascending by id.
  [[nodiscard]] std::vector<EdgeId> removed_edges() const {
    std::vector<EdgeId> out;
    out.reserve(num_removed_);
    for (std::size_t e = 0; e < removed_.size(); ++e) {
      if (removed_[e]) out.push_back(EdgeId(static_cast<std::uint32_t>(e)));
    }
    return out;
  }

 private:
  std::vector<std::uint8_t> removed_;
  std::size_t num_removed_ = 0;
};

/// True if `filter` is null or keeps `e`.
inline bool edge_alive(const EdgeFilter* filter, EdgeId e) {
  return filter == nullptr || !filter->is_removed(e);
}

}  // namespace mts
