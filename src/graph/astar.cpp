#include "graph/astar.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/error.hpp"

namespace mts {

Heuristic euclidean_heuristic(const DiGraph& g, NodeId target, double weight_per_meter) {
  const double tx = g.x(target);
  const double ty = g.y(target);
  return [&g, tx, ty, weight_per_meter](NodeId n) {
    return weight_per_meter * std::hypot(g.x(n) - tx, g.y(n) - ty);
  };
}

double max_admissible_rate(const DiGraph& g, std::span<const double> weights) {
  require(weights.size() == g.num_edges(), "max_admissible_rate: weights size mismatch");
  double rate = std::numeric_limits<double>::infinity();
  for (EdgeId e : g.edges()) {
    const double euclid = g.node_distance(g.edge_from(e), g.edge_to(e));
    if (euclid <= 0.0) continue;
    rate = std::min(rate, weights[e.value()] / euclid);
  }
  return std::isfinite(rate) ? rate : 0.0;
}

namespace {

struct QueueEntry {
  double f;  // g + h
  NodeId node;
  friend bool operator<(const QueueEntry& a, const QueueEntry& b) { return a.f > b.f; }
};

}  // namespace

AStarResult astar(const DiGraph& g, std::span<const double> weights, NodeId source,
                  NodeId target, const Heuristic& heuristic, const EdgeFilter* filter) {
  require(g.finalized(), "astar: graph not finalized");
  require(weights.size() == g.num_edges(), "astar: weights size mismatch");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "astar: endpoint out of range");

  std::vector<double> dist(g.num_nodes(), kInfiniteDistance);
  std::vector<EdgeId> parent(g.num_nodes(), EdgeId::invalid());
  std::vector<std::uint8_t> settled(g.num_nodes(), 0);

  std::priority_queue<QueueEntry> queue;
  dist[source.value()] = 0.0;
  queue.push({heuristic(source), source});

  AStarResult result;
  while (!queue.empty()) {
    const NodeId node = queue.top().node;
    queue.pop();
    if (settled[node.value()]) continue;
    settled[node.value()] = 1;
    ++result.nodes_settled;
    if (node == target) break;

    for (EdgeId e : g.out_edges(node)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId head = g.edge_to(e);
      if (settled[head.value()]) continue;
      const double w = weights[e.value()];
      require(w >= 0.0, "astar: negative edge weight");
      const double candidate = dist[node.value()] + w;
      if (candidate < dist[head.value()]) {
        dist[head.value()] = candidate;
        parent[head.value()] = e;
        queue.push({candidate + heuristic(head), head});
      }
    }
  }

  if (dist[target.value()] == kInfiniteDistance) return result;
  Path path;
  path.length = dist[target.value()];
  NodeId cursor = target;
  while (cursor != source) {
    const EdgeId e = parent[cursor.value()];
    path.edges.push_back(e);
    cursor = g.edge_from(e);
  }
  std::reverse(path.edges.begin(), path.edges.end());
  result.path = std::move(path);
  return result;
}

}  // namespace mts
