#include "graph/astar.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "core/error.hpp"

namespace mts {

Heuristic euclidean_heuristic(const DiGraph& g, NodeId target, double weight_per_meter) {
  const double tx = g.x(target);
  const double ty = g.y(target);
  return [&g, tx, ty, weight_per_meter](NodeId n) {
    return weight_per_meter * std::hypot(g.x(n) - tx, g.y(n) - ty);
  };
}

double max_admissible_rate(const DiGraph& g, std::span<const double> weights) {
  require(weights.size() == g.num_edges(), "max_admissible_rate: weights size mismatch");
  double rate = std::numeric_limits<double>::infinity();
  for (EdgeId e : g.edges()) {
    const double euclid = g.node_distance(g.edge_from(e), g.edge_to(e));
    if (euclid <= 0.0) continue;
    rate = std::min(rate, weights[e.value()] / euclid);
  }
  return std::isfinite(rate) ? rate : 0.0;
}

AStarResult astar(const DiGraph& g, std::span<const double> weights, NodeId source,
                  NodeId target, const Heuristic& heuristic, const EdgeFilter* filter,
                  const std::vector<std::uint8_t>* banned_nodes) {
  require(g.finalized(), "astar: graph not finalized");
  require(source.value() < g.num_nodes() && target.value() < g.num_nodes(),
          "astar: endpoint out of range");
  validate_weights(g, weights, "astar");
  if (banned_nodes != nullptr) {
    require(banned_nodes->size() == g.num_nodes(), "astar: ban mask size mismatch");
  }

  // The workspace heap keys hold f = g + h; ws.dist() holds plain g.
  SearchSpace& ws = thread_search_space();
  ws.begin(g.num_nodes());

  AStarResult result;
  if (banned_nodes != nullptr && (*banned_nodes)[source.value()]) return result;
  ws.set_label(source, 0.0, EdgeId::invalid());
  ws.heap_push(heuristic(source), source);

  while (!ws.heap_empty()) {
    const NodeId node = ws.heap_pop().node;
    if (!ws.try_settle(node)) continue;
    ++result.nodes_settled;
    if (node == target) break;

    for (EdgeId e : g.out_edges(node)) {
      if (!edge_alive(filter, e)) continue;
      const NodeId head = g.edge_to(e);
      if (ws.settled(head)) continue;
      if (banned_nodes != nullptr && (*banned_nodes)[head.value()]) continue;
      const double w = weights[e.value()];
      MTS_DCHECK_GE(w, 0.0);  // hoisted require: see validate_weights()
      const double candidate = ws.dist(node) + w;
      if (candidate < ws.dist(head)) {
        ws.set_label(head, candidate, e);
        ws.heap_push(candidate + heuristic(head), head);
      }
    }
  }

  result.path = extract_path(g, ws, source, target);
  return result;
}

}  // namespace mts
