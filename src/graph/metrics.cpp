#include "graph/metrics.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace mts {

double orientation_order(const std::vector<double>& bearings_deg, std::size_t bins) {
  require(bins >= 2, "orientation_order: need at least 2 bins");
  if (bearings_deg.empty()) return 0.0;

  std::vector<double> histogram(bins, 0.0);
  for (double bearing : bearings_deg) {
    double folded = std::fmod(bearing, 90.0);
    if (folded < 0.0) folded += 90.0;
    const auto bin =
        std::min(bins - 1, static_cast<std::size_t>(folded / 90.0 * static_cast<double>(bins)));
    histogram[bin] += 1.0;
  }

  const double total = static_cast<double>(bearings_deg.size());
  double entropy = 0.0;
  for (double count : histogram) {
    if (count <= 0.0) continue;
    const double p = count / total;
    entropy -= p * std::log(p);
  }
  // Perfect grid: all mass in one bin -> entropy 0 -> order 1.
  // Uniform bearings: entropy log(bins) -> order 0.
  const double max_entropy = std::log(static_cast<double>(bins));
  return 1.0 - entropy / max_entropy;
}

NetworkMetrics compute_network_metrics(const DiGraph& g) {
  require(g.finalized(), "compute_network_metrics: graph not finalized");
  NetworkMetrics metrics;
  metrics.num_nodes = g.num_nodes();
  metrics.num_edges = g.num_edges();
  metrics.average_degree = g.average_degree();

  std::vector<double> bearings;
  bearings.reserve(g.num_edges());
  double total_length = 0.0;
  for (EdgeId e : g.edges()) {
    const NodeId u = g.edge_from(e);
    const NodeId v = g.edge_to(e);
    const double dx = g.x(v) - g.x(u);
    const double dy = g.y(v) - g.y(u);
    const double len = std::sqrt(dx * dx + dy * dy);
    total_length += len;
    if (len > 1e-9) {
      bearings.push_back(std::atan2(dy, dx) * 180.0 / std::numbers::pi);
    }
  }
  metrics.mean_segment_length =
      g.num_edges() > 0 ? total_length / static_cast<double>(g.num_edges()) : 0.0;

  std::vector<double> histogram_input = bearings;
  metrics.orientation_order = orientation_order(histogram_input);
  // Entropy in nats for reference (same fold/binning as the order score).
  metrics.orientation_entropy =
      (1.0 - metrics.orientation_order) * std::log(18.0);

  std::size_t four_way = 0;
  std::size_t intersections = 0;
  for (NodeId n : g.nodes()) {
    // Count distinct physical neighbors (in or out), so two-way streets
    // are not double counted.
    std::vector<std::uint32_t> neighbors;
    for (EdgeId e : g.out_edges(n)) neighbors.push_back(g.edge_to(e).value());
    for (EdgeId e : g.in_edges(n)) neighbors.push_back(g.edge_from(e).value());
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
    if (neighbors.size() >= 3) {
      ++intersections;
      if (neighbors.size() == 4) ++four_way;
    }
  }
  metrics.four_way_share =
      intersections > 0 ? static_cast<double>(four_way) / static_cast<double>(intersections)
                        : 0.0;
  return metrics;
}

}  // namespace mts
