// Reachability and strongly connected components.
//
// City generators keep only the largest SCC so every sampled (source,
// hospital) pair is mutually routable, matching the OSMnx preprocessing
// the paper relies on.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"

namespace mts {

/// Per-node mask of nodes reachable from `source` along alive edges.
std::vector<std::uint8_t> reachable_from(const DiGraph& g, NodeId source,
                                         const EdgeFilter* filter = nullptr);

/// True if `target` is reachable from `source`.
bool is_reachable(const DiGraph& g, NodeId source, NodeId target,
                  const EdgeFilter* filter = nullptr);

struct SccResult {
  std::vector<std::uint32_t> component;  // per node, dense component ids
  std::size_t num_components = 0;

  /// Id of a component with the most nodes.
  [[nodiscard]] std::uint32_t largest() const;
  /// Size of each component.
  [[nodiscard]] std::vector<std::size_t> sizes() const;
};

/// Tarjan's strongly connected components (iterative).
SccResult strongly_connected_components(const DiGraph& g, const EdgeFilter* filter = nullptr);

}  // namespace mts
