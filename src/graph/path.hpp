// Simple directed paths expressed as edge sequences.
#pragma once

#include <span>
#include <vector>

#include "core/strong_id.hpp"
#include "graph/digraph.hpp"

namespace mts {

/// A directed path: consecutive edges where edge_to(edges[i]) ==
/// edge_from(edges[i+1]).  `length` is the sum of the weights it was found
/// under.  Equality compares edge sequences only (lengths are derived).
struct Path {
  std::vector<EdgeId> edges;
  double length = 0.0;

  [[nodiscard]] bool empty() const { return edges.empty(); }
  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }

  /// Validates that every edge id is in range for `g` and consecutive edges
  /// are contiguous (edge_to(edges[i]) == edge_from(edges[i+1])).  With a
  /// non-empty `weights` vector additionally checks that `length` matches
  /// the recomputed sum to relative tolerance.  Throws InvariantViolation.
  void check_invariants(const DiGraph& g, std::span<const double> weights = {}) const;

  friend bool operator==(const Path& a, const Path& b) { return a.edges == b.edges; }
};

/// Sum of `weights` over `edges`.
double path_length(std::span<const EdgeId> edges, std::span<const double> weights);

/// The node sequence visited by `path` (size = edges + 1; empty for an
/// empty path).
std::vector<NodeId> path_nodes(const DiGraph& g, const Path& path);

/// Validates edge connectivity, endpoints, and node-simplicity.
bool is_simple_path(const DiGraph& g, const Path& path, NodeId source, NodeId target);

/// Recomputes `path.length` under a different weight vector.
Path reweight_path(Path path, std::span<const double> weights);

/// Order-independent 64-bit signature of the edge sequence, for candidate
/// de-duplication in Yen's algorithm.
std::uint64_t path_signature(const Path& path);

}  // namespace mts
