// Brandes' algorithm for (edge) betweenness centrality on weighted digraphs.
//
// The paper's attacker model (§II-A) performs topological analysis to find
// critical roads via their edge betweenness — the fraction of all-pairs
// shortest paths passing through each road segment.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/edge_filter.hpp"

namespace mts {

struct BetweennessOptions {
  /// If non-zero, sample this many source pivots instead of all nodes
  /// (estimates scale as n/pivots; results stay comparable across edges).
  std::size_t pivots = 0;
  /// Seed for pivot sampling.
  std::uint64_t seed = 1;
  /// Removed-edge mask.
  const EdgeFilter* filter = nullptr;
  /// If true, divide by n*(n-1) to get the fraction-of-pairs normalization
  /// used in the paper's definition.
  bool normalize = true;
};

/// Edge betweenness centrality (one value per edge).
std::vector<double> edge_betweenness(const DiGraph& g, std::span<const double> weights,
                                     const BetweennessOptions& options = {});

/// Node betweenness centrality (one value per node; endpoints excluded).
std::vector<double> node_betweenness(const DiGraph& g, std::span<const double> weights,
                                     const BetweennessOptions& options = {});

}  // namespace mts
