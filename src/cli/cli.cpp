#include "cli/cli.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <optional>
#include <ostream>
#include <string_view>

#include "attack/algorithms.hpp"
#include "attack/area_isolation.hpp"
#include "attack/interdiction.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/budget.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "exp/json_report.hpp"
#include "exp/obs_flush.hpp"
#include "exp/scenario.hpp"
#include "graph/metrics.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/snapshot.hpp"
#include "obs/metrics.hpp"
#include "osm/xml.hpp"
#include "viz/geojson.hpp"
#include "viz/svg.hpp"

namespace mts::cli {

namespace {

/// Flag map: "--key value" pairs after the subcommand.  Every subcommand
/// declares the flags it accepts; an unknown or mistyped flag is rejected
/// with the exact offending token instead of silently parsing as its
/// default (`mts attack --algoritm greedy-edge` used to run the default
/// algorithm without a word of complaint).
class Flags {
 public:
  Flags(const std::vector<std::string>& args, std::size_t start, const char* command,
        std::initializer_list<std::string_view> allowed) {
    for (std::size_t i = start; i < args.size(); i += 2) {
      if (args[i].rfind("--", 0) != 0 || i + 1 >= args.size()) {
        throw InvalidInput("expected --flag value pairs, got '" + args[i] + "'");
      }
      const std::string key = args[i].substr(2);
      bool known = false;
      for (const std::string_view candidate : allowed) known = known || candidate == key;
      if (!known) {
        std::string message =
            "unknown flag '" + args[i] + "' for '" + command + "' (allowed:";
        for (const std::string_view candidate : allowed) {
          message += " --";
          message += candidate;
        }
        message += ')';
        throw InvalidInput(message);
      }
      if (!values_.emplace(key, args[i + 1]).second) {
        throw InvalidInput("duplicate flag '" + args[i] + "'");
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::string require_flag(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw InvalidInput("missing required flag --" + key);
    return it->second;
  }
  /// Numeric getters reject anything but a fully-consumed literal, so
  /// "--seed 7x" or "--budget ten" fail with the flag name instead of a
  /// bare std::stod exception.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != it->second.size()) {
      throw InvalidInput("--" + key + " expects a number, got '" + it->second + "'");
    }
    return parsed;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    long parsed = 0;
    try {
      parsed = std::stol(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != it->second.size()) {
      throw InvalidInput("--" + key + " expects an integer, got '" + it->second + "'");
    }
    return parsed;
  }

 private:
  std::map<std::string, std::string> values_;
};

citygen::City parse_city(const std::string& name) {
  if (name == "boston") return citygen::City::Boston;
  if (name == "sf" || name == "san-francisco") return citygen::City::SanFrancisco;
  if (name == "chicago") return citygen::City::Chicago;
  if (name == "la" || name == "los-angeles") return citygen::City::LosAngeles;
  throw InvalidInput("unknown city '" + name + "' (boston|sf|chicago|la)");
}

attack::Algorithm parse_algorithm(const std::string& name) {
  if (name == "lp-pathcover") return attack::Algorithm::LpPathCover;
  if (name == "greedy-pathcover") return attack::Algorithm::GreedyPathCover;
  if (name == "greedy-edge") return attack::Algorithm::GreedyEdge;
  if (name == "greedy-eig") return attack::Algorithm::GreedyEig;
  throw InvalidInput("unknown algorithm '" + name +
                     "' (lp-pathcover|greedy-pathcover|greedy-edge|greedy-eig)");
}

attack::WeightType parse_weight(const std::string& name) {
  if (name == "time") return attack::WeightType::Time;
  if (name == "length") return attack::WeightType::Length;
  throw InvalidInput("unknown weight '" + name + "' (time|length)");
}

attack::CostType parse_cost(const std::string& name) {
  if (name == "uniform") return attack::CostType::Uniform;
  if (name == "lanes") return attack::CostType::Lanes;
  if (name == "width") return attack::CostType::Width;
  throw InvalidInput("unknown cost '" + name + "' (uniform|lanes|width)");
}

/// Shared semantic checks; each throws InvalidInput naming the flag.
std::uint64_t parse_seed(const Flags& flags) {
  const long seed = flags.get_int("seed", 7);
  if (seed < 0) throw InvalidInput("--seed must be >= 0");
  return static_cast<std::uint64_t>(seed);
}

double parse_budget(const Flags& flags, double fallback) {
  const double budget = flags.get_double("budget", fallback);
  if (!(budget > 0.0)) throw InvalidInput("--budget must be positive");
  return budget;
}

osm::RoadNetwork load_network(const Flags& flags) {
  const std::string path = flags.require_flag("osm");
  return osm::RoadNetwork::build(osm::load_osm_xml(path));
}

/// Hospital POI index by name, or the first hospital when unspecified.
std::size_t hospital_index(const osm::RoadNetwork& network, const Flags& flags) {
  require(!network.pois().empty(), "network has no POIs");
  const std::string wanted = flags.get("hospital", "");
  if (wanted.empty()) return 0;
  for (std::size_t i = 0; i < network.pois().size(); ++i) {
    if (network.pois()[i].name == wanted) return i;
  }
  throw InvalidInput("hospital '" + wanted + "' not found in the network");
}

int cmd_generate(const Flags& flags, std::ostream& out) {
  const auto city = parse_city(flags.get("city", "boston"));
  const double scale = flags.get_double("scale", 1.0);
  if (!(scale > 0.0)) throw InvalidInput("--scale must be positive");
  const auto spec = citygen::city_spec(city, scale);
  const auto data = citygen::generate_city_osm(spec, parse_seed(flags));
  const std::string path = flags.require_flag("out");
  osm::save_osm_xml(data, path);
  out << "wrote " << data.nodes.size() << " nodes, " << data.ways.size() << " ways to "
      << path << "\n";
  return 0;
}

int cmd_info(const Flags& flags, std::ostream& out) {
  const auto network = load_network(flags);
  const auto metrics = compute_network_metrics(network.graph());
  Table table("Network info", {"Metric", "Value"});
  table.add_row({"Intersections (graph nodes)", std::to_string(metrics.num_nodes)});
  table.add_row({"Directed road segments", std::to_string(metrics.num_edges)});
  table.add_row({"Average node degree", format_fixed(metrics.average_degree, 2)});
  table.add_row({"Orientation order (1 = grid)", format_fixed(metrics.orientation_order, 3)});
  table.add_row({"4-way intersection share", format_fixed(metrics.four_way_share, 3)});
  table.add_row({"Mean segment length (m)", format_fixed(metrics.mean_segment_length, 1)});
  table.render_text(out);
  out << "POIs:\n";
  for (const auto& poi : network.pois()) {
    out << "  - " << poi.name << " (" << poi.amenity << ")\n";
  }
  return 0;
}

int cmd_attack(const Flags& flags, std::ostream& out, std::ostream& err) {
  // Enable tracing before any instrumented work runs so the dump below
  // covers scenario sampling and the attack itself.
  const std::string trace_base = flags.get("trace", "");
  if (!trace_base.empty()) obs::set_trace_enabled(true);
  const auto network = load_network(flags);
  const auto weights = attack::make_weights(network, parse_weight(flags.get("weight", "time")));
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "uniform")));
  const auto algorithm = parse_algorithm(flags.get("algorithm", "greedy-pathcover"));

  Rng rng(parse_seed(flags));
  exp::ScenarioOptions options;
  options.path_rank = static_cast<int>(flags.get_int("rank", 100));
  if (options.path_rank < 1) throw InvalidInput("--rank must be >= 1");
  const auto scenario =
      exp::sample_scenario(network, weights, hospital_index(network, flags), rng, options);
  if (!scenario) {
    err << "error: could not sample a scenario (try a smaller --rank)\n";
    return 1;
  }

  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;
  problem.budget = parse_budget(flags, problem.budget);

  const auto result = run_attack(algorithm, problem);
  out << "status: " << to_string(result.status) << "\n"
      << "victim: random intersection -> " << scenario->hospital << "\n"
      << "forced path rank " << options.path_rank << ": "
      << format_fixed(scenario->p_star_length, 1) << " (fastest "
      << format_fixed(scenario->shortest_length, 1) << ")\n"
      << "removed " << result.num_removed() << " segments, cost "
      << format_fixed(result.total_cost, 2) << ", computed in "
      << format_fixed(result.seconds * 1000, 1) << " ms\n";
  for (EdgeId e : result.removed_edges) {
    const auto& name = network.segment_name(e);
    out << "  - block " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  if (!trace_base.empty()) {
    exp::save_observability(trace_base);
    out << "wrote " << trace_base << "_metrics.json and " << trace_base << "_trace.json\n";
  }
  if (result.status != attack::AttackStatus::Success) return 1;

  const auto verdict = attack::verify_attack(problem, result.removed_edges);
  out << "verified exclusive shortest: " << (verdict.ok ? "yes" : verdict.reason) << "\n";

  const std::string svg = flags.get("svg", "");
  if (!svg.empty()) {
    viz::save_attack_svg(svg, network, problem.p_star, result.removed_edges, problem.source,
                         problem.target);
    out << "wrote " << svg << "\n";
  }
  const std::string geojson = flags.get("geojson", "");
  if (!geojson.empty()) {
    viz::save_attack_geojson(geojson, network, problem.p_star, result.removed_edges,
                             problem.source, problem.target);
    out << "wrote " << geojson << "\n";
  }
  return verdict.ok ? 0 : 1;
}

int cmd_isolate(const Flags& flags, std::ostream& out) {
  const auto network = load_network(flags);
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "lanes")));
  const auto& poi = network.pois()[hospital_index(network, flags)];
  const double radius = flags.get_double("radius", 400.0);
  if (!(radius > 0.0)) throw InvalidInput("--radius must be positive");
  const auto area = attack::nodes_within_radius(network.graph(), poi.access_node, radius);
  const auto result = attack::isolate_area(network.graph(), costs, area);
  if (!result.feasible) {
    out << "isolation infeasible (area empty or covers the whole city)\n";
    return 1;
  }
  out << "isolating " << result.area_nodes << " intersections around " << poi.name
      << ": block " << result.cut_edges.size() << " segments, cost "
      << format_fixed(result.total_cost, 2) << "\n";
  for (EdgeId e : result.cut_edges) {
    const auto& name = network.segment_name(e);
    out << "  - block " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  return 0;
}

int cmd_interdict(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto network = load_network(flags);
  const auto weights = attack::make_weights(network, parse_weight(flags.get("weight", "time")));
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "uniform")));
  const auto& poi = network.pois()[hospital_index(network, flags)];

  Rng rng(parse_seed(flags));
  const auto intersections = network.intersection_nodes();
  const NodeId source = intersections[rng.uniform_index(intersections.size())];
  if (source == poi.node) {
    err << "error: sampled source equals the target\n";
    return 1;
  }
  const auto result = attack::interdict_route(network.graph(), weights, costs, source, poi.node,
                                              parse_budget(flags, 8.0));
  out << "interdiction " << source.value() << " -> " << poi.name << ": baseline "
      << format_fixed(result.baseline_distance, 1) << ", after "
      << result.removed_edges.size() << " closures "
      << format_fixed(result.final_distance, 1) << " (delay factor "
      << format_fixed(result.delay_factor(), 2) << ")\n";
  return 0;
}

// ---- routed / loadgen ------------------------------------------------------

/// Signal-to-serve-loop bridge (function-local static per lint rule
/// no-mutable-global).  The handler only stores into a lock-free atomic;
/// the accept loop polls it every 200 ms.
std::atomic<bool>& routed_stop_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void handle_stop_signal(int) { routed_stop_flag().store(true); }

net::WeightKind parse_wire_weight(const std::string& name) {
  if (name == "time") return net::WeightKind::Time;
  if (name == "length") return net::WeightKind::Length;
  throw InvalidInput("unknown weight '" + name + "' (time|length)");
}

/// Client-side port resolution: --port-file (written by `mts routed`),
/// else --port, else MTS_PORT.  `require_positive` demands a concrete port
/// (the client side; the server accepts 0 = ephemeral and treats
/// --port-file as its *output*).
std::uint16_t resolve_port(const Flags& flags, bool require_positive) {
  long port = flags.get_int("port", env_int("MTS_PORT", 0));
  if (require_positive) {
    const std::string port_file = flags.get("port-file", "");
    if (!port_file.empty()) {
      std::ifstream file(port_file);
      if (!(file >> port)) {
        throw InvalidInput("--port-file " + port_file + " is unreadable or not a port number");
      }
    }
  }
  if (port < 0 || port > 65535 || (require_positive && port == 0)) {
    throw InvalidInput("--port must be in [" + std::string(require_positive ? "1" : "0") +
                       ", 65535], got " + std::to_string(port));
  }
  return static_cast<std::uint16_t>(port);
}

/// Overload knobs parse strictly: a typo like MTS_DEADLINE_MS=nope must
/// abort, not silently serve with the protection off — that is exactly
/// the run where the operator wanted it on.  The shared env_int /
/// env_double helpers deliberately fall back on unparseable input
/// (tuning knobs such as MTS_SCALE tolerate that); these do not.
/// Unset or empty still means 0 = off.
std::size_t strict_env_count(const char* name) {
  const char* raw = env_raw(name);
  if (raw == nullptr || *raw == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE || parsed < 0) {
    throw InvalidInput(std::string(name) + " must be >= 0, got '" + raw + "'");
  }
  return static_cast<std::size_t>(parsed);
}

double strict_env_millis(const char* name) {
  const char* raw = env_raw(name);
  if (raw == nullptr || *raw == '\0') return 0.0;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE || !(parsed >= 0.0)) {
    throw InvalidInput(std::string(name) + " must be >= 0 (milliseconds), got '" + raw + "'");
  }
  return parsed;
}

int cmd_routed(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string obs_base = flags.get("obs", "");
  if (!obs_base.empty()) obs::set_metrics_enabled(true);

  net::RoutedOptions options;
  options.host = flags.get("host", "127.0.0.1");
  options.port = resolve_port(flags, /*require_positive=*/false);
  const long threads = flags.get_int("threads", 0);
  if (threads < 0) throw InvalidInput("--threads must be >= 0");
  options.threads = static_cast<std::size_t>(threads);
  const std::string budget_spec = flags.get("budget", "");
  options.request_budget =
      budget_spec.empty() ? WorkBudget::from_environment() : WorkBudget::parse(budget_spec);

  // MTS_SLOWLOG is a millisecond threshold; unset or 0 keeps the log off
  // (and then --slowlog only picks the file name nothing is written to).
  const double slowlog_ms = env_double("MTS_SLOWLOG", 0.0);
  if (slowlog_ms < 0.0) throw InvalidInput("MTS_SLOWLOG must be >= 0 (milliseconds)");
  options.slowlog_threshold_s = slowlog_ms / 1000.0;
  options.slowlog_path = flags.get("slowlog", options.slowlog_path);

  // Overload knobs (DESIGN.md §15); each defaults to 0 = off, so an
  // unconfigured daemon behaves byte-for-byte like the pre-overload one.
  options.max_inflight = strict_env_count("MTS_MAX_INFLIGHT");
  options.max_queue = strict_env_count("MTS_MAX_QUEUE");
  options.deadline_s = strict_env_millis("MTS_DEADLINE_MS") / 1000.0;
  options.write_timeout_s = strict_env_millis("MTS_WRITE_TIMEOUT_MS") / 1000.0;

  // MTS_METRICS_INTERVAL (seconds) arms the periodic snapshot flusher; it
  // implies metrics recording, since an all-zero artifact helps nobody.
  const double metrics_interval_s = env_double("MTS_METRICS_INTERVAL", 0.0);
  if (metrics_interval_s < 0.0) {
    throw InvalidInput("MTS_METRICS_INTERVAL must be >= 0 (seconds)");
  }
  std::optional<exp::PeriodicMetricsFlusher> flusher;
  if (metrics_interval_s > 0.0) {
    obs::set_metrics_enabled(true);
    flusher.emplace(obs_base.empty() ? "routed" : obs_base, metrics_interval_s);
  }

  const net::Snapshot snapshot = net::Snapshot::load(flags.require_flag("osm"));
  net::RoutedServer server(snapshot, options);
  server.start();

  const std::string port_file = flags.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream file(port_file);
    require(file.good(), "cannot write --port-file " + port_file);
    file << server.port() << "\n";
  }
  err << "[routed] serving " << snapshot.num_nodes() << " nodes / " << snapshot.num_edges()
      << " edges on " << options.host << ":" << server.port() << "\n";

  routed_stop_flag().store(false);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  if (flusher) flusher->start();
  server.serve(&routed_stop_flag());
  if (flusher) flusher->stop();  // final flush covers the whole run

  const net::RoutedStats stats = server.stats();
  out << "routed: connections=" << stats.connections << " requests=" << stats.requests
      << " ok=" << stats.responses_ok << " errors=" << stats.responses_error
      << " protocol_errors=" << stats.protocol_errors << " shed=" << stats.shed
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " slow_client_disconnects=" << stats.slow_client_disconnects << "\n";
  if (!obs_base.empty()) exp::save_observability(obs_base);
  return 0;
}

int cmd_stats(const Flags& flags, std::ostream& out) {
  const std::string host = flags.get("host", "127.0.0.1");
  const std::uint16_t port = resolve_port(flags, /*require_positive=*/true);
  net::Request request;
  request.verb = net::Verb::Stats;
  request.id = 1;
  const net::Response response = net::request_once(host, port, request);
  if (!response.ok) throw Error("stats request failed: " + response.error);
  for (const auto& [key, value] : response.fields) out << key << "=" << value << "\n";
  return 0;
}

int cmd_loadgen(const Flags& flags, std::ostream& out) {
  const std::string obs_base = flags.get("obs", "");
  if (!obs_base.empty()) obs::set_metrics_enabled(true);

  net::LoadgenOptions options;
  const long requests = flags.get_int("requests", 1000);
  if (requests < 1) throw InvalidInput("--requests must be >= 1");
  options.requests = static_cast<std::uint64_t>(requests);
  const long connections = flags.get_int("connections", 4);
  if (connections < 1) throw InvalidInput("--connections must be >= 1");
  options.connections = static_cast<std::size_t>(connections);
  const long window = flags.get_int("window", 16);
  if (window < 1) throw InvalidInput("--window must be >= 1");
  options.window = static_cast<std::size_t>(window);
  options.seed = parse_seed(flags);
  options.mix = net::parse_mix(flags.get("mix", "route"));
  options.weight = parse_wire_weight(flags.get("weight", "time"));
  const long k = flags.get_int("k", 4);
  if (k < 1 || k > static_cast<long>(net::kMaxAlternatives)) {
    throw InvalidInput("--k must be in [1, " + std::to_string(net::kMaxAlternatives) + "]");
  }
  options.kalt_k = static_cast<std::uint32_t>(k);
  const long rank = flags.get_int("rank", 8);
  if (rank < 1 || rank > static_cast<long>(net::kMaxPathRank)) {
    throw InvalidInput("--rank must be in [1, " + std::to_string(net::kMaxPathRank) + "]");
  }
  options.attack_rank = static_cast<std::uint32_t>(rank);
  options.dump_path = flags.get("dump", "");
  const long retries = flags.get_int("retries", 0);
  if (retries < 0) throw InvalidInput("--retries must be >= 0");
  options.retry_limit = static_cast<std::uint32_t>(retries);
  const long reconnects = flags.get_int("reconnects", 0);
  if (reconnects < 0) throw InvalidInput("--reconnects must be >= 0");
  options.max_reconnects = static_cast<std::size_t>(reconnects);
  const long require_zero_drops = flags.get_int("require-zero-drops", 0);
  if (require_zero_drops != 0 && require_zero_drops != 1) {
    throw InvalidInput("--require-zero-drops must be 0 or 1");
  }

  const std::string host = flags.get("host", "127.0.0.1");
  const std::uint16_t port = resolve_port(flags, /*require_positive=*/true);
  const net::LoadReport report = net::run_loadgen(host, port, options);

  out << "loadgen: sent=" << report.sent << " completed=" << report.completed
      << " ok=" << report.ok << " errors=" << report.errors << " dropped=" << report.dropped
      << " retried=" << report.retried << " reconnects=" << report.reconnects << "\n";
  if (report.partial) {
    out << "partial: latency percentiles cover completed requests only ("
        << report.dropped << " dropped, " << report.failed_connections
        << " dead connection(s))\n";
  }
  out << "latency_ms: p50=" << format_fixed(report.p50_s * 1e3, 3)
      << " p99=" << format_fixed(report.p99_s * 1e3, 3)
      << " mean=" << format_fixed(report.mean_s * 1e3, 3)
      << " max=" << format_fixed(report.max_s * 1e3, 3)
      << " wall_s=" << format_fixed(report.wall_s, 3) << " qps=" << format_fixed(report.qps, 1)
      << "\n";
  if (report.failed_connections > 0) {
    out << "failures: " << report.failed_connections
        << " connection(s) died (first: " << report.first_failure << ")\n";
  }
  // The server-side view of the same run: windowed p50/p99 printed next to
  // the client percentiles above.  Best-effort — the daemon may already be
  // draining, and a missing snapshot should not fail the load result.
  try {
    net::Request stats_request;
    stats_request.verb = net::Verb::Stats;
    stats_request.id = options.requests + 1;
    const net::Response stats = net::request_once(host, port, stats_request);
    if (stats.ok) {
      out << "server stats:\n";
      for (const auto& [key, value] : stats.fields) out << "  " << key << "=" << value << "\n";
    }
  } catch (const std::exception& ex) {
    out << "server stats unavailable: " << ex.what() << "\n";
  }
  if (!obs_base.empty()) exp::save_observability(obs_base);
  // A partial replay is a reportable outcome, not automatically a failure:
  // the report says so and percentiles are flagged.  CI smoke legs opt into
  // strictness with --require-zero-drops 1.
  if (require_zero_drops != 0 && report.partial) return 1;
  return 0;
}

}  // namespace

std::string usage() {
  return "usage: mts <command> [--flag value ...]\n"
         "commands:\n"
         "  generate   --city boston|sf|chicago|la --scale S --seed N --out FILE.osm\n"
         "  info       --osm FILE.osm\n"
         "  attack     --osm FILE.osm [--hospital NAME] [--algorithm ALG] [--weight W]\n"
         "             [--cost C] [--rank K] [--seed N] [--budget B] [--svg F] [--geojson F]\n"
         "             [--trace BASE]  (writes BASE_metrics.json + BASE_trace.json)\n"
         "  isolate    --osm FILE.osm [--hospital NAME] [--radius M] [--cost C]\n"
         "  interdict  --osm FILE.osm [--hospital NAME] [--budget B] [--weight W] [--cost C]\n"
         "  routed     --osm FILE.osm [--host H] [--port P] [--port-file F] [--threads N]\n"
         "             [--budget edges=N,pivots=N,spurs=N] [--obs BASE] [--slowlog FILE]\n"
         "             serves route/kalt/table/attack/stats queries; SIGINT/SIGTERM\n"
         "             drains and exits.  MTS_SLOWLOG=<ms> arms the slow-query log,\n"
         "             MTS_METRICS_INTERVAL=<s> the periodic metrics flush.  Overload\n"
         "             knobs: MTS_MAX_INFLIGHT / MTS_MAX_QUEUE (admission control),\n"
         "             MTS_DEADLINE_MS (per-request deadline), MTS_WRITE_TIMEOUT_MS\n"
         "             (slow-client eviction); all default off\n"
         "  stats      --port P | --port-file F [--host H]\n"
         "             prints a live daemon's stats snapshot, one key=value per line\n"
         "  loadgen    --port P | --port-file F [--host H] [--requests N] [--connections C]\n"
         "             [--window W] [--seed N] [--mix route|kalt|attack|table|mixed] [--k K]\n"
         "             [--rank R] [--weight W] [--obs BASE] [--dump FILE] [--retries N]\n"
         "             [--reconnects N] [--require-zero-drops 0|1]\n"
         "             --dump writes raw response lines sorted by id (A/B parity diffs);\n"
         "             --retries re-sends overloaded/deadline-exceeded answers,\n"
         "             --reconnects redials dead connections with deterministic backoff,\n"
         "             --require-zero-drops 1 exits 1 on any drop or dead connection\n"
         "  help\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out << usage();
      return args.empty() ? 1 : 0;
    }
    if (args[0] == "generate") {
      return cmd_generate(Flags(args, 1, "generate", {"city", "scale", "seed", "out"}), out);
    }
    if (args[0] == "info") {
      return cmd_info(Flags(args, 1, "info", {"osm"}), out);
    }
    if (args[0] == "attack") {
      return cmd_attack(Flags(args, 1, "attack",
                              {"osm", "hospital", "algorithm", "weight", "cost", "rank", "seed",
                               "budget", "svg", "geojson", "trace"}),
                        out, err);
    }
    if (args[0] == "isolate") {
      return cmd_isolate(Flags(args, 1, "isolate", {"osm", "hospital", "radius", "cost"}), out);
    }
    if (args[0] == "interdict") {
      return cmd_interdict(
          Flags(args, 1, "interdict", {"osm", "hospital", "budget", "weight", "cost", "seed"}),
          out, err);
    }
    if (args[0] == "routed") {
      return cmd_routed(Flags(args, 1, "routed",
                              {"osm", "host", "port", "port-file", "threads", "budget", "obs",
                               "slowlog"}),
                        out, err);
    }
    if (args[0] == "stats") {
      return cmd_stats(Flags(args, 1, "stats", {"host", "port", "port-file"}), out);
    }
    if (args[0] == "loadgen") {
      return cmd_loadgen(Flags(args, 1, "loadgen",
                               {"host", "port", "port-file", "requests", "connections", "window",
                                "seed", "mix", "k", "rank", "weight", "obs", "dump", "retries",
                                "reconnects", "require-zero-drops"}),
                         out);
    }
    err << "error: unknown command '" << args[0] << "'\n" << usage();
    return 1;
  } catch (const std::exception& ex) {
    err << "error: " << ex.what() << "\n";
    return 1;
  }
}

}  // namespace mts::cli
