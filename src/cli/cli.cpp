#include "cli/cli.hpp"

#include <map>
#include <optional>
#include <ostream>

#include "attack/algorithms.hpp"
#include "attack/area_isolation.hpp"
#include "attack/interdiction.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "exp/json_report.hpp"
#include "exp/scenario.hpp"
#include "graph/metrics.hpp"
#include "obs/metrics.hpp"
#include "osm/xml.hpp"
#include "viz/geojson.hpp"
#include "viz/svg.hpp"

namespace mts::cli {

namespace {

/// Flag map: "--key value" pairs after the subcommand.
class Flags {
 public:
  Flags(const std::vector<std::string>& args, std::size_t start) {
    for (std::size_t i = start; i < args.size(); i += 2) {
      if (args[i].rfind("--", 0) != 0 || i + 1 >= args.size()) {
        throw InvalidInput("expected --flag value pairs, got '" + args[i] + "'");
      }
      values_[args[i].substr(2)] = args[i + 1];
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::string require_flag(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw InvalidInput("missing required flag --" + key);
    return it->second;
  }
  /// Numeric getters reject anything but a fully-consumed literal, so
  /// "--seed 7x" or "--budget ten" fail with the flag name instead of a
  /// bare std::stod exception.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != it->second.size()) {
      throw InvalidInput("--" + key + " expects a number, got '" + it->second + "'");
    }
    return parsed;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    long parsed = 0;
    try {
      parsed = std::stol(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != it->second.size()) {
      throw InvalidInput("--" + key + " expects an integer, got '" + it->second + "'");
    }
    return parsed;
  }

 private:
  std::map<std::string, std::string> values_;
};

citygen::City parse_city(const std::string& name) {
  if (name == "boston") return citygen::City::Boston;
  if (name == "sf" || name == "san-francisco") return citygen::City::SanFrancisco;
  if (name == "chicago") return citygen::City::Chicago;
  if (name == "la" || name == "los-angeles") return citygen::City::LosAngeles;
  throw InvalidInput("unknown city '" + name + "' (boston|sf|chicago|la)");
}

attack::Algorithm parse_algorithm(const std::string& name) {
  if (name == "lp-pathcover") return attack::Algorithm::LpPathCover;
  if (name == "greedy-pathcover") return attack::Algorithm::GreedyPathCover;
  if (name == "greedy-edge") return attack::Algorithm::GreedyEdge;
  if (name == "greedy-eig") return attack::Algorithm::GreedyEig;
  throw InvalidInput("unknown algorithm '" + name +
                     "' (lp-pathcover|greedy-pathcover|greedy-edge|greedy-eig)");
}

attack::WeightType parse_weight(const std::string& name) {
  if (name == "time") return attack::WeightType::Time;
  if (name == "length") return attack::WeightType::Length;
  throw InvalidInput("unknown weight '" + name + "' (time|length)");
}

attack::CostType parse_cost(const std::string& name) {
  if (name == "uniform") return attack::CostType::Uniform;
  if (name == "lanes") return attack::CostType::Lanes;
  if (name == "width") return attack::CostType::Width;
  throw InvalidInput("unknown cost '" + name + "' (uniform|lanes|width)");
}

/// Shared semantic checks; each throws InvalidInput naming the flag.
std::uint64_t parse_seed(const Flags& flags) {
  const long seed = flags.get_int("seed", 7);
  if (seed < 0) throw InvalidInput("--seed must be >= 0");
  return static_cast<std::uint64_t>(seed);
}

double parse_budget(const Flags& flags, double fallback) {
  const double budget = flags.get_double("budget", fallback);
  if (!(budget > 0.0)) throw InvalidInput("--budget must be positive");
  return budget;
}

osm::RoadNetwork load_network(const Flags& flags) {
  const std::string path = flags.require_flag("osm");
  return osm::RoadNetwork::build(osm::load_osm_xml(path));
}

/// Hospital POI index by name, or the first hospital when unspecified.
std::size_t hospital_index(const osm::RoadNetwork& network, const Flags& flags) {
  require(!network.pois().empty(), "network has no POIs");
  const std::string wanted = flags.get("hospital", "");
  if (wanted.empty()) return 0;
  for (std::size_t i = 0; i < network.pois().size(); ++i) {
    if (network.pois()[i].name == wanted) return i;
  }
  throw InvalidInput("hospital '" + wanted + "' not found in the network");
}

int cmd_generate(const Flags& flags, std::ostream& out) {
  const auto city = parse_city(flags.get("city", "boston"));
  const double scale = flags.get_double("scale", 1.0);
  if (!(scale > 0.0)) throw InvalidInput("--scale must be positive");
  const auto spec = citygen::city_spec(city, scale);
  const auto data = citygen::generate_city_osm(spec, parse_seed(flags));
  const std::string path = flags.require_flag("out");
  osm::save_osm_xml(data, path);
  out << "wrote " << data.nodes.size() << " nodes, " << data.ways.size() << " ways to "
      << path << "\n";
  return 0;
}

int cmd_info(const Flags& flags, std::ostream& out) {
  const auto network = load_network(flags);
  const auto metrics = compute_network_metrics(network.graph());
  Table table("Network info", {"Metric", "Value"});
  table.add_row({"Intersections (graph nodes)", std::to_string(metrics.num_nodes)});
  table.add_row({"Directed road segments", std::to_string(metrics.num_edges)});
  table.add_row({"Average node degree", format_fixed(metrics.average_degree, 2)});
  table.add_row({"Orientation order (1 = grid)", format_fixed(metrics.orientation_order, 3)});
  table.add_row({"4-way intersection share", format_fixed(metrics.four_way_share, 3)});
  table.add_row({"Mean segment length (m)", format_fixed(metrics.mean_segment_length, 1)});
  table.render_text(out);
  out << "POIs:\n";
  for (const auto& poi : network.pois()) {
    out << "  - " << poi.name << " (" << poi.amenity << ")\n";
  }
  return 0;
}

int cmd_attack(const Flags& flags, std::ostream& out, std::ostream& err) {
  // Enable tracing before any instrumented work runs so the dump below
  // covers scenario sampling and the attack itself.
  const std::string trace_base = flags.get("trace", "");
  if (!trace_base.empty()) obs::set_trace_enabled(true);
  const auto network = load_network(flags);
  const auto weights = attack::make_weights(network, parse_weight(flags.get("weight", "time")));
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "uniform")));
  const auto algorithm = parse_algorithm(flags.get("algorithm", "greedy-pathcover"));

  Rng rng(parse_seed(flags));
  exp::ScenarioOptions options;
  options.path_rank = static_cast<int>(flags.get_int("rank", 100));
  if (options.path_rank < 1) throw InvalidInput("--rank must be >= 1");
  const auto scenario =
      exp::sample_scenario(network, weights, hospital_index(network, flags), rng, options);
  if (!scenario) {
    err << "error: could not sample a scenario (try a smaller --rank)\n";
    return 1;
  }

  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;
  problem.budget = parse_budget(flags, problem.budget);

  const auto result = run_attack(algorithm, problem);
  out << "status: " << to_string(result.status) << "\n"
      << "victim: random intersection -> " << scenario->hospital << "\n"
      << "forced path rank " << options.path_rank << ": "
      << format_fixed(scenario->p_star_length, 1) << " (fastest "
      << format_fixed(scenario->shortest_length, 1) << ")\n"
      << "removed " << result.num_removed() << " segments, cost "
      << format_fixed(result.total_cost, 2) << ", computed in "
      << format_fixed(result.seconds * 1000, 1) << " ms\n";
  for (EdgeId e : result.removed_edges) {
    const auto& name = network.segment_name(e);
    out << "  - block " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  if (!trace_base.empty()) {
    exp::save_observability(trace_base);
    out << "wrote " << trace_base << "_metrics.json and " << trace_base << "_trace.json\n";
  }
  if (result.status != attack::AttackStatus::Success) return 1;

  const auto verdict = attack::verify_attack(problem, result.removed_edges);
  out << "verified exclusive shortest: " << (verdict.ok ? "yes" : verdict.reason) << "\n";

  const std::string svg = flags.get("svg", "");
  if (!svg.empty()) {
    viz::save_attack_svg(svg, network, problem.p_star, result.removed_edges, problem.source,
                         problem.target);
    out << "wrote " << svg << "\n";
  }
  const std::string geojson = flags.get("geojson", "");
  if (!geojson.empty()) {
    viz::save_attack_geojson(geojson, network, problem.p_star, result.removed_edges,
                             problem.source, problem.target);
    out << "wrote " << geojson << "\n";
  }
  return verdict.ok ? 0 : 1;
}

int cmd_isolate(const Flags& flags, std::ostream& out) {
  const auto network = load_network(flags);
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "lanes")));
  const auto& poi = network.pois()[hospital_index(network, flags)];
  const double radius = flags.get_double("radius", 400.0);
  if (!(radius > 0.0)) throw InvalidInput("--radius must be positive");
  const auto area = attack::nodes_within_radius(network.graph(), poi.access_node, radius);
  const auto result = attack::isolate_area(network.graph(), costs, area);
  if (!result.feasible) {
    out << "isolation infeasible (area empty or covers the whole city)\n";
    return 1;
  }
  out << "isolating " << result.area_nodes << " intersections around " << poi.name
      << ": block " << result.cut_edges.size() << " segments, cost "
      << format_fixed(result.total_cost, 2) << "\n";
  for (EdgeId e : result.cut_edges) {
    const auto& name = network.segment_name(e);
    out << "  - block " << (name.empty() ? "(unnamed road)" : name) << "\n";
  }
  return 0;
}

int cmd_interdict(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto network = load_network(flags);
  const auto weights = attack::make_weights(network, parse_weight(flags.get("weight", "time")));
  const auto costs = attack::make_costs(network, parse_cost(flags.get("cost", "uniform")));
  const auto& poi = network.pois()[hospital_index(network, flags)];

  Rng rng(parse_seed(flags));
  const auto intersections = network.intersection_nodes();
  const NodeId source = intersections[rng.uniform_index(intersections.size())];
  if (source == poi.node) {
    err << "error: sampled source equals the target\n";
    return 1;
  }
  const auto result = attack::interdict_route(network.graph(), weights, costs, source, poi.node,
                                              parse_budget(flags, 8.0));
  out << "interdiction " << source.value() << " -> " << poi.name << ": baseline "
      << format_fixed(result.baseline_distance, 1) << ", after "
      << result.removed_edges.size() << " closures "
      << format_fixed(result.final_distance, 1) << " (delay factor "
      << format_fixed(result.delay_factor(), 2) << ")\n";
  return 0;
}

}  // namespace

std::string usage() {
  return "usage: mts <command> [--flag value ...]\n"
         "commands:\n"
         "  generate   --city boston|sf|chicago|la --scale S --seed N --out FILE.osm\n"
         "  info       --osm FILE.osm\n"
         "  attack     --osm FILE.osm [--hospital NAME] [--algorithm ALG] [--weight W]\n"
         "             [--cost C] [--rank K] [--seed N] [--budget B] [--svg F] [--geojson F]\n"
         "             [--trace BASE]  (writes BASE_metrics.json + BASE_trace.json)\n"
         "  isolate    --osm FILE.osm [--hospital NAME] [--radius M] [--cost C]\n"
         "  interdict  --osm FILE.osm [--hospital NAME] [--budget B] [--weight W] [--cost C]\n"
         "  help\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out << usage();
      return args.empty() ? 1 : 0;
    }
    const Flags flags(args, 1);
    if (args[0] == "generate") return cmd_generate(flags, out);
    if (args[0] == "info") return cmd_info(flags, out);
    if (args[0] == "attack") return cmd_attack(flags, out, err);
    if (args[0] == "isolate") return cmd_isolate(flags, out);
    if (args[0] == "interdict") return cmd_interdict(flags, out, err);
    err << "error: unknown command '" << args[0] << "'\n" << usage();
    return 1;
  } catch (const std::exception& ex) {
    err << "error: " << ex.what() << "\n";
    return 1;
  }
}

}  // namespace mts::cli
