// Entry point of the `mts` command-line tool; all logic lives in the
// testable mts_cli library.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return mts::cli::run_cli(args, std::cout, std::cerr);
}
