// The `mts` command-line tool, as a testable library.
//
// Subcommands cover the full workflow a downstream user needs without
// writing C++:
//
//   mts generate  --city boston --scale 1 --seed 7 --out boston.osm
//   mts info      --osm boston.osm
//   mts attack    --osm boston.osm --hospital "Tufts Medical Center"
//                 --algorithm greedy-pathcover --weight time --cost width
//                 --rank 100 --seed 7 [--svg out.svg] [--geojson out.geojson]
//   mts isolate   --osm boston.osm --hospital "..." --radius 400 --cost lanes
//   mts interdict --osm boston.osm --hospital "..." --budget 8 --seed 7
//
// `--city` also accepts sf/san-francisco, chicago, la/los-angeles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mts::cli {

/// Runs the CLI with `args` (excluding argv[0]).  Returns the process
/// exit code; all human output goes to `out`, errors to `err`.  Never
/// throws — failures are reported as messages + non-zero exit.
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// Usage text (also printed on `mts help` / bad input).
std::string usage();

}  // namespace mts::cli
