#!/usr/bin/env bash
# Pre-merge gate: build + test the matrix {RelWithDebInfo, ASan+UBSan, TSan}.
#
# Each configuration:
#   1. configures via its CMake preset (build-<preset>/ tree),
#   2. builds everything plus the lint_headers self-containment target,
#   3. runs the full ctest suite, which includes the `lint` entry
#      (tools/lint.py), the `validate_trace` observability gate
#      (tools/validate_trace.py), and, under asan, the
#      sanitizer-instrumented tests.
#
# The tsan preset is narrower: it builds only the test binaries that host
# the parallel experiment harness and runs the thread-pool, parallel
# determinism, and metrics-registry concurrency suites under
# ThreadSanitizer (the data-race gate for core/thread_pool,
# exp/table_runner, and obs/metrics).
#
# The extra `tidy` leg (not in the default set; hosted CI runs it as its
# own matrix job) configures the dev preset for compile_commands.json and
# runs the baseline-gated clang-tidy sweep (tools/run_clang_tidy.py, see
# DESIGN.md §11).  Without a clang-tidy on PATH it reports skipped unless
# MTS_TIDY_STRICT=1 (CI sets it so a missing tool can never silently pass).
#
# Usage: ./ci.sh [preset ...]     (default: dev asan tsan)
set -euo pipefail
cd "$(dirname "$0")"

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(dev asan tsan)
fi

JOBS="${JOBS:-$(nproc)}"

# Wait (up to 10s) for a freshly forked `mts routed` to write its port
# file.  `kill -0` is NOT a liveness probe here: a daemon that exits
# instantly becomes a zombie until reaped, and kill -0 succeeds on
# zombies, so the old loop burned the full 10s and then blamed the port
# file.  Read the process state from /proc instead — gone or Z means the
# daemon exited (any status, including 0) without publishing a port, so
# fail fast with its real exit code and stderr.
wait_port_file() {
  local daemon="$1" port_file="$2" err_file="$3"
  local state rc
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && return 0
    state="$(sed 's/.*) //' "/proc/$daemon/stat" 2>/dev/null | cut -d' ' -f1)"
    if [ -z "$state" ] || [ "$state" = Z ]; then
      rc=0
      wait "$daemon" || rc=$?
      echo "ci: routed exited with status $rc before writing its port file; stderr:" >&2
      cat "$err_file" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "ci: routed never wrote its port file (still running after 10s); stderr:" >&2
  cat "$err_file" >&2
  kill "$daemon" 2>/dev/null
  return 1
}

# Service smoke shared by the dev and asan legs: start `mts routed` on an
# ephemeral port, replay load against it, then prove the SIGTERM drain —
# the daemon must answer everything it parsed and exit 0.  Extra env (e.g.
# MTS_FAULTS=routed.request:...) applies to the daemon only; with MTS_CH
# unset the daemon serves route/kalt/table off the snapshot's contraction
# hierarchy, so the asan leg's armed run exercises the CH query path under
# sanitizers.
routed_smoke() {
  local preset="$1"; shift
  local mts="build-$preset/src/cli/mts"
  local dir
  dir="$(mktemp -d)"
  "$mts" generate --city chicago --scale 0.15 --seed 5 --out "$dir/city.osm"
  env "$@" "$mts" routed --osm "$dir/city.osm" --port 0 --port-file "$dir/port" \
    --slowlog "$dir/slow.jsonl" --threads 4 --obs "$dir/obs" 2> "$dir/routed.err" &
  local daemon=$!
  wait_port_file "$daemon" "$dir/port" "$dir/routed.err" || return 1

  for mix in route kalt table attack; do
    "$mts" loadgen --port-file "$dir/port" --requests 500 --connections "$JOBS" \
      --mix "$mix" --rank 2 --require-zero-drops 1 ||
      { echo "ci: loadgen mix=$mix failed" >&2; kill "$daemon" 2>/dev/null; return 1; }
  done

  # Live introspection: the stats verb must answer while the daemon is
  # still serving, and its always-on views must cover the replayed load.
  "$mts" stats --port-file "$dir/port" > "$dir/stats.out" ||
    { echo "ci: stats query against live daemon failed" >&2
      kill "$daemon" 2>/dev/null; return 1; }
  if ! grep -q '^server\.requests=' "$dir/stats.out" ||
     ! grep -q '^window\.count=' "$dir/stats.out"; then
    echo "ci: stats output is missing server./window. keys:" >&2
    cat "$dir/stats.out" >&2
    kill "$daemon" 2>/dev/null
    return 1
  fi

  kill -TERM "$daemon"
  local rc=0
  wait "$daemon" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "ci: routed did not drain cleanly on SIGTERM (exit $rc)" >&2
    return 1
  fi

  # A caller that armed MTS_SLOWLOG alongside a fault point expects the
  # injected failures in the slow-query log, tagged with the fault taxonomy.
  local arg slowlog_armed=""
  for arg in "$@"; do
    case "$arg" in MTS_SLOWLOG=*) slowlog_armed=1 ;; esac
  done
  if [ -n "$slowlog_armed" ] && ! grep -q 'fault-injected' "$dir/slow.jsonl"; then
    echo "ci: armed slow-query log has no fault-injected record" >&2
    return 1
  fi

  # With no overload knob set, the overload machinery must be provably
  # inert: the drained daemon's metrics may not contain a single shed,
  # deadline kill, or slow-client eviction (absent counter == 0).
  python3 tools/bench_compare.py --assert-zero \
    routed.shed,routed.deadline_exceeded,routed.slow_client_disconnects \
    --metrics-json "$dir/obs_metrics.json" ||
    { echo "ci: unloaded smoke tripped overload counters" >&2; return 1; }
  rm -rf "$dir"
}

# Chaos leg: the daemon serves with every overload knob armed and fault
# points firing mid-load (one injected request failure, one stalled
# response write); the retrying client must still reach a terminal answer
# for every request with zero drops, and the SIGTERM drain must stay
# clean.  `timeout` bounds each client run so a wedged daemon fails the
# leg instead of hanging CI.
routed_chaos() {
  local preset="$1"
  local mts="build-$preset/src/cli/mts"
  local dir
  dir="$(mktemp -d)"
  "$mts" generate --city chicago --scale 0.15 --seed 5 --out "$dir/city.osm"
  env MTS_MAX_QUEUE=4 MTS_MAX_INFLIGHT=8 MTS_DEADLINE_MS=2000 \
    MTS_WRITE_TIMEOUT_MS=500 \
    MTS_FAULTS="routed.request:after=40:throw,net.write:after=60:stall" \
    "$mts" routed --osm "$dir/city.osm" --port 0 --port-file "$dir/port" \
    --threads 2 > "$dir/routed.out" 2> "$dir/routed.err" &
  local daemon=$!
  wait_port_file "$daemon" "$dir/port" "$dir/routed.err" || return 1

  # Window 16 against an inflight cap of 8 guarantees sheds; --retries
  # must absorb them (or surface structured errors), never drop.
  for mix in route attack; do
    timeout 120 "$mts" loadgen --port-file "$dir/port" --requests 400 \
      --connections 4 --window 16 --mix "$mix" --rank 2 \
      --retries 8 --reconnects 4 --require-zero-drops 1 ||
      { echo "ci: chaos loadgen mix=$mix failed or hung" >&2
        kill "$daemon" 2>/dev/null; return 1; }
  done

  kill -TERM "$daemon"
  local rc=0
  wait "$daemon" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "ci: chaos daemon did not drain cleanly on SIGTERM (exit $rc)" >&2
    cat "$dir/routed.err" >&2
    return 1
  fi
  # The armed knobs must actually have fired: a chaos run that never shed
  # is not testing overload.
  if ! grep -Eq 'shed=[1-9]' "$dir/routed.out"; then
    echo "ci: chaos run never shed a request; daemon summary:" >&2
    cat "$dir/routed.out" >&2
    return 1
  fi
  sed -n 's/^routed:/ci: chaos daemon summary:/p' "$dir/routed.out"
  rm -rf "$dir"
}

# Serving-path parity: replay the identical request stream (same loadgen
# seed) against a CH-backed daemon and a Dijkstra-only daemon (MTS_CH=0)
# and require the per-request response dumps to be byte-identical.  This
# is the end-to-end form of the CH==Dijkstra equivalence the unit tests
# prove on fuzzed graphs: same hops, same byte-formatted lengths, over
# the wire.  The table mix is deliberately excluded from the strict diff —
# bucket-based many-to-many sums associate floating-point additions
# differently from a sequential path walk, so table values agree only to
# ~1 ulp, not byte for byte (DESIGN.md §14).
routed_ch_parity() {
  local preset="$1"
  local mts="build-$preset/src/cli/mts"
  local dir
  dir="$(mktemp -d)"
  "$mts" generate --city chicago --scale 0.15 --seed 5 --out "$dir/city.osm"

  local mode daemon rc
  for mode in ch nocg; do
    local env_args=()
    [ "$mode" = nocg ] && env_args=(MTS_CH=0)
    env "${env_args[@]}" "$mts" routed --osm "$dir/city.osm" --port 0 \
      --port-file "$dir/port.$mode" --threads 4 2> "$dir/routed.$mode.err" &
    daemon=$!
    wait_port_file "$daemon" "$dir/port.$mode" "$dir/routed.$mode.err" || return 1
    for mix in route kalt attack; do
      "$mts" loadgen --port-file "$dir/port.$mode" --requests 300 \
        --connections "$JOBS" --mix "$mix" --rank 2 --seed 7 \
        --dump "$dir/$mix.$mode.dump" > /dev/null ||
        { echo "ci: parity loadgen mix=$mix mode=$mode failed" >&2
          kill "$daemon" 2>/dev/null; return 1; }
    done
    kill -TERM "$daemon"
    rc=0
    wait "$daemon" || rc=$?
    if [ "$rc" != 0 ]; then
      echo "ci: parity daemon (mode=$mode) did not drain cleanly (exit $rc)" >&2
      return 1
    fi
  done

  for mix in route kalt attack; do
    if ! diff -u "$dir/$mix.nocg.dump" "$dir/$mix.ch.dump" > "$dir/$mix.diff"; then
      echo "ci: CH vs Dijkstra serving parity broken for mix=$mix:" >&2
      head -20 "$dir/$mix.diff" >&2
      return 1
    fi
  done
  echo "ci: CH/Dijkstra serving parity holds (route kalt attack)"
  rm -rf "$dir"
}

for preset in "${PRESETS[@]}"; do
  if [ "$preset" = bench ]; then
    # Standalone counter-regression leg (hosted CI runs it as its own
    # matrix job): dev-preset build of the table02 bench, then the
    # bench_gate ctest entry, which replays the seed-pinned workload and
    # compares every gated work counter against BENCH_PR9.json.  The
    # comparison report + raw metrics land in build-dev/bench_report* for
    # artifact upload on failure.
    echo "==== [bench] configure (dev preset) ===="
    cmake --preset dev

    echo "==== [bench] build ===="
    cmake --build --preset dev -j "$JOBS" --target table02_boston_length

    echo "==== [bench] bench_gate (counters vs BENCH_PR9.json) ===="
    ctest --preset dev -R '^bench_gate$' --output-on-failure
    continue
  fi

  if [ "$preset" = tidy ]; then
    echo "==== [tidy] configure (dev preset, for compile_commands.json) ===="
    cmake --preset dev

    echo "==== [tidy] clang-tidy gate (baseline: tools/clang_tidy_baseline.txt) ===="
    rc=0
    python3 tools/run_clang_tidy.py --build build-dev \
      --report build-dev/tidy_report.txt || rc=$?
    if [ "$rc" = 77 ]; then
      if [ "${MTS_TIDY_STRICT:-0}" = 1 ]; then
        echo "ci: tidy leg skipped but MTS_TIDY_STRICT=1 — failing" >&2
        exit 1
      fi
      echo "ci: tidy skipped (no clang-tidy on this machine)"
    elif [ "$rc" != 0 ]; then
      exit "$rc"
    fi
    continue
  fi

  echo "==== [$preset] configure ===="
  cmake --preset "$preset"

  if [ "$preset" = tsan ]; then
    echo "==== [$preset] build (parallel suites) ===="
    cmake --build --preset "$preset" -j "$JOBS" --target test_core test_integration test_obs test_net

    echo "==== [$preset] ctest (ThreadPool + ParallelDeterminism + MetricsRegistry + SearchSpace + Fault/Checkpoint + TaskQueue/RoutedE2e) ===="
    # MTS_THREADS=4 forces real concurrency even on small CI hosts, so TSan
    # actually sees the threads it is supposed to check.  ConcurrentRecording
    # is the obs/metrics sharded-registry race gate; SearchSpaceThreads races
    # the per-thread search workspace reuse path (graph/search_space.hpp);
    # Fault/Checkpoint race the quarantine + journal-append paths of the
    # parallel harness (exp/table_runner, exp/checkpoint); TaskQueue/RoutedE2e
    # race the daemon's reader threads, queue workers, and drain paths
    # (core/thread_pool, net/server) — this leg is what caught the EOF-close
    # vs shutdown_read fd race.  ChSharedSnapshot races concurrent
    # QueryEngine workers over one read-only snapshot-owned
    # ContractionHierarchy (net/snapshot, graph/contraction_hierarchy).
    # RoutedOverload races the admission path, per-connection writer
    # threads, and eviction against workers; SocketIo races reader/writer
    # pairs through tiny kernel buffers and EINTR storms.
    MTS_THREADS=4 ctest --preset "$preset" -j "$JOBS" \
      -R 'ThreadPool|ParallelDeterminism|ConcurrentRecording|SearchSpace|Fault|Checkpoint|TaskQueue|RoutedE2e|RoutedOverload|SocketIo|WindowedHistogram|ChSharedSnapshot'
    continue
  fi

  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"

  echo "==== [$preset] lint_headers ===="
  cmake --build --preset "$preset" -j "$JOBS" --target lint_headers

  echo "==== [$preset] ctest ===="
  ctest --preset "$preset" -j "$JOBS"

  if [ "$preset" = asan ]; then
    # Fault-injection smoke: arm every compiled-in fault point in turn and
    # run the small table bench under ASan+UBSan.  The armed fault must be
    # contained (quarantined cell or dropped trial, exit 0) — never a
    # crash, leak, or sanitizer report.
    echo "==== [$preset] fault-injection smoke (MTS_FAULTS matrix) ===="
    for point in lp.pivot yen.spur oracle.solve pool.task; do
      echo "---- MTS_FAULTS=$point:after=25:throw ----"
      (cd "build-$preset" &&
        MTS_FAULTS="$point:after=25:throw" MTS_SCALE=0.2 MTS_TRIALS=2 \
          MTS_PATH_RANK=10 MTS_SEED=11 MTS_TIMING=0 \
          ./bench/table02_boston_length > /dev/null)
    done

    # The routed.request point fires inside a live daemon under ASan: the
    # injected fault must surface as one structured `err ... fault-injected:`
    # response (loadgen still completes with zero drops), land in the
    # slow-query log (errors always log; the 60 s threshold keeps healthy
    # requests out), and the drain must stay clean.
    echo "==== [$preset] routed fault-injection smoke (MTS_FAULTS=routed.request) ===="
    routed_smoke "$preset" MTS_FAULTS=routed.request:after=25:throw MTS_SLOWLOG=60000
  fi

  if [ "$preset" = dev ]; then
    # Explicit observability gate: a small MTS_TRACE=1 bench run whose
    # Chrome trace must validate against tools/trace_schema.json (the
    # entry also runs inside the full ctest sweep above; calling it out
    # here keeps the failure mode obvious when only this gate breaks).
    echo "==== [$preset] validate_trace (MTS_TRACE=1 bench) ===="
    ctest --preset "$preset" -R '^validate_trace$' --output-on-failure

    # Deterministic work-counter regression gate: a small MTS_METRICS=1
    # bench run whose dijkstra/ch/lp/yen counters must match
    # BENCH_PR9.json exactly (tools/bench_compare.py; wall-clock is
    # reported, never gated).
    echo "==== [$preset] bench_gate (counter regression) ===="
    ctest --preset "$preset" -R '^bench_gate$' --output-on-failure

    # Service smoke: routed + loadgen end to end over the four request
    # mixes, then the SIGTERM drain contract (see routed_smoke above).
    echo "==== [$preset] routed/loadgen smoke ===="
    routed_smoke "$preset"

    # Overload chaos: armed knobs + mid-load fault injection; the
    # retrying client must terminate with zero drops and the daemon must
    # shed observably and drain cleanly (see routed_chaos above).
    echo "==== [$preset] routed overload chaos ===="
    routed_chaos "$preset"

    # CH on/off A-B replay: identical request streams against both
    # serving substrates must produce byte-identical answers.
    echo "==== [$preset] CH/Dijkstra serving parity ===="
    routed_ch_parity "$preset"

    # Brief protocol fuzz callout: byte-mutation fuzz of the wire parser
    # (also part of the full sweep; isolated here so a framing regression
    # fails with an obvious label).
    echo "==== [$preset] protocol fuzz ===="
    ctest --preset "$preset" -R 'ProtocolFuzz' --output-on-failure
  fi
done

echo "ci: all presets green (${PRESETS[*]})"
