#!/usr/bin/env bash
# Pre-merge gate: build + test the matrix {RelWithDebInfo, ASan+UBSan, TSan}.
#
# Each configuration:
#   1. configures via its CMake preset (build-<preset>/ tree),
#   2. builds everything plus the lint_headers self-containment target,
#   3. runs the full ctest suite, which includes the `lint` entry
#      (tools/lint.py) and, under asan, the sanitizer-instrumented tests.
#
# The tsan preset is narrower: it builds only the test binaries that host
# the parallel experiment harness and runs the thread-pool and parallel
# determinism suites under ThreadSanitizer (the data-race gate for
# core/thread_pool and exp/table_runner).
#
# Usage: ./ci.sh [preset ...]     (default: dev asan tsan)
set -euo pipefail
cd "$(dirname "$0")"

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(dev asan tsan)
fi

JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"

  if [ "$preset" = tsan ]; then
    echo "==== [$preset] build (parallel suites) ===="
    cmake --build --preset "$preset" -j "$JOBS" --target test_core test_integration

    echo "==== [$preset] ctest (ThreadPool + ParallelDeterminism) ===="
    # MTS_THREADS=4 forces real concurrency even on small CI hosts, so TSan
    # actually sees the threads it is supposed to check.
    MTS_THREADS=4 ctest --preset "$preset" -j "$JOBS" \
      -R 'ThreadPool|ParallelDeterminism'
    continue
  fi

  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"

  echo "==== [$preset] lint_headers ===="
  cmake --build --preset "$preset" -j "$JOBS" --target lint_headers

  echo "==== [$preset] ctest ===="
  ctest --preset "$preset" -j "$JOBS"
done

echo "ci: all presets green (${PRESETS[*]})"
