#!/usr/bin/env bash
# Pre-merge gate: build + test the matrix {RelWithDebInfo, ASan+UBSan}.
#
# Each configuration:
#   1. configures via its CMake preset (build-<preset>/ tree),
#   2. builds everything plus the lint_headers self-containment target,
#   3. runs the full ctest suite, which includes the `lint` entry
#      (tools/lint.py) and, under asan, the sanitizer-instrumented tests.
#
# Usage: ./ci.sh [preset ...]     (default: dev asan)
set -euo pipefail
cd "$(dirname "$0")"

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(dev asan)
fi

JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"

  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"

  echo "==== [$preset] lint_headers ===="
  cmake --build --preset "$preset" -j "$JOBS" --target lint_headers

  echo "==== [$preset] ctest ===="
  ctest --preset "$preset" -j "$JOBS"
done

echo "ci: all presets green (${PRESETS[*]})"
