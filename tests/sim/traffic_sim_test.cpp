#include "sim/traffic_sim.hpp"

#include <gtest/gtest.h>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/error.hpp"
#include "exp/scenario.hpp"
#include "graph/dijkstra.hpp"

namespace mts::sim {
namespace {

const osm::RoadNetwork& test_network() {
  static const osm::RoadNetwork network =
      citygen::generate_city(citygen::City::Chicago, 0.2, 77);
  return network;
}

/// Source/destination pair with a decent-length route.
std::pair<NodeId, NodeId> pick_od(const osm::RoadNetwork& network) {
  return {network.intersection_nodes().front(), network.pois().front().node};
}

TEST(TrafficSim, FreeFlowMatchesStaticTravelTime) {
  const auto& network = test_network();
  const auto [s, t] = pick_od(network);
  const auto times = network.edge_times();
  const double expected = shortest_distance(network.graph(), times, s, t);
  ASSERT_LT(expected, kInfiniteDistance);

  TrafficSimulation sim(network);
  sim.add_vehicle({s, t, 0.0, true});
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim.has_value());
  ASSERT_TRUE(victim->arrived);
  // One vehicle on an empty network: BPR congestion with a single car is
  // negligible; travel time ~= static shortest time (+<= one time step of
  // discretization per edge boundary is avoided by exact carry-over).
  EXPECT_NEAR(victim->travel_time_s, expected, expected * 0.02 + 2.0);
}

TEST(TrafficSim, DeterministicAcrossRuns) {
  const auto& network = test_network();
  const auto [s, t] = pick_od(network);
  auto run_once = [&] {
    TrafficSimulation sim(network);
    sim.add_vehicle({s, t, 0.0, true});
    for (int i = 0; i < 20; ++i) {
      const auto nodes = network.intersection_nodes();
      sim.add_vehicle({nodes[static_cast<std::size_t>(i * 7) % nodes.size()], t,
                       static_cast<double>(i)});
    }
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].arrived, b.outcomes[i].arrived);
    EXPECT_DOUBLE_EQ(a.outcomes[i].travel_time_s, b.outcomes[i].travel_time_s);
    EXPECT_EQ(a.outcomes[i].route_taken, b.outcomes[i].route_taken);
  }
}

TEST(TrafficSim, CongestionSlowsTraffic) {
  const auto& network = test_network();
  const auto [s, t] = pick_od(network);

  TrafficSimulation solo(network);
  solo.add_vehicle({s, t, 0.0, true});
  const auto solo_result = solo.run();

  SimOptions options;
  options.reroute_interval_s = 0.0;  // same fixed route for a clean contrast
  TrafficSimulation crowded(network, options);
  crowded.add_vehicle({s, t, 0.0, true});
  for (int i = 0; i < 400; ++i) crowded.add_vehicle({s, t, 0.0});
  const auto crowded_result = crowded.run();

  const auto fast = solo_result.victim_outcome();
  const auto slow = crowded_result.victim_outcome();
  ASSERT_TRUE(fast && fast->arrived);
  ASSERT_TRUE(slow && slow->arrived);
  EXPECT_GT(slow->travel_time_s, fast->travel_time_s * 1.05);
}

TEST(TrafficSim, ClosureForcesRerouteAndDelay) {
  const auto& network = test_network();
  const auto [s, t] = pick_od(network);
  const auto times = network.edge_times();
  const auto baseline_path = shortest_path(network.graph(), times, s, t);
  ASSERT_TRUE(baseline_path.has_value());
  ASSERT_GE(baseline_path->num_edges(), 3u);

  // Close a mid-route edge just after departure.
  const EdgeId blocked = baseline_path->edges[baseline_path->num_edges() / 2];

  TrafficSimulation sim(network);
  sim.add_vehicle({s, t, 0.0, true});
  sim.add_closure(blocked, 1.0);
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim && victim->arrived);
  // The realized route avoids the closed edge...
  for (EdgeId e : victim->route_taken) EXPECT_NE(e, blocked);
  // ...and is no faster than the unattacked drive.
  TrafficSimulation clean(network);
  clean.add_vehicle({s, t, 0.0, true});
  const auto clean_victim = clean.run().victim_outcome();
  ASSERT_TRUE(clean_victim && clean_victim->arrived);
  EXPECT_GE(victim->travel_time_s + 1e-9, clean_victim->travel_time_s);
}

TEST(TrafficSim, FullBlockadeStrandsVehicle) {
  const auto& network = test_network();
  const auto poi = network.pois().front();
  const auto [s, t] = pick_od(network);

  SimOptions options;
  options.max_time_s = 600.0;  // don't wait hours for the stranded car
  TrafficSimulation sim(network, options);
  sim.add_vehicle({s, poi.node, 0.0, true});
  // Close both connector directions: the hospital becomes unreachable.
  for (EdgeId e : network.graph().in_edges(poi.node)) sim.add_closure(e, 0.0);
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(victim->arrived);
  EXPECT_EQ(result.stranded, 1u);
  (void)t;
}

TEST(TrafficSim, StrandedRetryCapWritesVehicleOffEarly) {
  // A vehicle whose destination is cut off stops re-querying routes after
  // max_stranded_ticks and becomes terminally stranded — the simulation
  // then ends instead of burning a shortest-path query per tick until
  // max_time_s.
  const auto& network = test_network();
  const auto poi = network.pois().front();
  const auto [s, t] = pick_od(network);
  (void)t;

  SimOptions options;
  options.max_time_s = 3600.0;
  options.max_stranded_ticks = 5;
  TrafficSimulation sim(network, options);
  sim.add_vehicle({s, poi.node, 0.0, true});
  for (EdgeId e : network.graph().in_edges(poi.node)) sim.add_closure(e, 0.0);
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(victim->arrived);
  EXPECT_TRUE(victim->terminally_stranded);
  EXPECT_EQ(result.stranded, 1u);
  EXPECT_LT(result.simulated_time_s, options.max_time_s);
}

TEST(TrafficSim, ZeroStrandedCapKeepsRetryingUntilMaxTime) {
  const auto& network = test_network();
  const auto poi = network.pois().front();
  const auto [s, t] = pick_od(network);
  (void)t;

  SimOptions options;
  options.max_time_s = 60.0;  // short horizon: retry-forever is the point
  options.max_stranded_ticks = 0;
  TrafficSimulation sim(network, options);
  sim.add_vehicle({s, poi.node, 0.0, true});
  for (EdgeId e : network.graph().in_edges(poi.node)) sim.add_closure(e, 0.0);
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(victim->arrived);
  EXPECT_FALSE(victim->terminally_stranded);
  EXPECT_EQ(result.stranded, 1u);
}

TEST(TrafficSim, ForcePathCutAttackRealizesForcedRoute) {
  // End-to-end: a Force Path Cut plan applied as live closures makes the
  // simulated, dynamically-rerouting victim drive exactly p*.
  const auto& network = test_network();
  const auto weights = network.edge_times();
  Rng rng(3);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = 15;
  const auto scenario = exp::sample_scenario(network, weights, 0, rng, scenario_options);
  ASSERT_TRUE(scenario.has_value());

  const auto costs = attack::make_costs(network, attack::CostType::Uniform);
  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;
  const auto attack_result = run_attack(attack::Algorithm::GreedyPathCover, problem);
  ASSERT_EQ(attack_result.status, attack::AttackStatus::Success);

  SimOptions options;
  options.reroute_interval_s = 30.0;
  TrafficSimulation sim(network, options);
  sim.add_vehicle({scenario->source, scenario->target, 10.0, true});
  for (EdgeId e : attack_result.removed_edges) sim.add_closure(e, 0.0);
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim && victim->arrived);
  EXPECT_EQ(victim->route_taken, scenario->p_star.edges);
  EXPECT_NEAR(victim->travel_time_s, scenario->p_star_length,
              scenario->p_star_length * 0.02 + 2.0);
}

TEST(TrafficSim, RejectsBadInput) {
  const auto& network = test_network();
  SimOptions options;
  options.time_step_s = 0.0;
  EXPECT_THROW(TrafficSimulation(network, options), PreconditionViolation);
  TrafficSimulation sim(network);
  EXPECT_THROW(sim.add_vehicle({NodeId(999999), NodeId(0), 0.0}), PreconditionViolation);
  EXPECT_THROW(sim.add_closure(EdgeId(999999), 0.0), PreconditionViolation);
}

TEST(TrafficSim, DelayedDeparture) {
  const auto& network = test_network();
  const auto [s, t] = pick_od(network);
  TrafficSimulation sim(network);
  sim.add_vehicle({s, t, 120.0, true});
  const auto result = sim.run();
  const auto victim = result.victim_outcome();
  ASSERT_TRUE(victim && victim->arrived);
  EXPECT_GE(victim->arrival_time_s, 120.0);
  EXPECT_DOUBLE_EQ(victim->depart_time_s, 120.0);
}

}  // namespace
}  // namespace mts::sim
