// Tests of the experiment harness itself (scenario sampling, table
// aggregation, paper-value lookups).
#include <gtest/gtest.h>

#include <sstream>

#include "citygen/generate.hpp"
#include "exp/paper_values.hpp"
#include "exp/table_runner.hpp"

namespace mts::exp {
namespace {

using attack::Algorithm;
using attack::CostType;
using attack::WeightType;
using citygen::City;

TEST(ScenarioSampling, ProducesRequestedRankAndPrefix) {
  const auto network = citygen::generate_city(City::Chicago, 0.2, 8);
  const auto weights = attack::make_weights(network, WeightType::Time);
  Rng rng(4);
  ScenarioOptions options;
  options.path_rank = 15;
  const auto scenarios = sample_scenarios(network, weights, 4, rng, options);
  ASSERT_GE(scenarios.size(), 3u);
  for (const auto& scenario : scenarios) {
    EXPECT_EQ(scenario.prefix.size(), 14u);
    // Ranked: every prefix path no longer than p*.
    for (const auto& p : scenario.prefix) {
      EXPECT_LE(p.length, scenario.p_star_length + 1e-9);
    }
    EXPECT_GE(scenario.yen_seconds, 0.0);
    EXPECT_FALSE(scenario.hospital.empty());
  }
  // Hospitals rotate.
  EXPECT_NE(scenarios[0].hospital, scenarios[1].hospital);
}

TEST(ScenarioSampling, RespectsMinimumSeparation) {
  const auto network = citygen::generate_city(City::Chicago, 0.2, 8);
  const auto weights = attack::make_weights(network, WeightType::Time);
  const double mean_segment =
      compute_network_metrics(network.graph()).mean_segment_length;
  Rng rng(4);
  ScenarioOptions options;
  options.path_rank = 5;
  options.min_separation_segments = 4.0;
  const auto scenario = sample_scenario(network, weights, 0, rng, options);
  ASSERT_TRUE(scenario.has_value());
  const auto& g = network.graph();
  EXPECT_GE(g.node_distance(scenario->source, scenario->target), 4.0 * mean_segment);
}

TEST(TableRunner, SmallRunFillsAllCells) {
  RunConfig config;
  config.city = City::Chicago;
  config.scale = 0.2;
  config.weight = WeightType::Time;
  config.trials = 2;
  config.path_rank = 12;
  config.seed = 5;
  const auto result = run_city_table(config);
  ASSERT_GE(result.scenarios_run, 1);
  for (Algorithm algorithm : attack::kAllAlgorithms) {
    for (CostType cost : attack::kAllCostTypes) {
      const auto& cell = result.cell(algorithm, cost);
      EXPECT_EQ(cell.verification_failures, 0)
          << to_string(algorithm) << "/" << to_string(cost);
      EXPECT_EQ(cell.n, result.scenarios_run);
      EXPECT_GT(cell.aner(), 0.0);
      EXPECT_GT(cell.acre(), 0.0);
      EXPECT_GE(cell.avg_runtime(), 0.0);
    }
  }
  // ACRE ordering from the paper: UNIFORM <= LANES <= WIDTH per algorithm.
  for (Algorithm algorithm : attack::kAllAlgorithms) {
    const double uniform = result.cell(algorithm, CostType::Uniform).acre();
    const double lanes = result.cell(algorithm, CostType::Lanes).acre();
    const double width = result.cell(algorithm, CostType::Width).acre();
    EXPECT_LE(uniform, lanes + 1e-9);
    EXPECT_LE(lanes, width + 1e-9);
  }
  // Under UNIFORM costs ACRE == ANER by definition.
  for (Algorithm algorithm : attack::kAllAlgorithms) {
    const auto& cell = result.cell(algorithm, CostType::Uniform);
    EXPECT_NEAR(cell.acre(), cell.aner(), 1e-9);
  }
}

TEST(TableRunner, RenderedTableHasFourRows) {
  RunConfig config;
  config.city = City::Chicago;
  config.scale = 0.2;
  config.trials = 1;
  config.path_rank = 8;
  const auto result = run_city_table(config);
  const auto table = render_city_table(result);
  EXPECT_EQ(table.num_rows(), 4u);
  std::ostringstream out;
  table.render_text(out);
  EXPECT_NE(out.str().find("GreedyPathCover"), std::string::npos);
  EXPECT_NE(out.str().find("LP-PathCover"), std::string::npos);
}

TEST(TableRunner, DetailedTableIncludesSpread) {
  RunConfig config;
  config.city = City::Chicago;
  config.scale = 0.2;
  config.trials = 3;
  config.path_rank = 8;
  const auto result = run_city_table(config);
  const auto table = render_city_table_detailed(result);
  EXPECT_EQ(table.num_rows(), kNumAlgorithms * kNumCostTypes);
  std::ostringstream out;
  table.render_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("ANER Stddev"), std::string::npos);
  EXPECT_NE(csv.find("LP-PathCover,UNIFORM"), std::string::npos);
  // Stddev is tracked per cell and finite.
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (CostType c : attack::kAllCostTypes) {
      EXPECT_GE(result.cell(a, c).edges_removed.stddev(), 0.0);
      EXPECT_LE(result.cell(a, c).edges_removed.stddev(), 50.0);
    }
  }
}

TEST(TableRunner, SummarizeAveragesCells) {
  RunConfig config;
  config.city = City::Chicago;
  config.scale = 0.2;
  config.trials = 1;
  config.path_rank = 8;
  const auto result = run_city_table(config);
  const auto summary = summarize(result);
  EXPECT_GT(summary.aner, 0.0);
  EXPECT_GE(summary.acre, summary.aner * 0.8);
}

TEST(Threshold, OrganicCityHasBiggerPathRankGap) {
  // Paper Table X: Boston's increase to the k-th path dwarfs Chicago's.
  // Averaged over two seeds to control sampling noise at test scale.
  double boston_100 = 0.0;
  double chicago_100 = 0.0;
  for (std::uint64_t seed : {3ULL, 19ULL}) {
    const auto boston = run_threshold_experiment(City::Boston, 0.5, 6, seed);
    const auto chicago = run_threshold_experiment(City::Chicago, 0.5, 6, seed);
    ASSERT_GT(boston.n, 0);
    ASSERT_GT(chicago.n, 0);
    EXPECT_GE(boston.avg_increase_100th, 0.0);
    EXPECT_GE(boston.avg_increase_200th, boston.avg_increase_100th);
    EXPECT_GE(chicago.avg_increase_200th, chicago.avg_increase_100th);
    boston_100 += boston.avg_increase_100th;
    chicago_100 += chicago.avg_increase_100th;
  }
  EXPECT_GT(boston_100, chicago_100);
}

TEST(PaperValues, TablesPresentAndConsistent) {
  // Every city/weight except LA-LENGTH has full 4x3 cell data.
  for (City city : citygen::kAllCities) {
    for (WeightType weight : attack::kAllWeightTypes) {
      const bool expect_present = !(city == City::LosAngeles && weight == WeightType::Length);
      for (Algorithm algorithm : attack::kAllAlgorithms) {
        for (CostType cost : attack::kAllCostTypes) {
          const auto cell = paper_cell(city, weight, algorithm, cost);
          EXPECT_EQ(cell.has_value(), expect_present);
          if (cell) {
            EXPECT_GT(cell->runtime, 0.0);
            EXPECT_GT(cell->aner, 0.0);
            EXPECT_GE(cell->acre, cell->aner - 1e-9);  // cost >= 1 per edge
          }
        }
      }
    }
  }
}

TEST(PaperValues, UniformAcreEqualsAner) {
  for (City city : citygen::kAllCities) {
    for (Algorithm algorithm : attack::kAllAlgorithms) {
      const auto cell = paper_cell(city, WeightType::Time, algorithm, CostType::Uniform);
      ASSERT_TRUE(cell.has_value());
      EXPECT_NEAR(cell->aner, cell->acre, 1e-9);
    }
  }
}

TEST(PaperValues, Table1AndTable10Lookups) {
  EXPECT_EQ(paper_table1(City::Boston).nodes, 11171);
  EXPECT_EQ(paper_table1(City::LosAngeles).nodes, 51716);
  EXPECT_TRUE(paper_table10(City::Boston).has_value());
  EXPECT_FALSE(paper_table10(City::LosAngeles).has_value());
  EXPECT_NEAR(paper_table9(City::Chicago, WeightType::Time).aner, 4.02, 1e-9);
}

TEST(PaperValues, NaiveAlgorithmsNeverBeatLpInPaperTables) {
  // Reproducible part of the §III-B claim: in every published cell the
  // naive algorithms' attack cost is at least LP-PathCover's.  (The
  // paper's aggregate "gap 2.3 in Boston vs 1.4 in Chicago" does NOT
  // follow from its own Tables II-VII under any averaging we could find —
  // recomputing the mean naive-minus-LP ACRE gap gives ~1.4 for Boston
  // and ~2.0 for Chicago.  EXPERIMENTS.md documents this discrepancy; the
  // direction-of-effect claim is tested on measured data via Table X
  // instead, see Threshold.OrganicCityHasBiggerPathRankGap.)
  for (City city : citygen::kAllCities) {
    for (WeightType weight : attack::kAllWeightTypes) {
      for (CostType cost : attack::kAllCostTypes) {
        const auto lp_cell = paper_cell(city, weight, Algorithm::LpPathCover, cost);
        if (!lp_cell) continue;
        const auto ge = paper_cell(city, weight, Algorithm::GreedyEdge, cost);
        const auto eig = paper_cell(city, weight, Algorithm::GreedyEig, cost);
        EXPECT_GE(ge->acre, lp_cell->acre - 1e-9);
        EXPECT_GE(eig->acre, lp_cell->acre - 1e-9);
      }
    }
  }
}

TEST(PaperValues, Table10GapOrderingBostonSfChicago) {
  // Table X (which the paper ties to the naive-vs-LP gap): Boston's
  // increase to the 100th path dwarfs Chicago's, with SF in between.
  const auto boston = paper_table10(City::Boston);
  const auto sf = paper_table10(City::SanFrancisco);
  const auto chicago = paper_table10(City::Chicago);
  ASSERT_TRUE(boston && sf && chicago);
  EXPECT_GT(boston->increase_100th, sf->increase_100th);
  EXPECT_GT(sf->increase_100th, chicago->increase_100th);
}

}  // namespace
}  // namespace mts::exp
