// Checkpoint/resume end-to-end: the JSONL journal round-trips cell records
// exactly, rejects mismatched configurations, tolerates a torn trailing
// line (kill mid-write), and a resumed grid reduces to byte-identical
// tables and JSON at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fault.hpp"
#include "core/thread_pool.hpp"
#include "exp/checkpoint.hpp"
#include "exp/json_report.hpp"
#include "exp/table_runner.hpp"
#include "obs/metrics.hpp"

namespace mts::exp {
namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Same configuration as the checked-in golden file.
RunConfig small_config() {
  RunConfig config;
  config.city = citygen::City::Boston;
  config.weight = attack::WeightType::Length;
  config.scale = 0.2;
  config.trials = 3;
  config.path_rank = 10;
  config.seed = 11;
  config.deterministic_timing = true;
  return config;
}

std::string csv_of(const CityTableResult& result) {
  std::ostringstream out;
  render_city_table(result).render_csv(out);
  render_city_table_detailed(result).render_csv(out);
  return out.str();
}

TEST(CheckpointJournalTest, AppendLoadRoundTripsExactly) {
  const auto dir = fresh_dir("mts_checkpoint_test");
  const std::string path = (dir / "journal.jsonl").string();

  CellRecord record;
  record.task = 42;
  record.status = "success";
  record.verified = true;
  record.verify_reason = "";
  record.fallback_used = true;
  record.fallback_reason = "lp iteration-limit (phase 2, 17 iterations)";
  record.seconds = 0.1234567890123456789;  // exercises %.17g round-trip
  record.removed = 7;
  record.total_cost = 1.0 / 3.0;

  CellRecord awkward;
  awkward.task = 0;
  awkward.status = "budget-exhausted";
  awkward.verify_reason = "quote \" backslash \\ newline \n tab \t done";
  awkward.seconds = -0.0;
  awkward.total_cost = 1e-308;  // denormal-adjacent magnitude

  {
    CheckpointJournal journal(path, "fp-1");
    journal.append(record);
    journal.append(awkward);
  }
  const auto loaded = CheckpointJournal::load(path, "fp-1");
  ASSERT_EQ(loaded.size(), 2u);
  const CellRecord& a = loaded.at(42);
  EXPECT_EQ(a.status, record.status);
  EXPECT_EQ(a.verified, record.verified);
  EXPECT_EQ(a.fallback_used, record.fallback_used);
  EXPECT_EQ(a.fallback_reason, record.fallback_reason);
  EXPECT_EQ(a.seconds, record.seconds);  // bitwise: %.17g + strtod
  EXPECT_EQ(a.removed, record.removed);
  EXPECT_EQ(a.total_cost, record.total_cost);
  const CellRecord& b = loaded.at(0);
  EXPECT_EQ(b.verify_reason, awkward.verify_reason);
  EXPECT_EQ(b.total_cost, awkward.total_cost);
}

TEST(CheckpointJournalTest, LoadOfMissingFileIsEmpty) {
  const auto dir = fresh_dir("mts_checkpoint_missing");
  EXPECT_TRUE(CheckpointJournal::load((dir / "nope.jsonl").string(), "fp").empty());
}

TEST(CheckpointJournalTest, FingerprintMismatchThrows) {
  const auto dir = fresh_dir("mts_checkpoint_fp");
  const std::string path = (dir / "journal.jsonl").string();
  { CheckpointJournal journal(path, "config-A"); }
  EXPECT_THROW(CheckpointJournal::load(path, "config-B"), InvalidInput);
  EXPECT_THROW((CheckpointJournal(path, "config-B")), InvalidInput);
  // The matching fingerprint keeps working (append mode, no header rewrite).
  { CheckpointJournal journal(path, "config-A"); }
  EXPECT_TRUE(CheckpointJournal::load(path, "config-A").empty());
}

TEST(CheckpointJournalTest, TornTrailingLineIsSkippedInteriorCorruptionThrows) {
  const auto dir = fresh_dir("mts_checkpoint_torn");
  const std::string path = (dir / "journal.jsonl").string();
  CellRecord record;
  record.task = 3;
  record.status = "success";
  record.verified = true;
  {
    CheckpointJournal journal(path, "fp");
    journal.append(record);
  }
  {
    // Simulate a kill mid-append: a partial record with no closing brace.
    std::ofstream out(path, std::ios::app);
    out << "{\"task\":4,\"status\":\"succ";
  }
  const auto loaded = CheckpointJournal::load(path, "fp");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.count(3), 1u);

  // The same garbage in the middle of the file is real corruption.  (Close
  // the raw stream first so the newline lands before the next append.)
  {
    std::ofstream out(path, std::ios::app);
    out << "\n";
  }
  {
    CheckpointJournal journal(path, "fp");
    CellRecord later;
    later.task = 5;
    later.status = "success";
    journal.append(later);
  }
  EXPECT_THROW(CheckpointJournal::load(path, "fp"), InvalidInput);
}

TEST(CheckpointFingerprintTest, CoversEveryResultShapingKnob) {
  const RunConfig base = small_config();
  const std::string fp = checkpoint_fingerprint(base);
  RunConfig changed = base;
  changed.seed = 12;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  changed = base;
  changed.trials = 4;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  changed = base;
  changed.scale = 0.25;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  changed = base;
  changed.path_rank = 11;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  changed = base;
  changed.weight = attack::WeightType::Time;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  changed = base;
  changed.work_budget.max_lp_pivots = 100;
  EXPECT_NE(checkpoint_fingerprint(changed), fp);
  // Checkpointing knobs themselves do NOT change the fingerprint: a resume
  // must accept the journal it is resuming from.
  changed = base;
  changed.checkpoint_path = "somewhere.jsonl";
  changed.resume = true;
  EXPECT_EQ(checkpoint_fingerprint(changed), fp);
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::instance().reset(); }
  void TearDown() override {
    fault::FaultRegistry::instance().reset();
    set_num_threads(0);
  }
};

TEST_F(CheckpointResumeTest, FaultedRunPlusResumeIsByteIdenticalAtEveryThreadCount) {
  const auto dir = fresh_dir("mts_checkpoint_resume");
  const auto clean = run_city_table(small_config());
  const std::string clean_json = to_json(clean);
  const std::string clean_csv = csv_of(clean);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    set_num_threads(threads);
    const std::string journal =
        (dir / ("journal_t" + std::to_string(threads) + ".jsonl")).string();

    // Pass 1: one injected fault poisons one cell; every other cell lands
    // in the journal.  (The stand-in for a run that died mid-grid: the
    // journal holds exactly the cells that completed.)
    fault::FaultRegistry::instance().arm("pool.task", 2, fault::Action::Throw);
    RunConfig faulted = small_config();
    faulted.checkpoint_path = journal;
    const auto partial = run_city_table(faulted);
    int quarantined = 0;
    for (attack::Algorithm a : attack::kAllAlgorithms) {
      for (attack::CostType c : attack::kAllCostTypes) {
        quarantined += partial.cell(a, c).quarantined;
      }
    }
    ASSERT_EQ(quarantined, 1);
    EXPECT_NE(to_json(partial), clean_json);

    // Pass 2: disarmed resume re-runs only the missing cell and reduces to
    // the exact clean-run bytes.
    fault::FaultRegistry::instance().reset();
    RunConfig resume = small_config();
    resume.checkpoint_path = journal;
    resume.resume = true;
    const auto resumed = run_city_table(resume);
    EXPECT_EQ(to_json(resumed), clean_json);
    EXPECT_EQ(csv_of(resumed), clean_csv);
  }
}

TEST_F(CheckpointResumeTest, TrialDroppedDuringSamplingResumesByteIdentically) {
  // A yen.spur fault during scenario *sampling* (not an attack cell) drops a
  // whole trial, shifting the survivors down the scenarios vector.  Journal
  // task ids are keyed on the original trial index, so the faulted run's
  // records must replay into the right cells and the disarmed resume must
  // reduce to the exact clean-run bytes.  (Position-keyed ids replayed the
  // wrong trial's cells and double-counted the survivor.)
  const auto dir = fresh_dir("mts_checkpoint_dropped_trial");
  const std::string journal = (dir / "journal.jsonl").string();
  const auto clean = run_city_table(small_config());
  const std::string clean_json = to_json(clean);

  fault::FaultRegistry::instance().arm("yen.spur", 25, fault::Action::Throw);
  RunConfig faulted = small_config();
  faulted.checkpoint_path = journal;
  const auto partial = run_city_table(faulted);
  ASSERT_LT(partial.scenarios_run, small_config().trials)
      << "fault did not fire during scenario sampling; pick a smaller `after`";
  EXPECT_NE(to_json(partial), clean_json);

  fault::FaultRegistry::instance().reset();
  RunConfig resume = small_config();
  resume.checkpoint_path = journal;
  resume.resume = true;
  const auto resumed = run_city_table(resume);
  EXPECT_EQ(to_json(resumed), clean_json);
  EXPECT_EQ(csv_of(resumed), csv_of(clean));
}

TEST_F(CheckpointResumeTest, ResumeOfCompleteJournalRecomputesNothing) {
  const auto dir = fresh_dir("mts_checkpoint_full");
  const std::string journal = (dir / "journal.jsonl").string();
  RunConfig first = small_config();
  first.checkpoint_path = journal;
  const auto full = run_city_table(first);

  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  RunConfig resume = first;
  resume.resume = true;
  const auto resumed = run_city_table(resume);
  EXPECT_EQ(to_json(resumed), to_json(full));

  std::uint64_t cells_run = 0;
  std::uint64_t cells_resumed = 0;
  for (const auto& counter : obs::MetricsRegistry::instance().snapshot().counters) {
    if (counter.name == "exp.cells_run") cells_run = counter.value;
    if (counter.name == "exp.cells_resumed") cells_resumed = counter.value;
  }
  EXPECT_EQ(cells_run, 0u);
  EXPECT_GT(cells_resumed, 0u);
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace mts::exp
