// End-to-end pipeline: synthesize a city, serialize to OSM XML on disk,
// re-ingest it, sample an attack scenario, run all four algorithms, verify
// each cut, and render the figure — the full life of one experiment.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "exp/scenario.hpp"
#include "osm/xml.hpp"
#include "viz/svg.hpp"

namespace mts {
namespace {

TEST(Pipeline, CityToXmlToAttackToSvg) {
  const auto spec = citygen::city_spec(citygen::City::Boston, 0.25);
  const auto osm_data = citygen::generate_city_osm(spec, 21);

  // Disk round trip, as a real OSM extract would arrive.
  const auto dir = std::filesystem::temp_directory_path() / "mts_pipeline_test";
  std::filesystem::create_directories(dir);
  const auto osm_path = (dir / "boston.osm").string();
  osm::save_osm_xml(osm_data, osm_path);
  const auto reloaded = osm::load_osm_xml(osm_path);

  osm::BuildOptions build_options;
  build_options.center = osm::LatLon{spec.anchor_lat, spec.anchor_lon};
  const auto network = osm::RoadNetwork::build(reloaded, build_options);
  ASSERT_EQ(network.pois().size(), 4u);
  ASSERT_GT(network.graph().num_nodes(), 100u);

  // Scenario: random intersection -> hospital, p* = 25th shortest path.
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  Rng rng(5);
  exp::ScenarioOptions scenario_options;
  scenario_options.path_rank = 25;
  const auto scenario = exp::sample_scenario(network, weights, 0, rng, scenario_options);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->prefix.size(), 24u);
  EXPECT_GE(scenario->p_star_length, scenario->shortest_length);

  const auto costs = attack::make_costs(network, attack::CostType::Width);
  attack::ForcePathCutProblem problem;
  problem.graph = &network.graph();
  problem.weights = weights;
  problem.costs = costs;
  problem.source = scenario->source;
  problem.target = scenario->target;
  problem.p_star = scenario->p_star;
  problem.seed_paths = scenario->prefix;

  for (attack::Algorithm algorithm : attack::kAllAlgorithms) {
    const auto result = run_attack(algorithm, problem);
    ASSERT_EQ(result.status, attack::AttackStatus::Success) << to_string(algorithm);
    const auto verdict = attack::verify_attack(problem, result.removed_edges);
    EXPECT_TRUE(verdict.ok) << to_string(algorithm) << ": " << verdict.reason;
    EXPECT_GT(result.num_removed(), 0u) << to_string(algorithm);

    // Figure rendering (paper Figures 1-4 style).
    const auto svg_path = (dir / (std::string(to_string(algorithm)) + ".svg")).string();
    viz::save_attack_svg(svg_path, network, problem.p_star, result.removed_edges,
                         problem.source, problem.target);
    std::ifstream svg(svg_path);
    ASSERT_TRUE(svg.good());
    std::string content((std::istreambuf_iterator<char>(svg)), {});
    EXPECT_NE(content.find("<svg"), std::string::npos);
    EXPECT_NE(content.find(viz::RenderOptions{}.removed_color), std::string::npos);
    EXPECT_NE(content.find(viz::RenderOptions{}.p_star_color), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, IntelligentAlgorithmsNoCostlierThanNaive) {
  // Structural claim from §III-B: PathCover solutions are never (much)
  // more expensive than GreedyEdge's on the same instance.
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.25, 33);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const auto costs = attack::make_costs(network, attack::CostType::Lanes);

  Rng rng(17);
  exp::ScenarioOptions options;
  options.path_rank = 30;
  int compared = 0;
  for (std::size_t hospital = 0; hospital < 4 && compared < 3; ++hospital) {
    const auto scenario = exp::sample_scenario(network, weights, hospital, rng, options);
    if (!scenario) continue;
    attack::ForcePathCutProblem problem;
    problem.graph = &network.graph();
    problem.weights = weights;
    problem.costs = costs;
    problem.source = scenario->source;
    problem.target = scenario->target;
    problem.p_star = scenario->p_star;
    problem.seed_paths = scenario->prefix;

    const auto lp = run_attack(attack::Algorithm::LpPathCover, problem);
    const auto cover = run_attack(attack::Algorithm::GreedyPathCover, problem);
    const auto naive = run_attack(attack::Algorithm::GreedyEdge, problem);
    ASSERT_EQ(lp.status, attack::AttackStatus::Success);
    ASSERT_EQ(cover.status, attack::AttackStatus::Success);
    ASSERT_EQ(naive.status, attack::AttackStatus::Success);
    EXPECT_LE(lp.total_cost, naive.total_cost + 1e-9);
    EXPECT_LE(cover.total_cost, naive.total_cost * 1.25 + 1e-9);
    EXPECT_GE(lp.total_cost, lp.lp_lower_bound - 1e-6);
    ++compared;
  }
  EXPECT_GE(compared, 2);
}

}  // namespace
}  // namespace mts
