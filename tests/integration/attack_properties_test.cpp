// Property sweep: every (city, weight, cost, algorithm) combination must
// produce a verified attack on sampled scenarios — the paper's whole
// experimental grid, shrunk to unit-test size.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "attack/algorithms.hpp"
#include "attack/models.hpp"
#include "attack/verify.hpp"
#include "citygen/generate.hpp"
#include "exp/scenario.hpp"

namespace mts {
namespace {

using attack::Algorithm;
using attack::CostType;
using attack::WeightType;
using citygen::City;

using GridParam = std::tuple<City, WeightType, CostType, Algorithm>;

class AttackGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  /// One network + scenario per (city, weight), shared across cost and
  /// algorithm variations to keep the sweep fast.
  struct Instance {
    osm::RoadNetwork network;
    std::vector<double> weights;
    std::optional<exp::Scenario> scenario;
  };

  static Instance& instance(City city, WeightType weight) {
    static std::map<std::pair<City, WeightType>, Instance> cache;
    const auto key = std::make_pair(city, weight);
    auto it = cache.find(key);
    if (it == cache.end()) {
      Instance inst{citygen::generate_city(city, 0.2, 1234), {}, std::nullopt};
      inst.weights = attack::make_weights(inst.network, weight);
      Rng rng(99);
      exp::ScenarioOptions options;
      options.path_rank = 20;
      inst.scenario = exp::sample_scenario(inst.network, inst.weights, 1, rng, options);
      it = cache.emplace(key, std::move(inst)).first;
    }
    return it->second;
  }
};

TEST_P(AttackGrid, VerifiedSuccess) {
  const auto [city, weight, cost_type, algorithm] = GetParam();
  auto& inst = instance(city, weight);
  ASSERT_TRUE(inst.scenario.has_value()) << "scenario sampling failed";

  const auto costs = attack::make_costs(inst.network, cost_type);
  attack::ForcePathCutProblem problem;
  problem.graph = &inst.network.graph();
  problem.weights = inst.weights;
  problem.costs = costs;
  problem.source = inst.scenario->source;
  problem.target = inst.scenario->target;
  problem.p_star = inst.scenario->p_star;
  problem.seed_paths = inst.scenario->prefix;

  const auto result = run_attack(algorithm, problem);
  ASSERT_EQ(result.status, attack::AttackStatus::Success);
  const auto verdict = attack::verify_attack(problem, result.removed_edges);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
  EXPECT_GT(result.num_removed(), 0u);
  EXPECT_GT(result.total_cost, 0.0);
  // Sanity on the cost models: the cut can never cost less than one
  // cheapest-possible removal under that model.
  if (cost_type == CostType::Uniform) {
    EXPECT_DOUBLE_EQ(result.total_cost, static_cast<double>(result.num_removed()));
  } else {
    EXPECT_GE(result.total_cost, static_cast<double>(result.num_removed()) * 0.5);
  }
}

std::string grid_param_name(const ::testing::TestParamInfo<GridParam>& info) {
  const City city = std::get<0>(info.param);
  const WeightType weight = std::get<1>(info.param);
  const CostType cost = std::get<2>(info.param);
  const Algorithm algorithm = std::get<3>(info.param);
  std::string name = std::string(citygen::to_string(city)) + "_" + attack::to_string(weight) +
                     "_" + attack::to_string(cost) + "_" + to_string(algorithm);
  std::erase_if(name, [](char c) { return c == ' ' || c == '-'; });
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, AttackGrid,
    ::testing::Combine(::testing::ValuesIn(citygen::kAllCities),
                       ::testing::ValuesIn(attack::kAllWeightTypes),
                       ::testing::ValuesIn(attack::kAllCostTypes),
                       ::testing::ValuesIn(attack::kAllAlgorithms)),
    grid_param_name);

}  // namespace
}  // namespace mts
