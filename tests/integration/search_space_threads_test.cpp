// Thread-local SearchSpace ownership under the pool: concurrent searches
// reuse per-thread workspaces and must match a serial run exactly.  The
// suite name is matched by the TSan leg of ci.sh (-R '...|SearchSpace'),
// which runs it at MTS_THREADS=4 to race-check the workspace reuse path.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/models.hpp"
#include "citygen/generate.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "graph/dijkstra.hpp"
#include "graph/path.hpp"
#include "graph/yen.hpp"

namespace mts {
namespace {

struct Query {
  NodeId source;
  NodeId target;
};

std::vector<Query> make_queries(const DiGraph& g, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(count);
  while (queries.size() < count) {
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes())));
    if (s == t) continue;
    queries.push_back({s, t});
  }
  return queries;
}

void expect_equal_paths(const std::optional<Path>& serial, const std::optional<Path>& parallel,
                        std::size_t query) {
  ASSERT_EQ(serial.has_value(), parallel.has_value()) << "query " << query;
  if (!serial.has_value()) return;
  EXPECT_EQ(serial->edges, parallel->edges) << "query " << query;
  EXPECT_EQ(serial->length, parallel->length) << "query " << query;
}

TEST(SearchSpaceThreads, ParallelPointQueriesMatchSerial) {
  const auto network = citygen::generate_city(citygen::City::Boston, 0.15, 11);
  const auto weights = attack::make_weights(network, attack::WeightType::Length);
  const DiGraph& g = network.graph();
  const auto queries = make_queries(g, 64, 21);

  std::vector<std::optional<Path>> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = shortest_path(g, weights, queries[i].source, queries[i].target);
  }

  // Each pool thread reuses its own workspace across many queries; run the
  // sweep twice so reuse (not just first allocation) is exercised in
  // parallel.
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<std::optional<Path>> concurrent(queries.size());
    parallel_for(queries.size(), [&](std::size_t i) {
      concurrent[i] = shortest_path(g, weights, queries[i].source, queries[i].target);
    });
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_equal_paths(serial[i], concurrent[i], i);
    }
  }
}

// Yen drives both thread slots (spur workspace + reverse tree) and the
// goal-directed pruning path; racing it is the strongest TSan workload
// this refactor adds.
TEST(SearchSpaceThreads, ParallelYenQueriesMatchSerial) {
  const auto network = citygen::generate_city(citygen::City::Chicago, 0.12, 9);
  const auto weights = attack::make_weights(network, attack::WeightType::Time);
  const DiGraph& g = network.graph();
  const auto queries = make_queries(g, 24, 33);

  std::vector<std::vector<Path>> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = yen_ksp(g, weights, queries[i].source, queries[i].target, 6);
  }

  std::vector<std::vector<Path>> concurrent(queries.size());
  parallel_for(queries.size(), [&](std::size_t i) {
    concurrent[i] = yen_ksp(g, weights, queries[i].source, queries[i].target, 6);
  });

  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(serial[i].size(), concurrent[i].size()) << "query " << i;
    for (std::size_t rank = 0; rank < serial[i].size(); ++rank) {
      EXPECT_EQ(serial[i][rank].edges, concurrent[i][rank].edges)
          << "query " << i << " rank " << rank;
      EXPECT_EQ(serial[i][rank].length, concurrent[i][rank].length)
          << "query " << i << " rank " << rank;
    }
  }
}

// Forcing an explicit thread count makes the reuse path deterministic in
// plain dev runs too (the TSan leg already pins MTS_THREADS=4).
TEST(SearchSpaceThreads, ExplicitThreadCountsAgree) {
  const auto network = citygen::generate_city(citygen::City::Boston, 0.1, 17);
  const auto weights = attack::make_weights(network, attack::WeightType::Length);
  const DiGraph& g = network.graph();
  const auto queries = make_queries(g, 32, 5);

  std::vector<double> baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    set_num_threads(threads);
    std::vector<double> lengths(queries.size(), -1.0);
    parallel_for(queries.size(), [&](std::size_t i) {
      lengths[i] = shortest_distance(g, weights, queries[i].source, queries[i].target);
    });
    set_num_threads(0);
    if (baseline.empty()) {
      baseline = lengths;
    } else {
      EXPECT_EQ(baseline, lengths) << "thread count " << threads;
    }
  }
}

}  // namespace
}  // namespace mts
