// Fault matrix: every compiled-in fault point, when armed, is contained by
// the harness — the poisoned cell is quarantined with a taxonomy string,
// every other cell completes, and nothing crashes.  Disarmed, the registry
// changes zero output bytes (same golden file as the observability test).
#include <gtest/gtest.h>

#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "core/fault.hpp"
#include "exp/json_report.hpp"
#include "exp/table_runner.hpp"
#include "obs/metrics.hpp"

namespace mts::exp {
namespace {

/// Same configuration as the checked-in golden file
/// tests/integration/golden/table02_boston_length_small.json.
RunConfig small_config() {
  RunConfig config;
  config.city = citygen::City::Boston;
  config.weight = attack::WeightType::Length;
  config.scale = 0.2;
  config.trials = 3;
  config.path_rank = 10;
  config.seed = 11;
  config.deterministic_timing = true;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int total_quarantined(const CityTableResult& result) {
  int total = 0;
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (attack::CostType c : attack::kAllCostTypes) {
      total += result.cell(a, c).quarantined;
    }
  }
  return total;
}

int total_clean(const CityTableResult& result) {
  int total = 0;
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (attack::CostType c : attack::kAllCostTypes) {
      total += result.cell(a, c).n;
    }
  }
  return total;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::instance().reset(); }
  void TearDown() override { fault::FaultRegistry::instance().reset(); }
};

TEST_F(FaultMatrixTest, DisarmedRegistryChangesNoOutputBytes) {
  const auto result = run_city_table(small_config());
  const std::string golden =
      read_file(std::string(MTS_TEST_GOLDEN_DIR) + "/table02_boston_length_small.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(to_json(result), golden);
}

TEST_F(FaultMatrixTest, PoolTaskFaultQuarantinesExactlyOneCell) {
  const auto baseline = run_city_table(small_config());
  const int cells = total_clean(baseline);
  ASSERT_GT(cells, 1);

  fault::FaultRegistry::instance().reset();
  fault::FaultRegistry::instance().arm("pool.task", 1, fault::Action::Throw);
  const auto faulted = run_city_table(small_config());
  EXPECT_EQ(total_quarantined(faulted), 1);
  // The poisoned cell may or may not have been a clean cell in the
  // baseline, so the clean count drops by at most one.
  EXPECT_GE(total_clean(faulted), cells - 1);
  EXPECT_LE(total_clean(faulted), cells);

  // The quarantine records the taxonomy, not a bare what().
  bool found = false;
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (attack::CostType c : attack::kAllCostTypes) {
      for (const std::string& error : faulted.cell(a, c).errors) {
        found = true;
        EXPECT_EQ(error.rfind("fault-injected: ", 0), 0u) << error;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FaultMatrixTest, EverySolverFaultPointIsContained) {
  // lp.pivot / yen.spur / oracle.solve fire deep inside the solve chain;
  // each must surface as a quarantined cell (or a dropped scenario for
  // faults during sampling), never a crash or a wrong "clean" result.
  struct Case {
    const char* point;
    fault::Action action;
  };
  const Case cases[] = {
      {"lp.pivot", fault::Action::Throw},
      {"yen.spur", fault::Action::Throw},
      {"oracle.solve", fault::Action::Throw},
      {"oracle.solve", fault::Action::Nan},
      {"oracle.solve", fault::Action::Limit},
  };
  const auto baseline = run_city_table(small_config());
  const std::string baseline_json = to_json(baseline);
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.point) + ":" + fault::to_string(c.action));
    fault::FaultRegistry::instance().reset();
    // Fire late enough to hit mid-solve, early enough to hit at all on the
    // small grid.
    fault::FaultRegistry::instance().arm(c.point, 50, c.action);
    const auto faulted = run_city_table(small_config());
    // Containment: the run finishes.  The fault either landed in a cell
    // (quarantined) or in scenario sampling (fewer scenarios); in both
    // cases results still reduce.
    EXPECT_GE(total_quarantined(faulted) + (baseline.scenarios_run - faulted.scenarios_run), 0);
    // Disarmed again, byte-identity returns (the registry holds no state
    // that leaks into clean runs).
    fault::FaultRegistry::instance().reset();
    const auto clean = run_city_table(small_config());
    EXPECT_EQ(to_json(clean), baseline_json);
  }
}

TEST_F(FaultMatrixTest, LpPivotNanDegradesInsteadOfCrashing) {
  // NaN poisoning inside the simplex must end in LpStatus::Numerical and
  // the greedy fallback, not a crash; the affected cell then reports
  // fallback_used through CellStats.
  fault::FaultRegistry::instance().arm("lp.pivot", 10, fault::Action::Nan);
  const auto result = run_city_table(small_config());
  int fallbacks = 0;
  for (attack::Algorithm a : attack::kAllAlgorithms) {
    for (attack::CostType c : attack::kAllCostTypes) {
      fallbacks += result.cell(a, c).fallbacks;
    }
  }
  // The NaN either reached an LP (fallback) or was quarantined by a debug
  // invariant; both are contained outcomes.
  EXPECT_GE(fallbacks + total_quarantined(result), 0);
  EXPECT_GT(total_clean(result), 0);
}

TEST_F(FaultMatrixTest, FaultCounterRecordsInjections) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  fault::FaultRegistry::instance().arm("pool.task", 1, fault::Action::Throw);
  (void)run_city_table(small_config());
  std::uint64_t injected = 0;
  for (const auto& counter : obs::MetricsRegistry::instance().snapshot().counters) {
    if (counter.name == "fault.injected") injected = counter.value;
  }
  EXPECT_EQ(injected, 1u);
  obs::MetricsRegistry::instance().reset();
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace mts::exp
