#include "exp/json_report.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"

namespace mts::exp {
namespace {

const CityTableResult& small_result() {
  static const CityTableResult result = [] {
    RunConfig config;
    config.city = citygen::City::Chicago;
    config.scale = 0.2;
    config.trials = 2;
    config.path_rank = 8;
    config.seed = 5;
    return run_city_table(config);
  }();
  return result;
}

void expect_balanced_json(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonReport, BalancedAndComplete) {
  const std::string json = to_json(small_result());
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"city\":\"Chicago\""), std::string::npos);
  EXPECT_NE(json.find("\"weight\":\"LENGTH\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"LP-PathCover\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_model\":\"WIDTH\""), std::string::npos);
  EXPECT_NE(json.find("\"edges_removed\""), std::string::npos);
  EXPECT_NE(json.find("\"verification_failures\":0"), std::string::npos);
  // 4 algorithms x 3 cost models = 12 cells.
  std::size_t cells = 0;
  for (std::size_t pos = json.find("\"algorithm\""); pos != std::string::npos;
       pos = json.find("\"algorithm\"", pos + 1)) {
    ++cells;
  }
  EXPECT_EQ(cells, 12u);
}

TEST(JsonReport, SaveCreatesFile) {
  const auto dir = std::filesystem::temp_directory_path() / "mts_json_test";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "sub" / "r.json").string();
  save_json(small_result(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(content, to_json(small_result()));
  std::filesystem::remove_all(dir);
}

TEST(JsonReport, NumbersAreFiniteAndPlain) {
  const std::string json = to_json(small_result());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

// MTS_OBS_SUFFIX exists so concurrent runs sharing an --obs base (e.g. a
// routed daemon and a loadgen) stop clobbering each other's files.  The
// default must stay the historical fixed names, byte-for-byte.
class ObsSuffixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("MTS_OBS_SUFFIX");
    dir_ = std::filesystem::temp_directory_path() / "mts_obs_suffix_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    unsetenv("MTS_OBS_SUFFIX");
    obs::set_metrics_enabled(false);
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(ObsSuffixTest, DefaultSuffixIsEmptyAndKeepsHistoricalFilenames) {
  EXPECT_EQ(observability_suffix(), "");
  const std::string base = (dir_ / "run").string();
  save_observability(base);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "run_metrics.json"));
}

TEST_F(ObsSuffixTest, PidSuffixDisambiguatesConcurrentProcesses) {
  setenv("MTS_OBS_SUFFIX", "pid", 1);
  const std::string expected = "." + std::to_string(::getpid());
  EXPECT_EQ(observability_suffix(), expected);
  const std::string base = (dir_ / "run").string();
  save_observability(base);
  EXPECT_TRUE(std::filesystem::exists(dir_ / ("run" + expected + "_metrics.json")));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "run_metrics.json"));
}

TEST_F(ObsSuffixTest, LiteralSuffixIsUsedVerbatim) {
  setenv("MTS_OBS_SUFFIX", ".loadgen", 1);
  EXPECT_EQ(observability_suffix(), ".loadgen");
  save_observability((dir_ / "run").string());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "run.loadgen_metrics.json"));
}

TEST_F(ObsSuffixTest, MetricsOffWritesNothing) {
  obs::set_metrics_enabled(false);
  save_observability((dir_ / "run").string());
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

}  // namespace
}  // namespace mts::exp
