// Randomized cross-checks: many seeds, every component against an
// independent oracle or invariant.  Catches the bugs hand-picked cases
// miss (tie structures, parallel edges, degenerate geometry).
#include <gtest/gtest.h>

#include <sstream>

#include "attack/algorithms.hpp"
#include "core/error.hpp"
#include "attack/exact.hpp"
#include "attack/verify.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/bidirectional.hpp"
#include "graph/contraction_hierarchy.hpp"
#include "graph/yen.hpp"
#include "osm/xml.hpp"
#include "test_util.hpp"

namespace mts {
namespace {

/// Both infinite, or numerically equal.
void expect_same_distance(double a, double b) {
  if (a == kInfiniteDistance || b == kInfiniteDistance) {
    EXPECT_EQ(a, b);
  } else {
    EXPECT_NEAR(a, b, 1e-9 * (1.0 + a));
  }
}

/// Random graphs with nasty features: parallel edges, zero weights, near
/// ties, self loops.
test::WeightedGraph nasty_graph(Rng& rng) {
  test::WeightedGraph wg;
  const int n = 8 + static_cast<int>(rng.uniform_index(12));
  for (int i = 0; i < n; ++i) {
    wg.g.add_node(rng.uniform(0, 50), rng.uniform(0, 50));
  }
  for (int i = 0; i + 1 < n; ++i) {
    wg.edge(NodeId(static_cast<std::uint32_t>(i)), NodeId(static_cast<std::uint32_t>(i + 1)),
            rng.uniform(0.5, 2.0));
  }
  const int extras = 3 * n;
  for (int k = 0; k < extras; ++k) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(static_cast<std::size_t>(n)));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(static_cast<std::size_t>(n)));
    double w = rng.uniform(0.0, 3.0);
    if (rng.chance(0.15)) w = 1.0;  // exact ties
    if (rng.chance(0.05)) w = 0.0;  // zero weights
    wg.edge(NodeId(u), NodeId(v), w);  // self loops and parallels included
  }
  wg.g.finalize();
  wg.g.check_invariants();
  return wg;
}

TEST(Fuzz, RoutingAlgorithmsAgreeOnNastyGraphs) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 977);
    auto wg = nasty_graph(rng);
    const auto n = wg.g.num_nodes();
    const NodeId s(static_cast<std::uint32_t>(rng.uniform_index(n)));
    const NodeId t(static_cast<std::uint32_t>(rng.uniform_index(n)));
    if (s == t) continue;

    const double via_dijkstra = shortest_distance(wg.g, wg.weights, s, t);
    const double via_bf = bellman_ford(wg.g, wg.weights, s).dist[t.value()];
    expect_same_distance(via_dijkstra, via_bf);
    const auto via_bidi = bidirectional_shortest_path(wg.g, wg.weights, s, t);
    expect_same_distance(via_dijkstra,
                         via_bidi.path ? via_bidi.path->length : kInfiniteDistance);
    // CH on graphs with zero-weight cycles is still exact for distances.
    const auto ch = ContractionHierarchy::build(wg.g, wg.weights);
    expect_same_distance(via_dijkstra, ch.distance(s, t));
  }
}

TEST(Fuzz, YenPrefixAlwaysSortedSimpleDistinct) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 131);
    auto wg = nasty_graph(rng);
    const NodeId s(0);
    const NodeId t(static_cast<std::uint32_t>(wg.g.num_nodes() - 1));
    const auto paths = yen_ksp(wg.g, wg.weights, s, t, 12);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(is_simple_path(wg.g, paths[i], s, t)) << "seed " << seed << " rank " << i;
      EXPECT_NO_THROW(paths[i].check_invariants(wg.g, wg.weights))
          << "seed " << seed << " rank " << i;
      if (i > 0) {
        EXPECT_GE(paths[i].length + 1e-12, paths[i - 1].length);
        EXPECT_NE(paths[i].edges, paths[i - 1].edges);
      }
    }
  }
}

TEST(Fuzz, AttacksVerifiedAcrossManySeeds) {
  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 30 && instances < 20; ++seed) {
    Rng rng(seed * 31 + 7);
    auto wg = nasty_graph(rng);
    // Exclusivity counting requires strictly positive weights (road
    // metrics always are); lift the fuzz graph's zero weights.
    for (double& w : wg.weights) {
      if (w < 0.05) w = 0.3;
    }
    const NodeId s(0);
    const NodeId t(static_cast<std::uint32_t>(wg.g.num_nodes() - 1));
    const auto ranked = yen_ksp(wg.g, wg.weights, s, t, 6);
    if (ranked.size() < 6) continue;
    if (ranked[5].length <= 1e-9) continue;  // zero-length p*: degenerate
    std::vector<double> costs;
    for (std::size_t i = 0; i < wg.g.num_edges(); ++i) costs.push_back(rng.uniform(0.5, 2.0));

    attack::ForcePathCutProblem problem;
    problem.graph = &wg.g;
    problem.weights = wg.weights;
    problem.costs = costs;
    problem.source = s;
    problem.target = t;
    problem.p_star = ranked[5];
    problem.seed_paths.assign(ranked.begin(), ranked.begin() + 5);

    ++instances;
    double exact_cost = -1.0;
    const auto exact = run_exact_attack(problem);
    if (exact.status == attack::AttackStatus::Success) {
      EXPECT_TRUE(attack::verify_attack(problem, exact.removed_edges).ok) << "seed " << seed;
      exact_cost = exact.total_cost;
    }
    for (attack::Algorithm algorithm : attack::kAllAlgorithms) {
      const auto result = run_attack(algorithm, problem);
      ASSERT_EQ(result.status, attack::AttackStatus::Success)
          << "seed " << seed << " " << to_string(algorithm);
      const auto verdict = attack::verify_attack(problem, result.removed_edges);
      EXPECT_TRUE(verdict.ok) << "seed " << seed << " " << to_string(algorithm) << ": "
                              << verdict.reason;
      if (exact_cost >= 0.0) {
        EXPECT_GE(result.total_cost + 1e-9, exact_cost)
            << "seed " << seed << " " << to_string(algorithm);
      }
    }
  }
  EXPECT_GE(instances, 10);
}

TEST(Fuzz, OsmXmlRoundTripRandomTags) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 53);
    osm::OsmData data;
    const int nodes = 3 + static_cast<int>(rng.uniform_index(10));
    for (int i = 0; i < nodes; ++i) {
      osm::OsmNode node;
      node.id = OsmNodeId(i + 1);
      node.lat = rng.uniform(-85, 85);
      node.lon = rng.uniform(-180, 180);
      if (rng.chance(0.5)) {
        // Tag values with XML-hostile characters.
        std::string value;
        for (int k = 0; k < 12; ++k) {
          const char* alphabet = "ab<>&\"' =/\n\t";
          value += alphabet[rng.uniform_index(12)];
        }
        node.tags["name"] = value;
      }
      data.nodes.push_back(std::move(node));
    }
    osm::OsmWay way;
    way.id = OsmWayId(1000);
    for (int i = 0; i < nodes; ++i) way.node_refs.push_back(OsmNodeId(i + 1));
    way.tags["highway"] = "residential";
    data.ways.push_back(std::move(way));

    std::stringstream stream;
    osm::write_osm_xml(data, stream);
    const auto parsed = osm::parse_osm_xml(stream);
    ASSERT_EQ(parsed.nodes.size(), data.nodes.size()) << "seed " << seed;
    for (std::size_t i = 0; i < data.nodes.size(); ++i) {
      EXPECT_DOUBLE_EQ(parsed.nodes[i].lat, data.nodes[i].lat);
      if (const auto* name = data.nodes[i].tag("name")) {
        ASSERT_NE(parsed.nodes[i].tag("name"), nullptr) << "seed " << seed;
        EXPECT_EQ(*parsed.nodes[i].tag("name"), *name) << "seed " << seed;
      }
    }
  }
}

TEST(Fuzz, MalformedOsmXmlAlwaysThrowsInvalidInput) {
  // Each document is hostile in a different way; the parser must report
  // InvalidInput for all of them, never crash or accept garbage silently.
  const char* hostile[] = {
      "<osm><node id='1' lat='1.0'",                              // unterminated element
      "<osm><node id='1' lat='abc' lon='2.0'/></osm>",            // bad numeric attribute
      "<osm><node id='1' lat='1.0' lon='2.0' tainted/></osm>",    // attribute without value
      "<osm><node id='1' lat='1.0' lon=2.0/></osm>",              // unquoted value
      "<osm><node id='1' lat='1.0' lon='2.0&#x'/></osm>",         // bad character reference
      "<osm><node id='1' lat='1.0' lon='2.0&bogus;'/></osm>",     // unknown entity
      "<osm><node id='1' lat='1.0' lon='2.0&quot/></osm>",        // unterminated entity
      "<osm><node lat='1.0' lon='2.0'/></osm>",                   // missing id
      "<osm><node id='1' lat='NaN' lon='2.0'/></osm>",            // non-finite coordinate
      "<osm><node id='1' lat='inf' lon='2.0'/></osm>",            // non-finite coordinate
      "<osm><node id='1' lat='1.0abc' lon='2.0'/></osm>",         // trailing junk (double)
      "<osm><node id='12abc' lat='1.0' lon='2.0'/></osm>",        // trailing junk (int)
      "<osm><node id='1' lon='2.0'/></osm>",                      // missing lat
      "<osm><way id='9'><nd/></way></osm>",                       // <nd> without ref
      "<osm><way id='9'><tag k='highway'/></way></osm>",          // <tag> without v
      "<osm><node id='1' lat='1' lon='2'/><way id='9'><nd ref='1'/<//way></osm>",
      "<osm>< node id='1' lat='1' lon='2'/></osm>",               // empty element name
  };
  for (const char* doc : hostile) {
    std::stringstream stream{std::string(doc)};
    EXPECT_THROW(osm::parse_osm_xml(stream), InvalidInput) << doc;
  }
}

TEST(Fuzz, MutatedOsmXmlNeverCrashes) {
  // Byte-level mutation fuzzing: start from a valid document, corrupt it,
  // and require the parser to either succeed or throw InvalidInput.  Any
  // other escape (crash, uncaught exception type) fails the test.
  osm::OsmData data;
  for (int i = 0; i < 6; ++i) {
    osm::OsmNode node;
    node.id = OsmNodeId(i + 1);
    node.lat = 41.8 + 0.01 * i;
    node.lon = -87.6 - 0.01 * i;
    if (i % 2 == 0) node.tags["name"] = "n<&>" + std::to_string(i);
    data.nodes.push_back(std::move(node));
  }
  osm::OsmWay way;
  way.id = OsmWayId(500);
  for (int i = 0; i < 6; ++i) way.node_refs.push_back(OsmNodeId(i + 1));
  way.tags["highway"] = "primary";
  data.ways.push_back(std::move(way));
  std::stringstream pristine;
  osm::write_osm_xml(data, pristine);
  const std::string base = pristine.str();

  Rng rng(90210);
  int parsed_ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string doc = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t at = rng.uniform_index(doc.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip to a hostile byte
          doc[at] = "<>&\"'/=\0x"[rng.uniform_index(9)];
          break;
        case 1:  // delete a byte
          doc.erase(at, 1);
          break;
        case 2:  // duplicate a byte
          doc.insert(at, 1, doc[at]);
          break;
        default:  // truncate the tail
          doc.resize(at);
          break;
      }
      if (doc.empty()) doc = "<";
    }
    std::stringstream stream{doc};
    try {
      const auto mutated = osm::parse_osm_xml(stream);
      ++parsed_ok;
      // Whatever survived parsing must be structurally bounded.
      EXPECT_LE(mutated.nodes.size(), 12u);
      EXPECT_LE(mutated.ways.size(), 4u);
    } catch (const InvalidInput&) {
      ++rejected;  // the only sanctioned failure mode
    }
  }
  EXPECT_EQ(parsed_ok + rejected, 400);
  EXPECT_GT(rejected, 0);  // mutations actually hit the error paths
}

TEST(Fuzz, DegenerateGraphsDoNotBreakRouting) {
  // Self-loops only: no s->t path may exist, and nothing crashes.
  DiGraph loops;
  loops.add_node(0, 0);
  loops.add_node(1, 1);
  loops.add_edge(NodeId(0), NodeId(0));
  loops.add_edge(NodeId(1), NodeId(1));
  loops.finalize();
  loops.check_invariants();
  const std::vector<double> loop_w = {1.0, 1.0};
  EXPECT_EQ(shortest_distance(loops, loop_w, NodeId(0), NodeId(1)), kInfiniteDistance);
  EXPECT_TRUE(yen_ksp(loops, loop_w, NodeId(0), NodeId(1), 4).empty());

  // Massive parallel multi-edge: the cheapest copy must win.
  DiGraph parallel;
  parallel.add_node(0, 0);
  parallel.add_node(1, 1);
  std::vector<double> par_w;
  for (int k = 0; k < 32; ++k) {
    parallel.add_edge(NodeId(0), NodeId(1));
    par_w.push_back(10.0 - 0.25 * k);
  }
  parallel.finalize();
  parallel.check_invariants();
  const auto cheapest = shortest_path(parallel, par_w, NodeId(0), NodeId(1));
  ASSERT_TRUE(cheapest.has_value());
  EXPECT_NEAR(cheapest->length, 10.0 - 0.25 * 31, 1e-12);
  cheapest->check_invariants(parallel, par_w);
  // Yen enumerates distinct parallel copies as distinct paths.
  const auto multi = yen_ksp(parallel, par_w, NodeId(0), NodeId(1), 5);
  ASSERT_EQ(multi.size(), 5u);
  for (const auto& p : multi) p.check_invariants(parallel, par_w);

  // Disconnected source/destination components.
  DiGraph split;
  for (int i = 0; i < 6; ++i) split.add_node(i, 0);
  split.add_edge(NodeId(0), NodeId(1));
  split.add_edge(NodeId(1), NodeId(2));
  split.add_edge(NodeId(3), NodeId(4));
  split.add_edge(NodeId(4), NodeId(5));
  split.finalize();
  split.check_invariants();
  const std::vector<double> split_w(split.num_edges(), 1.0);
  EXPECT_EQ(shortest_distance(split, split_w, NodeId(0), NodeId(5)), kInfiniteDistance);
  EXPECT_FALSE(bidirectional_shortest_path(split, split_w, NodeId(0), NodeId(5)).path);
  EXPECT_TRUE(yen_ksp(split, split_w, NodeId(0), NodeId(5), 3).empty());
  const auto bf = bellman_ford(split, split_w, NodeId(0));
  EXPECT_EQ(bf.dist[5], kInfiniteDistance);
  EXPECT_NEAR(bf.dist[2], 2.0, 1e-12);
}

}  // namespace
}  // namespace mts
